"""Columnar campaign backend: compressed npz record blocks.

An optional, NumPy-backed compact format for record-heavy campaigns:
appends accumulate in memory and every ``flush_every`` records are
written as one ``block-NNNNN.npz`` file in which each record field is a
column (native dtype where the column is uniformly bool/int/float/str,
a JSON-string column otherwise, nullable ints via a sidecar mask).
Compressed columns of near-constant sweep metadata shrink dramatically
versus JSON lines, and loads touch one decoded array per field instead
of one ``json.loads`` per record.

Same :class:`~repro.store.base.ResultStore` protocol, same resume
semantics: :meth:`ColumnarStore.claim_keys` replays the blocks in
order (later duplicate keys win) and :meth:`iter_records` streams one
block at a time, so analysis never materialises the campaign.  Blocks
are written atomically (temp file + rename), so a hard kill can never
leave a torn block — it only forfeits the unflushed in-memory buffer,
whose tasks simply re-run, bounded by ``flush_every``.

NumPy is import-gated exactly like the vector engine: constructing a
:class:`ColumnarStore` without NumPy raises a clear error and every
other backend keeps working.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional

from repro.store.base import (
    ParseFn,
    Record,
    ResultStore,
    StoreMismatchError,
    ValidatorFn,
)

#: Format tag written to (and required from) columnar manifests.
COLUMNAR_FORMAT = "repro-store/columnar-v1"

#: The manifest file inside every columnar campaign directory.
MANIFEST_NAME = "manifest.json"


def _require_numpy() -> Any:
    """Import NumPy or explain how to get the columnar backend."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - env-dependent
        raise ImportError(
            "the columnar store needs NumPy (install the package's "
            "dev extras, or use --store jsonl/sharded)"
        ) from exc
    return numpy


def _encode_column(values: List[Any], np: Any) -> Any:
    """Encode one field's values as (kind, array[, mask]).

    Kinds: ``b`` bool, ``i`` int, ``I`` nullable int (sidecar mask),
    ``f`` float, ``s`` str, ``j`` JSON-encoded fallback for anything
    mixed or nested (e.g. a search record's genome document).  bool is
    checked before int because Python bools are ints.
    """
    if all(isinstance(v, bool) for v in values):
        return "b", np.asarray(values, dtype=np.bool_), None
    if all(type(v) is int for v in values):
        return "i", np.asarray(values, dtype=np.int64), None
    if all(v is None or type(v) is int for v in values):
        mask = np.asarray([v is None for v in values], dtype=np.bool_)
        filled = [0 if v is None else v for v in values]
        return "I", np.asarray(filled, dtype=np.int64), mask
    if all(type(v) is float for v in values):
        return "f", np.asarray(values, dtype=np.float64), None
    if all(isinstance(v, str) for v in values):
        return "s", np.asarray(values, dtype=np.str_), None
    encoded = [json.dumps(v, sort_keys=True) for v in values]
    return "j", np.asarray(encoded, dtype=np.str_), None


def _decode_column(kind: str, column: Any, mask: Any) -> List[Any]:
    """Invert :func:`_encode_column` back to plain Python values."""
    if kind == "b":
        return [bool(v) for v in column]
    if kind == "i":
        return [int(v) for v in column]
    if kind == "I":
        return [
            None if null else int(v) for v, null in zip(column, mask)
        ]
    if kind == "f":
        return [float(v) for v in column]
    if kind == "s":
        return [str(v) for v in column]
    if kind == "j":
        return [json.loads(str(v)) for v in column]
    raise ValueError(f"unknown column kind {kind!r}")


class ColumnarStore(ResultStore):
    """npz-block campaign backend (optional; needs NumPy).

    Args:
        root: The campaign directory (created on first flush).
        parse: Record codec (document → record with ``.key``).
        validator: Optional load-time validator hook.
        flush_every: Records buffered per block (default 512).  Also
            the durability granularity: a hard kill forfeits at most
            one buffer's worth of finished tasks.
        fingerprint: Optional campaign/spec fingerprint, checked
            against the manifest like the sharded backend.
    """

    backend = "columnar"

    def __init__(
        self,
        root: str,
        parse: ParseFn,
        validator: Optional[ValidatorFn] = None,
        flush_every: int = 512,
        fingerprint: Optional[str] = None,
    ) -> None:
        """Check NumPy, adopt any existing block inventory."""
        super().__init__(parse, validator)
        if flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self._np = _require_numpy()
        self.root = root
        self.flush_every = flush_every
        self.fingerprint = fingerprint
        self._buffer: List[Record] = []
        self._blocks: List[str] = []
        self._records = 0
        existing = self._read_manifest()
        if existing is not None:
            if existing.get("format") != COLUMNAR_FORMAT:
                raise ValueError(
                    f"{root} is not a {COLUMNAR_FORMAT} campaign "
                    f"(manifest format: {existing.get('format')!r})"
                )
            stored = existing.get("fingerprint")
            if (
                fingerprint is not None
                and stored is not None
                and stored != fingerprint
            ):
                raise StoreMismatchError(
                    f"campaign {root} was written for a different spec "
                    f"(fingerprint {stored} != {fingerprint}); use a "
                    "fresh --results directory per spec"
                )
            if fingerprint is None:
                self.fingerprint = stored
            self._blocks = list(existing.get("blocks", []))
            self._records = int(existing.get("records", 0))
        elif os.path.isdir(root):
            # Manifest missing (foreign deletion): fall back to a
            # directory listing so the data still loads.
            self._blocks = sorted(
                name
                for name in os.listdir(root)
                if name.startswith("block-") and name.endswith(".npz")
            )

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def claim_keys(self) -> Dict[str, Record]:
        """Replay every block (then the buffer) into a keyed map."""
        records: Dict[str, Record] = {}
        for record in self.iter_records():
            records[record.key] = record
        return records

    def iter_records(self) -> Iterator[Record]:
        """Stream records block by block, then the unflushed buffer."""
        for name in list(self._blocks):
            yield from self._load_block(name)
        yield from list(self._buffer)

    def append(self, record: Record) -> None:
        """Buffer one record; cut a block at ``flush_every``."""
        self._buffer.append(record)
        self._records += 1
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Write the buffer as one atomic block + manifest update."""
        if not self._buffer:
            return
        os.makedirs(self.root, exist_ok=True)
        name = f"block-{len(self._blocks):05d}.npz"
        self._write_block(name, self._buffer)
        self._blocks.append(name)
        self._buffer = []
        self._write_manifest()

    def manifest(self) -> Dict[str, Any]:
        """The campaign inventory (also persisted as manifest.json)."""
        return {
            "format": COLUMNAR_FORMAT,
            "backend": self.backend,
            "fingerprint": self.fingerprint,
            "records": self._records,
            "blocks": list(self._blocks),
        }

    def close(self) -> None:
        """Flush the tail block; nothing stays open between calls."""
        self.flush()

    # ------------------------------------------------------------------
    # Block codec
    # ------------------------------------------------------------------
    def _write_block(self, name: str, records: List[Record]) -> None:
        """Encode records column-wise into one compressed npz file."""
        np = self._np
        docs = [record.to_dict() for record in records]
        fields = list(docs[0].keys())
        arrays: Dict[str, Any] = {}
        kinds: List[str] = []
        for field in fields:
            values = [doc.get(field) for doc in docs]
            kind, column, mask = _encode_column(values, np)
            kinds.append(kind)
            arrays[f"col::{field}"] = column
            if mask is not None:
                arrays[f"mask::{field}"] = mask
        arrays["__schema__"] = np.asarray(
            json.dumps(
                {"fields": fields, "kinds": kinds, "count": len(docs)}
            ),
            dtype=np.str_,
        )
        path = os.path.join(self.root, name)
        tmp = path + ".tmp.npz"
        with open(tmp, "wb") as f:
            np.savez_compressed(f, **arrays)
        os.replace(tmp, path)

    def _load_block(self, name: str) -> Iterator[Record]:
        """Decode one block back into records, damage counted."""
        path = os.path.join(self.root, name)
        if not os.path.exists(path):
            return
        np = self._np
        try:
            with np.load(path, allow_pickle=False) as data:
                schema = json.loads(str(data["__schema__"][()]))
                fields = schema["fields"]
                count = int(schema["count"])
                columns = {}
                for field, kind in zip(fields, schema["kinds"]):
                    columns[field] = _decode_column(
                        kind,
                        data[f"col::{field}"],
                        data.get(f"mask::{field}"),
                    )
        except (OSError, ValueError, KeyError, TypeError):
            # A foreign or truncated block: count each lost record
            # slot we know about (at least one) and move on.
            self.health.skipped_lines += 1
            return
        for i in range(count):
            doc = {field: columns[field][i] for field in fields}
            try:
                record = self.parse(doc)
                record.key
            except (ValueError, KeyError, TypeError):
                self.health.skipped_lines += 1
                continue
            admitted = self.admit(record)
            if admitted is not None:
                yield admitted

    # ------------------------------------------------------------------
    # Manifest persistence
    # ------------------------------------------------------------------
    def _read_manifest(self) -> Optional[Dict[str, Any]]:
        """Load manifest.json, ``None`` if absent."""
        path = os.path.join(self.root, MANIFEST_NAME)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as f:
                return json.load(f)
        except (ValueError, OSError) as exc:
            raise ValueError(
                f"unreadable campaign manifest {path}: {exc}"
            )

    def _write_manifest(self) -> None:
        """Atomically rewrite manifest.json (temp file + rename)."""
        path = os.path.join(self.root, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(self.manifest(), f, indent=2, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)
