"""The result-store protocol shared by every campaign backend.

A *result store* is the durable ledger behind sweeps and searches: a
keyed collection of records (anything exposing ``.key`` and
``.to_dict()``) that supports resume-by-key.  The protocol is four
verbs plus bookkeeping:

* :meth:`ResultStore.claim_keys` — load everything already on disk as a
  ``key → record`` map (the resume set; later duplicates win).
* :meth:`ResultStore.append` — persist one finished record.
* :meth:`ResultStore.iter_records` — stream records without
  materialising the full list (the analysis path for 10⁶-run
  campaigns).
* :meth:`ResultStore.flush` — make buffered appends durable; the
  policy is explicit via ``flush_every`` instead of implicit in the
  writer.
* :meth:`ResultStore.manifest` — a JSON-serialisable description of
  what the store holds (backend, shard/block inventory, fingerprint).

Damage never raises during a load: torn final lines (hard kill
mid-write), foreign content and validator-rejected records are counted
on :attr:`ResultStore.health` (:class:`StoreHealth`) and their tasks
simply re-run — the same contract the single-file JSONL format has had
since PR 1, now uniform across backends.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Optional,
)

#: A persisted record: anything with ``.key`` and ``.to_dict()``.
Record = Any

#: Rebuilds one record from its JSON document.  Must raise
#: ``ValueError``/``KeyError``/``TypeError`` on malformed input — the
#: loaders convert those into :attr:`StoreHealth.skipped_lines`.
ParseFn = Callable[[Dict[str, Any]], Record]

#: A store-level validator hook: records for which it returns ``False``
#: are dropped on load (counted as :attr:`StoreHealth.rejected_records`)
#: so their tasks re-run.  The search subsystem uses this for its
#: genome-fingerprint distrust check.
ValidatorFn = Callable[[Record], bool]


class StoreMismatchError(ValueError):
    """A campaign directory belongs to a different spec (fingerprint)."""


@dataclass
class StoreHealth:
    """Load-time damage report, uniform across every backend.

    Replaces the two ad-hoc counters that grew separately on
    ``SweepResult.skipped_lines`` and the search side: one dataclass,
    one CLI warning text.

    Attributes:
        skipped_lines: Non-empty lines (or block entries) that did not
            parse as records — torn final lines from a hard kill
            mid-write, or foreign/corrupt content.  Their tasks re-run.
        rejected_records: Records that parsed but failed the store's
            validator hook (e.g. a search record whose stored
            fingerprint does not match its own genome).  Also re-run.
    """

    skipped_lines: int = 0
    rejected_records: int = 0

    @property
    def issues(self) -> int:
        """Total records lost to damage or distrust on load."""
        return self.skipped_lines + self.rejected_records

    def merge(self, other: "StoreHealth") -> "StoreHealth":
        """Fold another health report into this one (returns self)."""
        self.skipped_lines += other.skipped_lines
        self.rejected_records += other.rejected_records
        return self

    def warning(self, source: str, noun: str = "task") -> Optional[str]:
        """The unified CLI warning line, or ``None`` when clean.

        ``noun`` names the unit of re-run work ("task" for sweeps,
        "candidate" for searches); the text is otherwise identical
        across subsystems and backends.
        """
        if not self.issues:
            return None
        parts = []
        if self.skipped_lines:
            parts.append(
                f"{self.skipped_lines} unparsable line(s) "
                "(torn or foreign)"
            )
        if self.rejected_records:
            parts.append(
                f"{self.rejected_records} validator-rejected record(s)"
            )
        return (
            f"warning: {source} held {' and '.join(parts)}; "
            f"their {noun}s were re-run"
        )


class RawRecord:
    """A backend-agnostic record wrapper: the raw document plus its key.

    Lets key-level tools (``repro merge``) operate on any record type
    without knowing its dataclass — parsing is the identity, the key is
    the document's ``"key"`` field, and ``to_dict`` returns the
    document unchanged, so a merge round-trips bytes faithfully.
    """

    __slots__ = ("doc",)

    def __init__(self, doc: Dict[str, Any]) -> None:
        """Wrap one decoded JSON document (must carry a ``"key"``)."""
        self.doc = dict(doc)
        if "key" not in self.doc:
            raise KeyError("record document has no 'key' field")

    @property
    def key(self) -> str:
        """The record's resume key."""
        return self.doc["key"]

    def to_dict(self) -> Dict[str, Any]:
        """The wrapped document, unchanged."""
        return self.doc


class ResultStore(abc.ABC):
    """Abstract base of every campaign result backend.

    Concrete stores (:class:`~repro.store.jsonl.JsonlStore`,
    :class:`~repro.store.sharded.ShardedStore`,
    :class:`~repro.store.columnar.ColumnarStore`) share the record
    parsing, validation and health accounting here and differ only in
    layout.  Stores are context managers; :meth:`close` flushes.
    """

    #: Backend name, stable across releases (manifest + CLI vocabulary).
    backend: str = "abstract"

    def __init__(
        self,
        parse: ParseFn,
        validator: Optional[ValidatorFn] = None,
    ) -> None:
        """Remember the record codec and start a clean health report."""
        self.parse = parse
        self.validator = validator
        self.health = StoreHealth()

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def claim_keys(self) -> Dict[str, Record]:
        """Load the resume set: every persisted record, keyed.

        Later duplicates win (a re-run record supersedes its stale
        predecessor); damage is counted on :attr:`health`, never
        raised.  A missing store is an empty map.
        """

    @abc.abstractmethod
    def append(self, record: Record) -> None:
        """Persist one finished record (durability per ``flush_every``)."""

    @abc.abstractmethod
    def iter_records(self) -> Iterator[Record]:
        """Stream persisted records without building the full list.

        Yields records in storage order — callers needing the canonical
        key order (or last-duplicate-wins semantics) go through
        :meth:`claim_keys` or sort downstream.  Damage counts on
        :attr:`health` like :meth:`claim_keys`.
        """

    @abc.abstractmethod
    def flush(self) -> None:
        """Push buffered appends to durable storage now."""

    @abc.abstractmethod
    def manifest(self) -> Dict[str, Any]:
        """A JSON-serialisable inventory of the store's contents."""

    @abc.abstractmethod
    def close(self) -> None:
        """Flush and release every file handle (idempotent)."""

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def admit(self, record: Record) -> Optional[Record]:
        """Apply the validator hook to one loaded record.

        Returns the record when admitted; counts and drops it
        (``None``) when the validator rejects it.
        """
        if self.validator is not None and not self.validator(record):
            self.health.rejected_records += 1
            return None
        return record

    def __enter__(self) -> "ResultStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close (and therefore flush)."""
        self.close()
