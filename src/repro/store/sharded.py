"""Sharded campaign backend: per-keyspace JSONL shards + a manifest.

A campaign directory holds ``shard-NNNN.jsonl`` files plus
``manifest.json``.  Each record lands in the shard selected by a stable
hash of its key (``crc32(key) % shards``), so shard membership is a
pure function of the record — independent of worker count, append
order, interruptions and resume history.  (Literal per-*worker* shards
could not give the deterministic, worker-count-independent layout the
sweep contract requires; per-key-hash shards do, while still spreading
appends across ``shards`` independently flushable files.)

Why shards beat one big file at campaign scale:

* append throughput — the default ``flush_every=64`` amortises flush
  syscalls over batches (the single-file default flushes every record
  for historical durability; ``benchmarks/bench_sweep.py`` measures
  the gap), and the per-shard handles keep lines short-seeked;
* bounded damage — a torn tail costs one line of one shard;
* streaming analysis — ``repro report`` iterates shard by shard and
  never holds the campaign in memory.

``manifest.json`` records the format version, the backend, the shard
count, the campaign's spec fingerprint, and a per-shard record
inventory.  Reopening a campaign directory written by a *different*
spec fingerprint raises :class:`~repro.store.base.StoreMismatchError`
instead of silently interleaving two campaigns.

:func:`merge_store` is the ``repro merge`` engine: fold any store's
records (deduplicated by key, key-sorted) into one canonical JSONL
file that the default :class:`~repro.store.jsonl.JsonlStore` resumes.
The write is atomic and the operation idempotent — merging twice
produces byte-identical output.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, Iterator, List, Optional, TextIO

from repro.store.base import (
    ParseFn,
    Record,
    ResultStore,
    StoreMismatchError,
    ValidatorFn,
)
from repro.store.jsonl import (
    iter_jsonl,
    open_for_append,
    scan_jsonl,
    write_jsonl_atomic,
)

#: The manifest file inside every campaign directory.
MANIFEST_NAME = "manifest.json"

#: Format tag written to (and required from) sharded manifests.
SHARDED_FORMAT = "repro-store/sharded-v1"


def read_manifest(root: str) -> Optional[Dict[str, Any]]:
    """Load ``manifest.json`` from a campaign dir, ``None`` if absent.

    A torn manifest (hard kill mid-write never happens — it is written
    atomically — but a foreign file might sit there) raises
    ``ValueError`` with the offending path, not a JSON traceback.
    """
    path = os.path.join(root, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (ValueError, OSError) as exc:
        raise ValueError(f"unreadable campaign manifest {path}: {exc}")


def shard_index(key: str, shards: int) -> int:
    """The shard a key lives in: ``crc32(key) % shards``.

    ``zlib.crc32`` is stable across processes and Python versions
    (the same derivation the task-seed logic uses), so the layout is
    reproducible anywhere.
    """
    return zlib.crc32(key.encode("utf-8")) % shards


class ShardedStore(ResultStore):
    """Campaign-directory backend: hashed JSONL shards + manifest.

    Args:
        root: The campaign directory (created on first append).
        parse: Record codec (document → record with ``.key``).
        validator: Optional load-time validator hook.
        shards: Shard-file count.  Fixed at campaign creation; on
            reopen the manifest's count is authoritative (a different
            requested count is ignored — the layout is already on
            disk).
        flush_every: Flush after every N appends across the store
            (default 64: the throughput win over per-record flushing).
        fsync: Additionally ``os.fsync`` dirty shards on flush.
        fingerprint: Optional campaign/spec fingerprint.  Written to
            the manifest; a reopen whose fingerprint differs from the
            stored one raises
            :class:`~repro.store.base.StoreMismatchError`.
    """

    backend = "sharded"

    def __init__(
        self,
        root: str,
        parse: ParseFn,
        validator: Optional[ValidatorFn] = None,
        shards: int = 8,
        flush_every: int = 64,
        fsync: bool = False,
        fingerprint: Optional[str] = None,
    ) -> None:
        """Adopt (or plan) the campaign layout and check fingerprints."""
        super().__init__(parse, validator)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self.root = root
        self.flush_every = flush_every
        self.fsync = fsync
        self.fingerprint = fingerprint
        self.shards = shards
        self._files: Dict[int, TextIO] = {}
        self._dirty: set = set()
        self._unflushed = 0
        self._record_counts: Dict[int, int] = {}
        existing = read_manifest(root)
        if existing is not None:
            if existing.get("format") != SHARDED_FORMAT:
                raise ValueError(
                    f"{root} is not a {SHARDED_FORMAT} campaign "
                    f"(manifest format: {existing.get('format')!r})"
                )
            stored = existing.get("fingerprint")
            if (
                fingerprint is not None
                and stored is not None
                and stored != fingerprint
            ):
                raise StoreMismatchError(
                    f"campaign {root} was written for a different spec "
                    f"(fingerprint {stored} != {fingerprint}); use a "
                    "fresh --results directory per spec"
                )
            self.shards = int(existing.get("shards", shards))
            if fingerprint is None:
                self.fingerprint = stored

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def shard_path(self, index: int) -> str:
        """The shard file holding keys hashed to ``index``."""
        return os.path.join(self.root, f"shard-{index:04d}.jsonl")

    def _shard_of(self, record: Record) -> int:
        """The shard index a record belongs to (pure function of key)."""
        return shard_index(record.key, self.shards)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def claim_keys(self) -> Dict[str, Record]:
        """Scan every shard into one key → record map.

        Shards are scanned in index order; within a shard later
        duplicates win, exactly like the single-file format.  The scan
        also refreshes the per-shard record inventory the manifest
        reports.
        """
        records: Dict[str, Record] = {}
        for i in range(self.shards):
            before = len(records)
            scan_jsonl(
                self.shard_path(i),
                self.parse,
                records,
                self.health,
                self.validator,
            )
            self._record_counts[i] = len(records) - before
        return records

    def iter_records(self) -> Iterator[Record]:
        """Stream every shard's records, shard by shard."""
        for i in range(self.shards):
            yield from iter_jsonl(
                self.shard_path(i),
                self.parse,
                self.health,
                self.validator,
            )

    def append(self, record: Record) -> None:
        """Route one record to its shard, healing torn tails lazily."""
        index = self._shard_of(record)
        f = self._files.get(index)
        if f is None:
            os.makedirs(self.root, exist_ok=True)
            if not os.path.exists(
                os.path.join(self.root, MANIFEST_NAME)
            ):
                # Stamp the campaign's identity (format, backend,
                # fingerprint) the moment it comes into existence, so
                # a concurrent or later open gets mismatch protection
                # even if this writer dies before its first close.
                self._write_manifest()
            f = open_for_append(self.shard_path(index))
            self._files[index] = f
        f.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        self._dirty.add(index)
        self._record_counts[index] = self._record_counts.get(index, 0) + 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Flush every dirty shard's buffered appends to the OS.

        Deliberately does *not* rewrite ``manifest.json``: the shard
        files are self-describing (``claim_keys`` scans them directly
        and refreshes the inventory), so the manifest only needs to be
        accurate at :meth:`close` — an atomic rewrite per flush would
        dominate append cost at campaign scale.
        """
        for index in sorted(self._dirty):
            f = self._files[index]
            f.flush()
            if self.fsync:
                os.fsync(f.fileno())
        self._dirty.clear()
        self._unflushed = 0

    def manifest(self) -> Dict[str, Any]:
        """The campaign inventory (also persisted as manifest.json)."""
        shard_files = {
            os.path.basename(self.shard_path(i)): count
            for i, count in sorted(self._record_counts.items())
            if count
        }
        return {
            "format": SHARDED_FORMAT,
            "backend": self.backend,
            "shards": self.shards,
            "fingerprint": self.fingerprint,
            "records": sum(shard_files.values()),
            "shard_files": shard_files,
        }

    def close(self) -> None:
        """Flush, persist the manifest, and close shard handles."""
        self.flush()
        if self._files:
            self._write_manifest()
        for f in self._files.values():
            f.close()
        self._files.clear()

    # ------------------------------------------------------------------
    # Manifest persistence
    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        """Atomically rewrite manifest.json (temp file + rename)."""
        os.makedirs(self.root, exist_ok=True)
        path = os.path.join(self.root, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(self.manifest(), f, indent=2, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)


def merge_store(source: ResultStore, out_path: str) -> int:
    """Fold any store into one canonical, key-sorted JSONL file.

    The ``repro merge`` engine.  Records are deduplicated by key
    (later storage order wins, matching resume semantics); an existing
    ``out_path`` contributes its records first, so merging additional
    shards into a previous merge is an update, not a clobber.  The
    output is written atomically and sorted by key, so the operation
    is idempotent: merging the same campaign twice yields
    byte-identical files.  Returns the merged record count.
    """
    from repro.store.base import RawRecord

    merged: Dict[str, Record] = {}
    if os.path.exists(out_path):
        # Re-read the previous merge with the identity codec so merge
        # works for any record type without knowing its dataclass.
        scan_jsonl(out_path, RawRecord, merged, source.health)
    for record in source.iter_records():
        merged[record.key] = record
    ordered: List[Record] = [merged[k] for k in sorted(merged)]
    return write_jsonl_atomic(out_path, ordered)
