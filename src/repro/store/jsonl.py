"""Single-file JSON-lines backend — today's format, bit for bit.

The default backend and the canonical interchange format: one record
per line, ``json.dumps(record.to_dict(), sort_keys=True)``, appended as
each task finishes so an interrupted campaign leaves a valid prefix.
Every results file written before this module existed loads and
resumes unchanged through :class:`JsonlStore`.

The module-level helpers (:func:`scan_jsonl`, :func:`open_for_append`,
:func:`append_jsonl_line`) are the loader/appender logic that used to
live in :mod:`repro.experiments.persist` — that module (and
``repro.search.persist``) now shim onto these, so there is exactly one
implementation of torn-line skipping and tail healing.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Iterator, Optional, TextIO

from repro.store.base import (
    ParseFn,
    Record,
    ResultStore,
    StoreHealth,
    ValidatorFn,
)


def scan_jsonl(
    path: str,
    parse: ParseFn,
    records: Dict[str, Record],
    health: StoreHealth,
    validator: Optional[ValidatorFn] = None,
) -> Dict[str, Record]:
    """Fill a keyed record map from one JSON-lines file, counting damage.

    The single generic loop behind every JSONL-shaped load in the
    package: ``parse`` turns one decoded document into a record
    carrying a ``.key``; unparsable or incomplete lines — an
    interrupted run's final line may be torn — bump
    ``health.skipped_lines`` instead of raising; records failing the
    optional ``validator`` bump ``health.rejected_records``; when a key
    appears twice the later record wins.  Missing files leave
    ``records`` untouched.  Returns ``records``.
    """
    if not os.path.exists(path):
        return records
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = parse(json.loads(line))
                key = record.key
            except (ValueError, KeyError, TypeError):
                health.skipped_lines += 1
                continue  # torn or foreign line — re-run its task
            if validator is not None and not validator(record):
                health.rejected_records += 1
                continue  # distrusted record — re-run its task
            records[key] = record
    return records


def iter_jsonl(
    path: str,
    parse: ParseFn,
    health: StoreHealth,
    validator: Optional[ValidatorFn] = None,
) -> Iterator[Record]:
    """Stream one JSON-lines file's records in storage order.

    Same damage/validator semantics as :func:`scan_jsonl`, but O(1)
    memory: nothing is accumulated, duplicates are *not* collapsed.
    """
    if not os.path.exists(path):
        return
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = parse(json.loads(line))
                record.key  # a keyless record is foreign
            except (ValueError, KeyError, TypeError):
                health.skipped_lines += 1
                continue
            if validator is not None and not validator(record):
                health.rejected_records += 1
                continue
            yield record


def open_for_append(path: str) -> TextIO:
    """Open a results file for appending, creating parent directories.

    If the file ends mid-line (a previous run was killed mid-write), a
    newline is inserted first so the next record does not concatenate
    onto the torn line and get lost with it.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    torn_tail = False
    if os.path.exists(path) and os.path.getsize(path) > 0:
        with open(path, "rb") as existing:
            existing.seek(-1, os.SEEK_END)
            torn_tail = existing.read(1) != b"\n"
    f = open(path, "a", encoding="utf-8")
    if torn_tail:
        f.write("\n")
    return f


def append_jsonl_line(f: TextIO, record: Record) -> None:
    """Write one record as a JSON line and flush it to disk.

    The historical per-record-flush appender (every write durable
    immediately).  Works for any record exposing ``to_dict()``; stores
    wanting an explicit batching policy go through
    :class:`JsonlStore` with ``flush_every`` instead.
    """
    f.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
    f.flush()


def write_jsonl_atomic(path: str, records: Iterable[Any]) -> int:
    """Write records to ``path`` as JSONL via a temp file + rename.

    The merge tool's writer: the output either fully appears or is
    left as it was (no torn merged files), and writing the same
    records twice produces byte-identical output.  Returns the record
    count.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    count = 0
    with open(tmp, "w", encoding="utf-8") as f:
        for record in records:
            f.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            count += 1
    os.replace(tmp, path)
    return count


class JsonlStore(ResultStore):
    """The single-file JSON-lines backend (default).

    Args:
        path: The results file.
        parse: Record codec (document → record with ``.key``).
        validator: Optional load-time validator hook.
        flush_every: Flush after every N appends.  The default ``1``
            reproduces the historical behaviour exactly: every record
            durable the moment it is written.
        fsync: Additionally ``os.fsync`` on every flush, trading
            throughput for power-loss durability (default off — the
            historical behaviour flushed the userspace buffer only).
    """

    backend = "jsonl"

    def __init__(
        self,
        path: str,
        parse: ParseFn,
        validator: Optional[ValidatorFn] = None,
        flush_every: int = 1,
        fsync: bool = False,
    ) -> None:
        """Validate the flush policy and remember the codec."""
        super().__init__(parse, validator)
        if flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self.path = path
        self.flush_every = flush_every
        self.fsync = fsync
        self._file: Optional[TextIO] = None
        self._unflushed = 0
        self._appended = 0

    def claim_keys(self) -> Dict[str, Record]:
        """Load the file into a key → record map (see base class)."""
        records: Dict[str, Record] = {}
        scan_jsonl(
            self.path, self.parse, records, self.health, self.validator
        )
        return records

    def iter_records(self) -> Iterator[Record]:
        """Stream the file's records in line order."""
        yield from iter_jsonl(
            self.path, self.parse, self.health, self.validator
        )

    def append(self, record: Record) -> None:
        """Append one record, healing a torn tail on first write."""
        if self._file is None:
            self._file = open_for_append(self.path)
        self._file.write(
            json.dumps(record.to_dict(), sort_keys=True) + "\n"
        )
        self._appended += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Flush the append handle (and optionally fsync)."""
        if self._file is not None:
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
        self._unflushed = 0

    def manifest(self) -> Dict[str, Any]:
        """Backend, path and append count (cheap: no file scan)."""
        return {
            "backend": self.backend,
            "path": self.path,
            "appended": self._appended,
        }

    def close(self) -> None:
        """Flush and close the append handle (idempotent)."""
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None
