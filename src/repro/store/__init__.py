"""Campaign result storage: one protocol, three backends.

The storage seam between run generation (sweeps, searches, the future
``repro serve`` daemon) and run consumption (resume, ``repro merge``,
``repro report``)::

    from repro.store import open_store
    from repro.experiments.results import RunResult

    with open_store("results/campaign", RunResult.from_dict,
                    backend="sharded") as store:
        done = store.claim_keys()          # resume set
        store.append(record)               # durable per flush_every
        for r in store.iter_records():     # streaming analysis
            ...
        print(store.manifest())

Backends (see ``docs/STORAGE.md`` for the matrix):

* ``jsonl`` — :class:`~repro.store.jsonl.JsonlStore`: today's
  single-file JSON-lines format, bit for bit; the default, and every
  pre-existing results file resumes through it unchanged.
* ``sharded`` — :class:`~repro.store.sharded.ShardedStore`: a campaign
  directory of key-hashed JSONL shards plus ``manifest.json``.
* ``columnar`` — :class:`~repro.store.columnar.ColumnarStore`:
  compressed npz record blocks (optional, NumPy-gated).

Every backend shares resume-by-key, torn-write damage accounting
(:class:`~repro.store.base.StoreHealth`), the validator hook, and the
explicit ``flush_every`` durability policy.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.store.base import (
    ParseFn,
    RawRecord,
    Record,
    ResultStore,
    StoreHealth,
    StoreMismatchError,
    ValidatorFn,
)
from repro.store.columnar import COLUMNAR_FORMAT, ColumnarStore
from repro.store.jsonl import (
    JsonlStore,
    append_jsonl_line,
    iter_jsonl,
    open_for_append,
    scan_jsonl,
    write_jsonl_atomic,
)
from repro.store.sharded import (
    MANIFEST_NAME,
    SHARDED_FORMAT,
    ShardedStore,
    merge_store,
    read_manifest,
    shard_index,
)

#: CLI vocabulary for ``--store``; ``auto`` defers to detection.
STORE_BACKENDS = ("auto", "jsonl", "sharded", "columnar")


def detect_backend(path: str) -> str:
    """Infer the backend a results path refers to.

    An existing campaign directory answers from its manifest (falling
    back to ``sharded``, whose shard files are self-describing); a
    trailing path separator requests a directory-shaped campaign even
    before it exists; anything else is a single JSONL file — which
    keeps every historical ``--results foo.jsonl`` invocation meaning
    exactly what it always has.
    """
    if os.path.isdir(path):
        manifest = read_manifest(path)
        if manifest and manifest.get("backend") in (
            "sharded",
            "columnar",
        ):
            return manifest["backend"]
        return "sharded"
    if path.endswith(os.sep) or path.endswith("/"):
        return "sharded"
    return "jsonl"


def open_store(
    path: str,
    parse: ParseFn,
    backend: Optional[str] = None,
    validator: Optional[ValidatorFn] = None,
    flush_every: Optional[int] = None,
    fingerprint: Optional[str] = None,
    shards: Optional[int] = None,
    fsync: bool = False,
) -> ResultStore:
    """Open (or create) the result store behind a ``--results`` path.

    Args:
        path: Results file (jsonl) or campaign directory
            (sharded/columnar).
        parse: Record codec (document → record with ``.key``).
        backend: ``"jsonl"`` / ``"sharded"`` / ``"columnar"``; ``None``
            or ``"auto"`` runs :func:`detect_backend` on the path.
        validator: Optional load-time validator hook (see
            :class:`~repro.store.base.StoreHealth`).
        flush_every: Explicit flush policy; ``None`` keeps each
            backend's documented default (jsonl: 1, sharded: 64,
            columnar: 512).
        fingerprint: Campaign/spec fingerprint for manifest-carrying
            backends (mismatch on reopen raises
            :class:`StoreMismatchError`).
        shards: Shard count for a *new* sharded campaign (existing
            campaigns keep their manifest's count).
        fsync: fsync-on-flush for the JSONL-shaped backends.
    """
    if backend in (None, "auto"):
        backend = detect_backend(path)
    if backend == "jsonl":
        kwargs = {} if flush_every is None else {"flush_every": flush_every}
        return JsonlStore(
            path, parse, validator=validator, fsync=fsync, **kwargs
        )
    if backend == "sharded":
        kwargs = {} if flush_every is None else {"flush_every": flush_every}
        if shards is not None:
            kwargs["shards"] = shards
        return ShardedStore(
            path,
            parse,
            validator=validator,
            fsync=fsync,
            fingerprint=fingerprint,
            **kwargs,
        )
    if backend == "columnar":
        kwargs = {} if flush_every is None else {"flush_every": flush_every}
        return ColumnarStore(
            path,
            parse,
            validator=validator,
            fingerprint=fingerprint,
            **kwargs,
        )
    raise ValueError(
        f"unknown store backend {backend!r}; known: "
        f"{[b for b in STORE_BACKENDS if b != 'auto']}"
    )


__all__ = [
    "COLUMNAR_FORMAT",
    "ColumnarStore",
    "JsonlStore",
    "MANIFEST_NAME",
    "ParseFn",
    "RawRecord",
    "Record",
    "ResultStore",
    "SHARDED_FORMAT",
    "STORE_BACKENDS",
    "ShardedStore",
    "StoreHealth",
    "StoreMismatchError",
    "ValidatorFn",
    "append_jsonl_line",
    "detect_backend",
    "iter_jsonl",
    "merge_store",
    "open_for_append",
    "open_store",
    "read_manifest",
    "scan_jsonl",
    "shard_index",
    "write_jsonl_atomic",
]
