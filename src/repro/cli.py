"""Command-line interface: run broadcasts and experiments from a shell.

Usage (module form)::

    python -m repro run --graph gnp --n 64 --algorithm harmonic \
        --adversary greedy --seed 7
    python -m repro sweep --graph clique-bridge --algorithm strong_select \
        --sizes 16,32,64 --seeds 0,1,2 --workers 4
    python -m repro sweep --spec examples/specs/tiny_sweep.json \
        --workers 4 --results results/tiny.jsonl
    python -m repro lowerbound --theorem 2 --n 32
    python -m repro lowerbound --theorem 12 --n 33 --algorithm round_robin

Everything the CLI can do is a thin layer over the library API; the CLI
exists so experiments are reproducible from shell history alone.  Sweeps
go through :mod:`repro.experiments`: they fan out over worker processes,
and with ``--results`` they persist each run as a JSON line and resume
by key after an interruption.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Optional, Sequence

from repro.analysis import best_fit, render_table
from repro.core.runner import algorithm_names, broadcast
from repro.sim.engine import ENGINE_NAMES
from repro.experiments import (
    ExperimentSpec,
    SweepResult,
    SweepRunner,
    adversary_kinds,
    build_adversary,
    build_graph,
    graph_kinds,
    load_specs,
)


def _build_graph_or_exit(name: str, n: int, seed: int):
    try:
        return build_graph(name, n, seed=seed)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _build_adversary_or_exit(args):
    params = {"p": args.p} if args.adversary == "random" else {}
    try:
        return build_adversary(args.adversary, seed=args.seed, **params)
    except ValueError as exc:
        raise SystemExit(str(exc))


def cmd_run(args) -> int:
    graph = _build_graph_or_exit(args.graph, args.n, args.seed)
    trace = broadcast(
        graph,
        args.algorithm,
        adversary=_build_adversary_or_exit(args),
        seed=args.seed,
        max_rounds=args.max_rounds,
        engine=args.engine,
    )
    if args.json:
        print(trace.to_json())
    else:
        print(
            render_table(
                ["quantity", "value"],
                list(trace.summary().items()),
                title=f"{args.algorithm} on {graph.name}",
            )
        )
    return 0 if trace.completed else 1


def _legacy_spec(args) -> ExperimentSpec:
    """Build a one-spec grid from the sweep subcommand's inline flags."""
    if args.graph not in graph_kinds():
        raise SystemExit(
            f"unknown graph {args.graph!r}; choose from {graph_kinds()}"
        )
    if args.adversary not in adversary_kinds():
        raise SystemExit(
            f"unknown adversary {args.adversary!r}; "
            f"choose from {adversary_kinds()}"
        )
    params = {"p": args.p} if args.adversary == "random" else {}
    return ExperimentSpec(
        name=f"{args.algorithm}-{args.graph}",
        algorithms=[args.algorithm],
        graphs=[
            (args.graph, int(s)) for s in args.sizes.split(",")
        ],
        adversaries=[(args.adversary, params)],
        engines=[args.engine or "reference"],
        seeds=[int(s) for s in args.seeds.split(",")],
        max_rounds=args.max_rounds,
    )


def _print_growth_fits(result: SweepResult) -> None:
    """Fit completion-round growth per (sweep, algorithm) curve."""
    for sweep, by_sweep in result.group_by("sweep").items():
        for alg, group in by_sweep.group_by("algorithm").items():
            summaries = group.summarize_by("n")
            if len(summaries) < 2:
                continue
            sizes = sorted(summaries)
            means = [summaries[n].mean for n in sizes]
            fit = best_fit(sizes, means)
            print(f"growth fit [{sweep}/{alg}]: {fit.format()}")


def cmd_sweep(args) -> int:
    if args.spec:
        try:
            specs = load_specs(args.spec)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"cannot load spec {args.spec!r}: {exc}")
        if args.engine:
            # An explicit --engine overrides every loaded spec's engine
            # axis (results are engine-independent; only keys change).
            specs = [
                dataclasses.replace(spec, engines=(args.engine,))
                for spec in specs
            ]
        title = f"sweep spec {args.spec}"
    else:
        specs = [_legacy_spec(args)]
        title = (
            f"{args.algorithm} on {args.graph}, adversary="
            f"{args.adversary}, seeds={[int(s) for s in args.seeds.split(',')]}"
        )

    try:
        runner = SweepRunner(
            specs,
            workers=args.workers,
            results_path=args.results,
            batch=args.batch,
        )
        result = runner.run()
    except ValueError as exc:
        # Bad worker counts, unknown graph/adversary kinds, duplicate
        # task keys: user input problems, not crashes.
        raise SystemExit(str(exc))

    if result.skipped_lines:
        print(
            f"warning: {args.results} held {result.skipped_lines} "
            "unparsable line(s) (torn or foreign); their tasks were "
            "re-run",
            file=sys.stderr,
        )
    for record in result.failures:
        print(
            f"warning: {record.key} hit the round cap", file=sys.stderr
        )
    print(
        render_table(
            SweepResult.TABLE_HEADER,
            result.table_rows(),
            title=f"{title} ({result.executed} run, "
            f"{result.resumed} resumed, {result.elapsed:.1f}s, "
            f"workers={args.workers})",
        )
    )
    _print_growth_fits(result)
    return 0 if not result.failures else 1


def cmd_lowerbound(args) -> int:
    from repro.core import (
        make_round_robin_processes,
        make_strong_select_processes,
    )
    from repro.lowerbounds import (
        theorem2_lower_bound,
        theorem11_lower_bound,
        theorem12_construction,
    )

    factories = {
        "round_robin": make_round_robin_processes,
        "strong_select": lambda n: make_strong_select_processes(n),
    }
    try:
        factory = factories[args.algorithm]
    except KeyError:
        raise SystemExit(
            "lower-bound drivers need a deterministic algorithm: "
            f"{sorted(factories)}"
        )

    if args.theorem == 2:
        res = theorem2_lower_bound(factory, args.n)
        print(
            render_table(
                ["quantity", "value"],
                [
                    ["n", res.n],
                    ["worst-case rounds", res.worst_rounds],
                    ["paper bound (n-3)", res.theorem_bound],
                    ["worst bridge identity", res.worst_bridge_uid],
                    ["bound holds", res.bound_holds],
                ],
                title=f"Theorem 2 vs {args.algorithm}",
            )
        )
        return 0
    if args.theorem == 11:
        res = theorem11_lower_bound(factory, n=args.n)
        print(
            render_table(
                ["quantity", "value"],
                [
                    ["n", res.n],
                    ["layers x width", f"{res.num_layers} x {res.width}"],
                    ["total rounds", res.total_rounds],
                    ["rounds / n^1.5",
                     f"{res.normalized:.3f}" if res.normalized else "—"],
                ],
                title=f"Theorem 11 vs {args.algorithm}",
            )
        )
        return 0
    if args.theorem == 12:
        n = args.n if args.n % 2 else args.n + 1
        res = theorem12_construction(factory, n)
        print(
            render_table(
                ["quantity", "value"],
                [
                    ["n", res.n],
                    ["certified rounds", res.total_rounds],
                    ["stages", len(res.stages)],
                    ["min early-stage rounds", res.min_early_stage_rounds],
                    ["paper total guarantee",
                     f"{res.paper_total_guarantee:.0f}"],
                ],
                title=f"Theorem 12 vs {args.algorithm}",
            )
        )
        return 0
    raise SystemExit("supported theorems: 2, 11, 12")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Broadcasting in unreliable radio networks — "
        "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one broadcast")
    run.add_argument("--graph", default="gnp", help=f"{graph_kinds()}")
    run.add_argument("--n", type=int, default=32)
    run.add_argument(
        "--algorithm", default="strong_select",
        help=f"{algorithm_names()}"
    )
    run.add_argument(
        "--adversary", default="greedy", help=f"{adversary_kinds()}"
    )
    run.add_argument("--p", type=float, default=0.5,
                     help="delivery probability for --adversary random")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--max-rounds", type=int, default=None)
    run.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default="reference",
        help="execution engine (fast = bitmask fast path, vector = "
        "NumPy lockstep; identical traces)",
    )
    run.add_argument("--json", action="store_true")
    run.set_defaults(func=cmd_run)

    sweep = sub.add_parser(
        "sweep", help="run an experiment grid (optionally in parallel)"
    )
    sweep.add_argument(
        "--spec", default=None,
        help="JSON spec file (one spec object or a list); overrides the "
        "inline grid flags below",
    )
    sweep.add_argument("--graph", default="gnp")
    sweep.add_argument("--algorithm", default="strong_select")
    sweep.add_argument("--adversary", default="greedy")
    sweep.add_argument("--p", type=float, default=0.5)
    sweep.add_argument("--sizes", default="16,32,64")
    sweep.add_argument("--seeds", default="0,1,2")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--max-rounds", type=int, default=None)
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep (default 1: in-process)",
    )
    sweep.add_argument(
        "--results", default=None,
        help="JSON-lines results file; existing records are resumed "
        "rather than re-run",
    )
    sweep.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default=None,
        help="execution engine for every task (overrides the spec "
        "file's engines axis); vector runs each science cell's whole "
        "seed list in NumPy lockstep, and tasks whose combination is "
        "ineligible for a mask engine silently use the reference "
        "engine",
    )
    sweep.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help="group tasks by science cell so each worker builds the "
        "cell's graph and compiled engine topology once and runs all "
        "its seeds against them (--no-batch: per-task dispatch); "
        "records are identical either way",
    )
    sweep.set_defaults(func=cmd_sweep)

    lb = sub.add_parser(
        "lowerbound", help="run an executable lower-bound construction"
    )
    lb.add_argument("--theorem", type=int, required=True,
                    choices=[2, 11, 12])
    lb.add_argument("--n", type=int, default=17)
    lb.add_argument("--algorithm", default="round_robin")
    lb.set_defaults(func=cmd_lowerbound)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
