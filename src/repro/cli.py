"""Command-line interface: run broadcasts and experiments from a shell.

Usage (module form)::

    python -m repro run --graph gnp --n 64 --algorithm harmonic \
        --adversary greedy --seed 7
    python -m repro sweep --graph clique-bridge --algorithm strong_select \
        --sizes 16,32,64 --seeds 0,1,2
    python -m repro lowerbound --theorem 2 --n 32
    python -m repro lowerbound --theorem 12 --n 33 --algorithm round_robin

Everything the CLI can do is a thin layer over the library API; the CLI
exists so experiments are reproducible from shell history alone.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.adversaries import (
    FullDeliveryAdversary,
    GreedyInterferer,
    NoDeliveryAdversary,
    RandomDeliveryAdversary,
)
from repro.analysis import best_fit, render_table, summarize
from repro.core.runner import algorithm_names, broadcast, make_processes
from repro.graphs import (
    clique_bridge,
    gnp_dual,
    gray_zone,
    grid,
    layered_pairs,
    line,
    pivot_layers_for_n,
    ring,
    with_complete_unreliable,
)

GRAPHS = {
    "gnp": lambda n, seed: gnp_dual(n, seed=seed),
    "line": lambda n, seed: line(n),
    "hard-line": lambda n, seed: with_complete_unreliable(line(n)),
    "ring": lambda n, seed: ring(max(3, n)),
    "grid": lambda n, seed: grid(max(2, int(n**0.5)),
                                 max(2, int(n**0.5))),
    "gray-zone": lambda n, seed: gray_zone(n, seed=seed)[0],
    "clique-bridge": lambda n, seed: clique_bridge(max(3, n)).graph,
    "layered-pairs": lambda n, seed: layered_pairs(
        n if n % 2 else n + 1
    ).graph,
    "pivot-layers": lambda n, seed: pivot_layers_for_n(n).graph,
}

ADVERSARIES = {
    "none": lambda args: NoDeliveryAdversary(),
    "full": lambda args: FullDeliveryAdversary(),
    "random": lambda args: RandomDeliveryAdversary(
        args.p, seed=args.seed
    ),
    "greedy": lambda args: GreedyInterferer(),
}


def _build_graph(name: str, n: int, seed: int):
    try:
        factory = GRAPHS[name]
    except KeyError:
        raise SystemExit(
            f"unknown graph {name!r}; choose from {sorted(GRAPHS)}"
        )
    return factory(n, seed)


def _build_adversary(args):
    try:
        factory = ADVERSARIES[args.adversary]
    except KeyError:
        raise SystemExit(
            f"unknown adversary {args.adversary!r}; "
            f"choose from {sorted(ADVERSARIES)}"
        )
    return factory(args)


def cmd_run(args) -> int:
    graph = _build_graph(args.graph, args.n, args.seed)
    trace = broadcast(
        graph,
        args.algorithm,
        adversary=_build_adversary(args),
        seed=args.seed,
        max_rounds=args.max_rounds,
    )
    if args.json:
        print(trace.to_json())
    else:
        print(
            render_table(
                ["quantity", "value"],
                list(trace.summary().items()),
                title=f"{args.algorithm} on {graph.name}",
            )
        )
    return 0 if trace.completed else 1


def cmd_sweep(args) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    seeds = [int(s) for s in args.seeds.split(",")]
    rows = []
    means = []
    for n in sizes:
        rounds: List[int] = []
        for seed in seeds:
            graph = _build_graph(args.graph, n, seed)
            trace = broadcast(
                graph,
                args.algorithm,
                adversary=_build_adversary(args),
                seed=seed,
                max_rounds=args.max_rounds,
            )
            if not trace.completed:
                print(
                    f"warning: n={n} seed={seed} hit the round cap",
                    file=sys.stderr,
                )
                continue
            rounds.append(trace.completion_round)
        summary = summarize(rounds) if rounds else None
        means.append(summary.mean if summary else float("nan"))
        rows.append([n, summary.format() if summary else "—"])
    print(
        render_table(
            ["n", "completion rounds"],
            rows,
            title=(
                f"{args.algorithm} on {args.graph}, adversary="
                f"{args.adversary}, seeds={seeds}"
            ),
        )
    )
    if len(sizes) >= 2 and all(m == m for m in means):
        fit = best_fit(sizes, means)
        print(f"growth fit: {fit.format()}")
    return 0


def cmd_lowerbound(args) -> int:
    from repro.core import (
        make_round_robin_processes,
        make_strong_select_processes,
    )
    from repro.lowerbounds import (
        theorem2_lower_bound,
        theorem11_lower_bound,
        theorem12_construction,
    )

    factories = {
        "round_robin": make_round_robin_processes,
        "strong_select": lambda n: make_strong_select_processes(n),
    }
    try:
        factory = factories[args.algorithm]
    except KeyError:
        raise SystemExit(
            "lower-bound drivers need a deterministic algorithm: "
            f"{sorted(factories)}"
        )

    if args.theorem == 2:
        res = theorem2_lower_bound(factory, args.n)
        print(
            render_table(
                ["quantity", "value"],
                [
                    ["n", res.n],
                    ["worst-case rounds", res.worst_rounds],
                    ["paper bound (n-3)", res.theorem_bound],
                    ["worst bridge identity", res.worst_bridge_uid],
                    ["bound holds", res.bound_holds],
                ],
                title=f"Theorem 2 vs {args.algorithm}",
            )
        )
        return 0
    if args.theorem == 11:
        res = theorem11_lower_bound(factory, n=args.n)
        print(
            render_table(
                ["quantity", "value"],
                [
                    ["n", res.n],
                    ["layers x width", f"{res.num_layers} x {res.width}"],
                    ["total rounds", res.total_rounds],
                    ["rounds / n^1.5",
                     f"{res.normalized:.3f}" if res.normalized else "—"],
                ],
                title=f"Theorem 11 vs {args.algorithm}",
            )
        )
        return 0
    if args.theorem == 12:
        n = args.n if args.n % 2 else args.n + 1
        res = theorem12_construction(factory, n)
        print(
            render_table(
                ["quantity", "value"],
                [
                    ["n", res.n],
                    ["certified rounds", res.total_rounds],
                    ["stages", len(res.stages)],
                    ["min early-stage rounds", res.min_early_stage_rounds],
                    ["paper total guarantee",
                     f"{res.paper_total_guarantee:.0f}"],
                ],
                title=f"Theorem 12 vs {args.algorithm}",
            )
        )
        return 0
    raise SystemExit("supported theorems: 2, 11, 12")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Broadcasting in unreliable radio networks — "
        "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one broadcast")
    run.add_argument("--graph", default="gnp", help=f"{sorted(GRAPHS)}")
    run.add_argument("--n", type=int, default=32)
    run.add_argument(
        "--algorithm", default="strong_select",
        help=f"{algorithm_names()}"
    )
    run.add_argument(
        "--adversary", default="greedy", help=f"{sorted(ADVERSARIES)}"
    )
    run.add_argument("--p", type=float, default=0.5,
                     help="delivery probability for --adversary random")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--max-rounds", type=int, default=None)
    run.add_argument("--json", action="store_true")
    run.set_defaults(func=cmd_run)

    sweep = sub.add_parser("sweep", help="sweep n and fit the growth")
    sweep.add_argument("--graph", default="gnp")
    sweep.add_argument("--algorithm", default="strong_select")
    sweep.add_argument("--adversary", default="greedy")
    sweep.add_argument("--p", type=float, default=0.5)
    sweep.add_argument("--sizes", default="16,32,64")
    sweep.add_argument("--seeds", default="0,1,2")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--max-rounds", type=int, default=None)
    sweep.set_defaults(func=cmd_sweep)

    lb = sub.add_parser(
        "lowerbound", help="run an executable lower-bound construction"
    )
    lb.add_argument("--theorem", type=int, required=True,
                    choices=[2, 11, 12])
    lb.add_argument("--n", type=int, default=17)
    lb.add_argument("--algorithm", default="round_robin")
    lb.set_defaults(func=cmd_lowerbound)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
