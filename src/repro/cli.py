"""Command-line interface: run broadcasts and experiments from a shell.

Usage (module form)::

    python -m repro run --graph gnp --n 64 --algorithm harmonic \
        --adversary greedy --seed 7
    python -m repro sweep --graph clique-bridge --algorithm strong_select \
        --sizes 16,32,64 --seeds 0,1,2 --workers 4
    python -m repro sweep --spec examples/specs/tiny_sweep.json \
        --workers 4 --results results/tiny.jsonl
    python -m repro sweep --spec examples/specs/tiny_sweep.json \
        --workers 4 --results results/campaign --store sharded
    python -m repro merge --results results/campaign --out results/all.jsonl
    python -m repro report --results results/campaign
    python -m repro lowerbound --theorem 2 --n 32
    python -m repro lowerbound --theorem 12 --n 33 --algorithm round_robin

Everything the CLI can do is a thin layer over the library API; the CLI
exists so experiments are reproducible from shell history alone.  Sweeps
go through :mod:`repro.experiments`: they fan out over worker processes,
and with ``--results`` they persist each run as a JSON line and resume
by key after an interruption.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Optional, Sequence

from repro.analysis import best_fit, render_table
from repro.core.runner import (
    algorithm_names,
    broadcast,
    suggested_round_limit,
)
from repro.sim.engine import ENGINE_NAMES
from repro.sim.faults import REJOIN_POLICIES
from repro.store import STORE_BACKENDS
from repro.experiments import (
    ExperimentSpec,
    SweepResult,
    SweepRunner,
    adversary_descriptions,
    adversary_kinds,
    build_adversary,
    build_churn,
    build_graph,
    churn_descriptions,
    churn_kinds,
    graph_descriptions,
    graph_kinds,
    load_specs,
)

#: One-liners for ``repro list`` (algorithms have no registry
#: descriptions; the registered names come from repro.core.runner).
_ALGORITHM_DESCRIPTIONS = {
    "strong_select": "deterministic Strong Select (Section 5)",
    "strong_select_ks": "Strong Select on Kautz singleton SSFs",
    "harmonic": "randomized Harmonic Broadcast (Section 6)",
    "round_robin": "uids transmit in fixed rotation",
    "decay": "classical Decay baseline",
    "uniform": "transmit each round with probability 1/n",
}


def _warn_health(health, source: str, noun: str) -> None:
    """Print the unified store-damage warning when there is damage.

    One text for both subsystems and every backend — the
    :class:`~repro.store.base.StoreHealth` satellite of the storage
    redesign.
    """
    message = health.warning(source, noun)
    if message:
        print(message, file=sys.stderr)


def _store_backend(args) -> Optional[str]:
    """The ``--store`` choice, with ``auto`` mapped to detection."""
    choice = getattr(args, "store", "auto")
    return None if choice == "auto" else choice


def _build_graph_or_exit(name: str, n: int, seed: int):
    try:
        return build_graph(name, n, seed=seed)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _adversary_params(adversary: str, args, n: int) -> dict:
    """The extra factory params an inline CLI adversary choice needs."""
    if adversary == "random":
        return {"p": args.p}
    if adversary == "pivot":
        # PivotAdversary is built from the pivot-layers layout for the
        # run's network size.
        return {"n": n}
    return {}


def _build_adversary_or_exit(args, n: int):
    params = _adversary_params(args.adversary, args, n)
    try:
        return build_adversary(args.adversary, seed=args.seed, **params)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _build_churn_or_exit(args, n: int, max_rounds: int):
    """Resolve the run's churn schedule from the inline flags."""
    params = {}
    if args.churn == "rate":
        params = {
            "crash_rate": args.crash_rate,
            "recover_rate": args.recover_rate,
            "rejoin": args.rejoin,
        }
    elif args.churn == "window":
        params = {
            "count": args.churn_count,
            "start": args.churn_start,
            "length": args.churn_length,
            "rejoin": args.rejoin,
        }
    try:
        return build_churn(
            args.churn, n=n, rounds=max_rounds, seed=args.seed, **params
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def cmd_run(args) -> int:
    graph = _build_graph_or_exit(args.graph, args.n, args.seed)
    # Resolve the round cap up front: a rate-based churn schedule must
    # cover the whole horizon the run can reach.
    max_rounds = args.max_rounds
    if max_rounds is None:
        max_rounds = suggested_round_limit(args.algorithm, graph)
    trace = broadcast(
        graph,
        args.algorithm,
        adversary=_build_adversary_or_exit(args, args.n),
        seed=args.seed,
        max_rounds=max_rounds,
        engine=args.engine,
        churn=_build_churn_or_exit(args, graph.n, max_rounds),
    )
    if args.json:
        print(trace.to_json())
    else:
        print(
            render_table(
                ["quantity", "value"],
                list(trace.summary().items()),
                title=f"{args.algorithm} on {graph.name}",
            )
        )
    return 0 if trace.completed else 1


def _legacy_spec(args) -> ExperimentSpec:
    """Build a one-spec grid from the sweep subcommand's inline flags."""
    if args.graph not in graph_kinds():
        raise SystemExit(
            f"unknown graph {args.graph!r}; choose from {graph_kinds()}"
        )
    if args.adversary not in adversary_kinds():
        raise SystemExit(
            f"unknown adversary {args.adversary!r}; "
            f"choose from {adversary_kinds()}"
        )
    sizes = [int(s) for s in args.sizes.split(",")]
    if args.adversary == "pivot" and len(sizes) > 1:
        # The pivot adversary is built per network size; one spec entry
        # cannot cover a size grid.  Spec files can (one adversary
        # entry per size); the inline form takes a single --sizes.
        raise SystemExit(
            "--adversary pivot needs a single --sizes value "
            "(its layout is built per network size); use a spec file "
            "for grids"
        )
    params = _adversary_params(args.adversary, args, sizes[0])
    return ExperimentSpec(
        name=f"{args.algorithm}-{args.graph}",
        algorithms=[args.algorithm],
        graphs=[(args.graph, n) for n in sizes],
        adversaries=[(args.adversary, params)],
        engines=[args.engine or "reference"],
        seeds=[int(s) for s in args.seeds.split(",")],
        max_rounds=args.max_rounds,
    )


def _print_growth_fits(result: SweepResult) -> None:
    """Fit completion-round growth per (sweep, algorithm) curve."""
    for sweep, by_sweep in result.group_by("sweep").items():
        for alg, group in by_sweep.group_by("algorithm").items():
            summaries = group.summarize_by("n")
            if len(summaries) < 2:
                continue
            sizes = sorted(summaries)
            means = [summaries[n].mean for n in sizes]
            fit = best_fit(sizes, means)
            print(f"growth fit [{sweep}/{alg}]: {fit.format()}")


def cmd_sweep(args) -> int:
    if args.spec:
        try:
            specs = load_specs(args.spec)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"cannot load spec {args.spec!r}: {exc}")
        if args.engine:
            # An explicit --engine overrides every loaded spec's engine
            # axis (results are engine-independent; only keys change).
            specs = [
                dataclasses.replace(spec, engines=(args.engine,))
                for spec in specs
            ]
        title = f"sweep spec {args.spec}"
    else:
        specs = [_legacy_spec(args)]
        title = (
            f"{args.algorithm} on {args.graph}, adversary="
            f"{args.adversary}, seeds={[int(s) for s in args.seeds.split(',')]}"
        )

    sink = None
    if args.events:
        if not args.results:
            raise SystemExit(
                "--events requires --results: the events.jsonl stream "
                "lives beside the campaign store"
            )
        from repro.obs import JsonlTelemetry, events_path
        from repro.store import detect_backend

        # A directory-shaped campaign keeps its stream *inside* the
        # directory; create it up front so events_path resolves the
        # directory form even on a campaign's very first sweep.
        backend = _store_backend(args) or detect_backend(args.results)
        if backend in ("sharded", "columnar"):
            os.makedirs(args.results, exist_ok=True)
        sink = JsonlTelemetry(events_path(args.results))

    try:
        runner = SweepRunner(
            specs,
            workers=args.workers,
            results_path=args.results,
            batch=args.batch,
            store=_store_backend(args),
            flush_every=args.flush_every,
        )
        if sink is not None:
            from repro.obs import merge_event_files, use

            try:
                with use(sink):
                    result = runner.run()
            finally:
                sink.close()
                merge_event_files(args.results)
        else:
            result = runner.run()
    except (ValueError, ImportError) as exc:
        # Bad worker counts, unknown graph/adversary kinds, duplicate
        # task keys, campaign fingerprint mismatches, a missing NumPy
        # for --store columnar: user input problems, not crashes.
        raise SystemExit(str(exc))

    _warn_health(result.health, args.results, "task")
    for record in result.failures:
        print(
            f"warning: {record.key} hit the round cap", file=sys.stderr
        )
    print(
        render_table(
            SweepResult.TABLE_HEADER,
            result.table_rows(),
            title=f"{title} ({result.executed} run, "
            f"{result.resumed} resumed, {result.elapsed:.1f}s, "
            f"workers={args.workers})",
        )
    )
    _print_growth_fits(result)
    return 0 if not result.failures else 1


def cmd_list(args) -> int:
    """Print every registered kind with its one-line description."""
    from repro.search import searcher_descriptions

    if args.json:
        doc = {
            "graphs": graph_descriptions(),
            "adversaries": adversary_descriptions(),
            "churns": churn_descriptions(),
            "algorithms": {
                name: _ALGORITHM_DESCRIPTIONS.get(name, "")
                for name in algorithm_names()
            },
            "searchers": searcher_descriptions(),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    sections = [
        ("graph kinds", graph_descriptions()),
        ("adversary kinds", adversary_descriptions()),
        ("churn kinds (fault injection)", churn_descriptions()),
        (
            "algorithms",
            {
                name: _ALGORITHM_DESCRIPTIONS.get(name, "")
                for name in algorithm_names()
            },
        ),
        ("searcher kinds (repro search)", searcher_descriptions()),
    ]
    for title, table in sections:
        print(
            render_table(
                ["kind", "description"],
                [[kind, desc] for kind, desc in sorted(table.items())],
                title=title,
            )
        )
    return 0


def _search_settings(args) -> "SearchSettings":  # noqa: F821
    from repro.search import SearchSettings

    kind = args.graph
    if kind not in graph_kinds():
        # Accept underscore spellings of registered hyphenated kinds.
        dashed = kind.replace("_", "-")
        if dashed in graph_kinds():
            kind = dashed
        else:
            raise SystemExit(
                f"unknown graph {args.graph!r}; choose from "
                f"{graph_kinds()}"
            )
    if args.algorithm not in algorithm_names():
        raise SystemExit(
            f"unknown algorithm {args.algorithm!r}; choose from "
            f"{algorithm_names()}"
        )
    return SearchSettings(
        algorithm=args.algorithm,
        graph_kind=kind,
        n=args.n,
        collision_rule=args.cr,
        start_mode=args.start_mode,
        seed=args.seed,
        max_rounds=args.max_rounds,
        engine=args.engine,
        churn_genes=getattr(args, "churn_genes", False),
    )


def cmd_search(args) -> int:
    from repro.search import (
        SearchBudget,
        run_search,
        supports_theorem2,
        theorem2_comparison,
    )

    settings = _search_settings(args)
    try:
        result = run_search(
            settings,
            searcher=args.searcher,
            budget=SearchBudget(
                evaluations=args.budget, batch_size=args.batch_size
            ),
            seed=args.search_seed,
            workers=args.workers,
            results_path=args.results,
            verify=args.verify,
            store=_store_backend(args),
            flush_every=args.flush_every,
            evaluator=args.evaluator,
        )
    except (ValueError, ImportError) as exc:
        raise SystemExit(str(exc))

    _warn_health(result.health, args.results, "candidate")
    comparison = None
    if args.compare_theorem2:
        if supports_theorem2(settings):
            comparison = theorem2_comparison(result)
        else:
            print(
                f"warning: --compare-theorem2 skipped: graph kind "
                f"{settings.graph_kind!r} is not in the Theorem-2 "
                "clique-bridge family",
                file=sys.stderr,
            )
    if args.json:
        doc = result.summary()
        if comparison is not None:
            doc["theorem2"] = dataclasses.asdict(comparison)
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        rows = result.table_rows()
        if result.replay_verified is not None:
            rows.append(["replay verified", result.replay_verified])
        print(
            render_table(
                ["quantity", "value"],
                rows,
                title=f"adversary search: {args.searcher} vs "
                f"{settings.algorithm} on {settings.graph_kind} "
                f"(n={settings.n}, {settings.collision_rule}, "
                f"{result.executed} run, {result.resumed} resumed, "
                f"{result.elapsed:.1f}s)",
            )
        )
        if comparison is not None:
            print(
                render_table(
                    ["quantity", "value"],
                    comparison.table_rows(),
                    title="search vs Theorem 2",
                )
            )
    return 0 if result.replay_verified is not False else 1


def cmd_merge(args) -> int:
    """Fold a campaign store into one canonical JSONL results file."""
    from repro.store import RawRecord, merge_store, open_store

    try:
        source = open_store(
            args.results, parse=RawRecord, backend=_store_backend(args)
        )
        count = merge_store(source, args.out)
    except (OSError, ValueError, ImportError) as exc:
        raise SystemExit(str(exc))
    _warn_health(source.health, args.results, "record")
    print(
        f"merged {args.results} -> {args.out}: {count} record(s), "
        "key-sorted (idempotent; resumable by any sweep/search "
        "with --results pointing at the merged file)"
    )
    return 0


def cmd_report(args) -> int:
    """Stream a campaign into the paper-reproduction table set."""
    from repro.analysis.report import CampaignReport
    from repro.experiments import RunResult
    from repro.store import open_store

    try:
        store = open_store(
            args.results,
            parse=RunResult.from_dict,
            backend=_store_backend(args),
        )
        report = CampaignReport.from_store(store)
    except (OSError, ValueError, ImportError) as exc:
        raise SystemExit(str(exc))
    _warn_health(store.health, args.results, "record")
    # Perf panel: present only when the campaign ran with --events (a
    # missing stream is a normal state, not an error).
    from repro.obs import events_path, perf_summary, render_perf_panel

    perf = (
        perf_summary(args.results)
        if events_path(args.results).exists()
        else None
    )
    if args.json:
        doc = report.to_dict()
        if perf is not None:
            doc["perf"] = perf
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(report.render(title=f"campaign {args.results}"))
        if perf is not None:
            print()
            print(render_perf_panel(perf))
    if not report.records:
        # A valid-but-empty campaign (e.g. a store opened before its
        # first sweep finished a record) is a normal state, not an
        # error; scripts gating on the exit code must only fail on
        # damage.  The JSON payload already reports records: 0.
        print(
            f"note: {args.results} holds no sweep records yet",
            file=sys.stderr,
        )
    return 1 if store.health.issues else 0


def cmd_progress(args) -> int:
    """Render a campaign's progress from its events.jsonl stream."""
    import time

    from repro.obs import events_path, read_progress

    stream = events_path(args.results)
    if not stream.exists():
        raise SystemExit(
            f"no events stream at {stream}; run the sweep with --events"
        )
    progress = read_progress(args.results)
    if args.json:
        print(json.dumps(progress.to_dict(), indent=2, sort_keys=True))
        return 0
    if not args.follow:
        print(progress.render_line())
        return 0
    # Live tail: rewrite one status line until the campaign finishes.
    while True:
        line = progress.render_line()
        print(f"\r\x1b[2K{line}", end="", flush=True)
        if progress.finished:
            print()
            return 0
        time.sleep(args.interval)
        progress = read_progress(args.results)


def cmd_profile(args) -> int:
    """Run one cell under instrumentation; print timings + counters."""
    from repro.experiments import ExperimentSpec
    from repro.obs import profile_task

    try:
        spec = ExperimentSpec(
            name="profile",
            algorithms=(args.algorithm,),
            graphs=((args.graph, args.n),),
            adversaries=(
                (
                    args.adversary,
                    _adversary_params(args.adversary, args, args.n),
                ),
            ),
            collision_rules=(args.cr,),
            engines=(args.engine,),
            churns=(args.churn,),
            seeds=(args.seed,),
            max_rounds=args.max_rounds,
        )
        report = profile_task(spec.tasks()[0])
    except (ValueError, ImportError) as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def cmd_check(args) -> int:
    """Run the AST invariant checker (see docs/CHECKS.md)."""
    import pathlib

    from repro.check import (
        Baseline,
        check_paths,
        render_human,
        render_json,
        render_rule_list,
    )

    if args.list_rules:
        print(render_rule_list())
        return 0
    paths = [pathlib.Path(p) for p in (args.paths or ["src/repro"])]
    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(pathlib.Path(args.baseline))
        except ValueError as exc:
            raise SystemExit(str(exc))
    try:
        report = check_paths(paths, baseline=baseline)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    if args.write_baseline:
        Baseline.from_findings(list(report.findings)).save(
            pathlib.Path(args.write_baseline)
        )
        print(
            f"wrote baseline {args.write_baseline}: "
            f"{len(report.findings)} finding(s) grandfathered"
        )
        return 0
    print(render_json(report) if args.json else render_human(report))
    return 0 if report.clean else 1


def cmd_lowerbound(args) -> int:
    from repro.core import (
        make_round_robin_processes,
        make_strong_select_processes,
    )
    from repro.lowerbounds import (
        theorem2_lower_bound,
        theorem11_lower_bound,
        theorem12_construction,
    )

    factories = {
        "round_robin": make_round_robin_processes,
        "strong_select": lambda n: make_strong_select_processes(n),
    }
    try:
        factory = factories[args.algorithm]
    except KeyError:
        raise SystemExit(
            "lower-bound drivers need a deterministic algorithm: "
            f"{sorted(factories)}"
        )

    if args.theorem == 2:
        res = theorem2_lower_bound(factory, args.n)
        print(
            render_table(
                ["quantity", "value"],
                [
                    ["n", res.n],
                    ["worst-case rounds", res.worst_rounds],
                    ["paper bound (n-3)", res.theorem_bound],
                    ["worst bridge identity", res.worst_bridge_uid],
                    ["bound holds", res.bound_holds],
                ],
                title=f"Theorem 2 vs {args.algorithm}",
            )
        )
        return 0
    if args.theorem == 11:
        res = theorem11_lower_bound(factory, n=args.n)
        print(
            render_table(
                ["quantity", "value"],
                [
                    ["n", res.n],
                    ["layers x width", f"{res.num_layers} x {res.width}"],
                    ["total rounds", res.total_rounds],
                    ["rounds / n^1.5",
                     f"{res.normalized:.3f}" if res.normalized else "—"],
                ],
                title=f"Theorem 11 vs {args.algorithm}",
            )
        )
        return 0
    if args.theorem == 12:
        n = args.n if args.n % 2 else args.n + 1
        res = theorem12_construction(factory, n)
        print(
            render_table(
                ["quantity", "value"],
                [
                    ["n", res.n],
                    ["certified rounds", res.total_rounds],
                    ["stages", len(res.stages)],
                    ["min early-stage rounds", res.min_early_stage_rounds],
                    ["paper total guarantee",
                     f"{res.paper_total_guarantee:.0f}"],
                ],
                title=f"Theorem 12 vs {args.algorithm}",
            )
        )
        return 0
    raise SystemExit("supported theorems: 2, 11, 12")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Broadcasting in unreliable radio networks — "
        "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one broadcast")
    run.add_argument("--graph", default="gnp", help=f"{graph_kinds()}")
    run.add_argument("--n", type=int, default=32)
    run.add_argument(
        "--algorithm", default="strong_select",
        help=f"{algorithm_names()}"
    )
    run.add_argument(
        "--adversary", default="greedy", help=f"{adversary_kinds()}"
    )
    run.add_argument("--p", type=float, default=0.5,
                     help="delivery probability for --adversary random")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--max-rounds", type=int, default=None)
    run.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default="reference",
        help="execution engine (fast = bitmask fast path, vector = "
        "NumPy lockstep; identical traces)",
    )
    run.add_argument(
        "--churn", default="none",
        help=f"fault-injection kind: {churn_kinds()} (see `repro "
        "list`); schedules derive deterministically from --seed",
    )
    run.add_argument(
        "--crash-rate", type=float, default=0.02,
        help="per-round crash probability for --churn rate",
    )
    run.add_argument(
        "--recover-rate", type=float, default=0.2,
        help="per-round recovery probability for --churn rate",
    )
    run.add_argument(
        "--rejoin", choices=list(REJOIN_POLICIES),
        default="uninformed",
        help="recovery policy: uninformed loses the payload on crash "
        "(must be re-informed), informed keeps it (stable storage)",
    )
    run.add_argument(
        "--churn-count", type=int, default=1,
        help="nodes taken down by --churn window",
    )
    run.add_argument(
        "--churn-start", type=int, default=2,
        help="first down round for --churn window",
    )
    run.add_argument(
        "--churn-length", type=int, default=4,
        help="rounds the window nodes stay down",
    )
    run.add_argument("--json", action="store_true")
    run.set_defaults(func=cmd_run)

    sweep = sub.add_parser(
        "sweep", help="run an experiment grid (optionally in parallel)"
    )
    sweep.add_argument(
        "--spec", default=None,
        help="JSON spec file (one spec object or a list); overrides the "
        "inline grid flags below",
    )
    sweep.add_argument("--graph", default="gnp")
    sweep.add_argument("--algorithm", default="strong_select")
    sweep.add_argument("--adversary", default="greedy")
    sweep.add_argument("--p", type=float, default=0.5)
    sweep.add_argument("--sizes", default="16,32,64")
    sweep.add_argument("--seeds", default="0,1,2")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--max-rounds", type=int, default=None)
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep (default 1: in-process)",
    )
    sweep.add_argument(
        "--results", default=None,
        help="results file (JSON lines) or campaign directory "
        "(sharded/columnar store); existing records are resumed "
        "rather than re-run",
    )
    sweep.add_argument(
        "--store", choices=list(STORE_BACKENDS), default="auto",
        help="result-store backend behind --results (auto: a "
        "directory is a sharded campaign, a file is JSON lines; "
        "see docs/STORAGE.md)",
    )
    sweep.add_argument(
        "--flush-every", type=int, default=None,
        help="flush the result store every N records (default: the "
        "backend's policy — jsonl 1, sharded 64, columnar 512)",
    )
    sweep.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default=None,
        help="execution engine for every task (overrides the spec "
        "file's engines axis); vector runs each science cell's whole "
        "seed list in NumPy lockstep (seed-dependent graph kinds get "
        "one graph per lane) and silently uses the reference engine "
        "only when NumPy is missing",
    )
    sweep.add_argument(
        "--events", action="store_true",
        help="write a schema-versioned events.jsonl telemetry stream "
        "beside --results (progress, worker heartbeats, engine "
        "counters; consumed by repro progress and repro report)",
    )
    sweep.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help="group tasks by science cell so each worker builds the "
        "cell's graph and compiled engine topology once and runs all "
        "its seeds against them (--no-batch: per-task dispatch); "
        "records are identical either way",
    )
    sweep.set_defaults(func=cmd_sweep)

    lister = sub.add_parser(
        "list",
        help="list registered graph/adversary/algorithm/searcher kinds",
    )
    lister.add_argument(
        "--json", action="store_true",
        help="machine-readable registry listing (kind -> description "
        "per registry) for tooling",
    )
    lister.set_defaults(func=cmd_list)

    search = sub.add_parser(
        "search",
        help="search for a worst-case adversary strategy "
        "(see docs/SEARCH.md)",
    )
    search.add_argument("--graph", default="clique-bridge",
                        help=f"{graph_kinds()}")
    search.add_argument("--n", type=int, default=16)
    search.add_argument(
        "--algorithm", default="round_robin",
        help=f"{algorithm_names()}",
    )
    search.add_argument(
        "--cr", default="CR1", choices=["CR1", "CR2", "CR3", "CR4"],
        help="collision rule the candidates are scored under",
    )
    search.add_argument(
        "--start-mode", default="synchronous",
        choices=["synchronous", "asynchronous"],
        help="start rule (lower-bound constructions use synchronous)",
    )
    search.add_argument(
        "--searcher", default="random",
        help="searcher kind (see `repro list`)",
    )
    search.add_argument(
        "--budget", type=int, default=64,
        help="total candidate evaluations (across resumes)",
    )
    search.add_argument(
        "--batch-size", type=int, default=8,
        help="candidates generated and evaluated per iteration",
    )
    search.add_argument(
        "--seed", type=int, default=0,
        help="cell seed: engine randomness derives from it",
    )
    search.add_argument(
        "--search-seed", type=int, default=0,
        help="seed of the candidate-generation rng",
    )
    search.add_argument("--max-rounds", type=int, default=None)
    search.add_argument(
        "--workers", type=int, default=1,
        help="parallel evaluation processes (default 1: in-process)",
    )
    search.add_argument(
        "--results", default=None,
        help="candidate results file (JSON lines) or campaign "
        "directory; existing evaluations are resumed by key rather "
        "than re-run",
    )
    search.add_argument(
        "--store", choices=list(STORE_BACKENDS), default="auto",
        help="result-store backend behind --results (see "
        "docs/STORAGE.md)",
    )
    search.add_argument(
        "--flush-every", type=int, default=None,
        help="flush the result store every N records (default: the "
        "backend's policy)",
    )
    search.add_argument(
        "--engine", choices=["auto", "reference", "fast"],
        default="auto",
        help="sandbox evaluation engine: auto picks the fast engine "
        "(CR4 genomes included; reference forces the baseline)",
    )
    search.add_argument(
        "--evaluator", choices=["sandbox", "lockstep"],
        default="sandbox",
        help="population-scoring backend: sandbox runs each candidate "
        "alone (--workers parallelises), lockstep scores whole "
        "batches as NumPy vector-engine lanes; scores are identical, "
        "and --results files resume across backends",
    )
    search.add_argument(
        "--verify", action=argparse.BooleanOptionalAction, default=True,
        help="replay-certify the best genome through a strict "
        "ReplayAdversary on the reference engine (--no-verify skips)",
    )
    search.add_argument(
        "--churn-genes", action="store_true",
        help="let genomes carry crash genes (node, round, down-for): "
        "the adversary co-optimises crash/recovery timing alongside "
        "edge deliveries; the source is never crashed",
    )
    search.add_argument(
        "--compare-theorem2", action="store_true",
        help="on clique-bridge cells, also print the found worst case "
        "next to the Theorem 2 bound and scripted-adversary stall",
    )
    search.add_argument("--json", action="store_true")
    search.set_defaults(func=cmd_search)

    merge = sub.add_parser(
        "merge",
        help="merge a campaign store into one canonical JSONL file "
        "(see docs/STORAGE.md)",
    )
    merge.add_argument(
        "--results", required=True,
        help="source store: a campaign directory (sharded/columnar) "
        "or a JSONL results file",
    )
    merge.add_argument(
        "--out", required=True,
        help="destination JSONL file; existing records there are "
        "kept and updated by key (idempotent, key-sorted, atomic)",
    )
    merge.add_argument(
        "--store", choices=list(STORE_BACKENDS), default="auto",
        help="source backend (auto: detect from the path/manifest)",
    )
    merge.set_defaults(func=cmd_merge)

    report = sub.add_parser(
        "report",
        help="stream a campaign into the paper-reproduction tables "
        "(completion summaries + Thm 2/10/18 reference bounds)",
    )
    report.add_argument(
        "--results", required=True,
        help="campaign to report on: results file or campaign "
        "directory under any store backend",
    )
    report.add_argument(
        "--store", choices=list(STORE_BACKENDS), default="auto",
        help="store backend (auto: detect from the path/manifest)",
    )
    report.add_argument("--json", action="store_true")
    report.set_defaults(func=cmd_report)

    prog = sub.add_parser(
        "progress",
        help="show a campaign's progress from its events.jsonl stream "
        "(written by repro sweep --events)",
    )
    prog.add_argument(
        "results",
        help="the campaign's results file or directory (the stream "
        "lives beside it)",
    )
    prog.add_argument(
        "--json", action="store_true",
        help="machine-readable progress document (done/total, rate, "
        "ETA, per-worker liveness)",
    )
    prog.add_argument(
        "--follow", action="store_true",
        help="keep re-rendering the status line until the campaign "
        "finishes",
    )
    prog.add_argument(
        "--interval", type=float, default=1.0,
        help="poll interval in seconds for --follow",
    )
    prog.set_defaults(func=cmd_progress)

    profile = sub.add_parser(
        "profile",
        help="run one experiment cell under instrumentation and print "
        "its phase-timing and engine-counter tables",
    )
    profile.add_argument("--graph", default="gnp",
                         help=f"{graph_kinds()}")
    profile.add_argument("--n", type=int, default=32)
    profile.add_argument(
        "--algorithm", default="strong_select",
        help=f"{algorithm_names()}",
    )
    profile.add_argument(
        "--adversary", default="greedy", help=f"{adversary_kinds()}"
    )
    profile.add_argument(
        "--p", type=float, default=0.5,
        help="delivery probability for --adversary random",
    )
    profile.add_argument(
        "--cr", default="CR4", choices=["CR1", "CR2", "CR3", "CR4"],
        help="collision rule for the profiled cell",
    )
    profile.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default="reference",
        help="execution engine to profile",
    )
    profile.add_argument(
        "--churn", default="none",
        help=f"fault-injection kind: {churn_kinds()}",
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--max-rounds", type=int, default=None)
    profile.add_argument("--json", action="store_true")
    profile.set_defaults(func=cmd_profile)

    check = sub.add_parser(
        "check",
        help="statically check the determinism/eligibility/import "
        "contracts (AST rules RPR001-RPR008, see docs/CHECKS.md)",
    )
    check.add_argument(
        "paths", nargs="*",
        help="files or directories to check (default: src/repro)",
    )
    check.add_argument(
        "--baseline", default=None,
        help="baseline JSON of grandfathered findings to subtract "
        "(the repo's own policy is an empty baseline)",
    )
    check.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="snapshot the current findings into FILE and exit 0",
    )
    check.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (code, contract, fix, scope)",
    )
    check.add_argument("--json", action="store_true")
    check.set_defaults(func=cmd_check)

    lb = sub.add_parser(
        "lowerbound", help="run an executable lower-bound construction"
    )
    lb.add_argument("--theorem", type=int, required=True,
                    choices=[2, 11, 12])
    lb.add_argument("--n", type=int, default=17)
    lb.add_argument("--algorithm", default="round_robin")
    lb.set_defaults(func=cmd_lowerbound)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
