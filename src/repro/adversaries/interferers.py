"""Adaptive interfering adversaries.

These adversaries actively try to slow broadcast down:

* :class:`GreedyInterferer` — the generic worst-case heuristic: whenever an
  uninformed node is about to receive exactly one message over reliable
  links, the adversary deploys unreliable links from *other* concurrent
  senders to turn the reception into a collision; and it resolves CR4
  collisions to silence.  Against a single isolated sender it is powerless
  (reliable links always deliver), which is exactly the leverage the
  paper's algorithms are designed around.
* :class:`PivotAdversary` — the Theorem-11 companion: on a
  :func:`~repro.graphs.constructions.pivot_layers` network it withholds all
  unreliable deliveries except to blanket the next layer with collisions
  whenever the frontier pivot transmits concurrently with anyone else.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.adversaries.base import Adversary, AdversaryView
from repro.graphs.constructions import PivotLayersLayout
from repro.sim.messages import Message


class GreedyInterferer(Adversary):
    """Collide every almost-successful reception it legally can.

    For each uninformed node ``u`` receiving exactly one reliable arrival,
    the adversary looks for another concurrent sender ``w`` with an
    unreliable edge ``(w, u)`` and schedules it, producing a collision at
    ``u``.  CR4 collisions resolve to silence.

    This is the strongest *generic* adversary in the package: it needs no
    knowledge of the algorithm, only of the current round's senders.
    """

    def choose_deliveries(
        self, view: AdversaryView
    ) -> Dict[int, FrozenSet[int]]:
        network = view.network
        senders = sorted(view.senders)
        # Count reliable arrivals at every node.
        reliable_arrivals: Dict[int, int] = {}
        for s in senders:
            for t in network.reliable_out(s):
                reliable_arrivals[t] = reliable_arrivals.get(t, 0) + 1
        for s in senders:
            # A sender's own message reaches itself.
            reliable_arrivals[s] = reliable_arrivals.get(s, 0) + 1

        chosen: Dict[int, set] = {}
        for u in network.nodes:
            if u in view.informed:
                continue
            if reliable_arrivals.get(u, 0) != 1:
                continue
            # Find an interfering sender with an unreliable edge to u.
            for w in senders:
                if u in network.unreliable_only_out(w):
                    chosen.setdefault(w, set()).add(u)
                    break
        return {w: frozenset(ts) for w, ts in chosen.items()}

    def resolve_cr4(
        self, view: AdversaryView, node: int, arrivals: List[Message]
    ) -> Optional[Message]:
        return None  # silence: the collision conveys nothing


class PivotAdversary(Adversary):
    """The runtime adversary for the Theorem-11 pivot-layer experiment.

    Invariants maintained on a :class:`PivotLayersLayout` network whose
    per-layer pivot nodes carry adversarially chosen process identities
    (the identity choice is made by the Theorem-11 driver, which passes a
    per-layer pivot node table here):

    * Unreliable links stay silent by default, so a lone non-pivot sender
      in the frontier layer informs nobody new (its reliable out-edges are
      empty beyond its own layer's pivot-mediated structure).
    * Whenever the frontier pivot transmits concurrently with any other
      active process, the adversary delivers that other process's
      unreliable blanket edges into the next layer, colliding the pivot's
      reliable delivery there.
    * CR4 collisions resolve to silence.

    Args:
        layout: The pivot-layer network layout.
        pivots: For each layer index ``k`` (0-based), the node in layer
            ``k`` that owns the reliable edges into layer ``k+1``.  In the
            :func:`~repro.graphs.constructions.pivot_layers` construction
            this is the first node of each layer.
    """

    def __init__(
        self, layout: PivotLayersLayout, pivots: Optional[Sequence[int]] = None
    ) -> None:
        self.layout = layout
        if pivots is None:
            pivots = [layer[0] for layer in layout.layers]
        self.pivots = list(pivots)
        self._layer_of: Dict[int, int] = {}
        for k, layer in enumerate(layout.layers):
            for v in layer:
                self._layer_of[v] = k

    def choose_deliveries(
        self, view: AdversaryView
    ) -> Dict[int, FrozenSet[int]]:
        layers = self.layout.layers
        senders = set(view.senders)
        chosen: Dict[int, set] = {}
        # For every layer whose pivot transmits this round, collide its
        # reliable delivery into layer j+1 using any concurrent sender
        # that has blanket edges there (i.e. any sender in layers ≤ j).
        for j in range(len(layers) - 1):
            pivot = self.pivots[j]
            if pivot not in senders:
                continue
            next_layer = frozenset(layers[j + 1])
            for w in sorted(senders - {pivot}):
                if self._layer_of[w] > j:
                    continue  # no edges into layer j+1
                targets = view.network.unreliable_only_out(w) & next_layer
                if targets:
                    chosen.setdefault(w, set()).update(targets)
                    break  # one colliding message suffices
        return {w: frozenset(ts) for w, ts in chosen.items()}

    def resolve_cr4(
        self, view: AdversaryView, node: int, arrivals: List[Message]
    ) -> Optional[Message]:
        return None
