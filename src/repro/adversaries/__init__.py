"""Adversaries controlling unreliable links, CR4 resolution, and the
process-to-node assignment."""

from repro.adversaries.base import (
    Adversary,
    AdversaryView,
    FixedAssignmentAdversary,
    FullDeliveryAdversary,
    NoDeliveryAdversary,
)
from repro.adversaries.interferers import GreedyInterferer, PivotAdversary
from repro.adversaries.scripted import ReplayAdversary, ScriptedDeliveries
from repro.adversaries.simple import (
    FlappingLinkAdversary,
    RandomDeliveryAdversary,
)

__all__ = [
    "Adversary",
    "AdversaryView",
    "FixedAssignmentAdversary",
    "FlappingLinkAdversary",
    "FullDeliveryAdversary",
    "GreedyInterferer",
    "NoDeliveryAdversary",
    "PivotAdversary",
    "RandomDeliveryAdversary",
    "ReplayAdversary",
    "ScriptedDeliveries",
]
