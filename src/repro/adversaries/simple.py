"""Oblivious and stochastic adversaries.

These model benign-to-moderate unreliability: links that flap randomly
rather than maliciously.  They are the right adversaries for the
"realistic workload" examples (gray-zone networks) and for calibrating how
much of an algorithm's slowdown is due to adversarial scheduling versus
mere link noise.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional

from repro.adversaries.base import Adversary, AdversaryView
from repro.sim.messages import Message


class RandomDeliveryAdversary(Adversary):
    """Each unreliable link independently delivers with probability ``p``.

    Args:
        p: Per-link per-round delivery probability.
        seed: PRNG seed (the adversary's randomness is independent of the
            processes').
        cr4_mode: How CR4 collisions at non-senders resolve:
            ``"silence"`` (always ``⊥``), ``"first"`` (deliver the message
            from the lowest-uid sender), or ``"random"`` (uniformly choose
            silence or one of the arrivals).
    """

    def __init__(
        self, p: float, seed: int = 0, cr4_mode: str = "silence"
    ) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        if cr4_mode not in ("silence", "first", "random"):
            raise ValueError(f"unknown cr4_mode {cr4_mode!r}")
        self.p = p
        self._rng = random.Random(seed)
        self.cr4_mode = cr4_mode

    def choose_deliveries(
        self, view: AdversaryView
    ) -> Dict[int, FrozenSet[int]]:
        out: Dict[int, FrozenSet[int]] = {}
        for sender in sorted(view.senders):
            targets = frozenset(
                t
                for t in sorted(view.network.unreliable_only_out(sender))
                if self._rng.random() < self.p
            )
            if targets:
                out[sender] = targets
        return out

    def resolve_cr4(
        self, view: AdversaryView, node: int, arrivals: List[Message]
    ) -> Optional[Message]:
        if self.cr4_mode == "silence":
            return None
        if self.cr4_mode == "first":
            return min(arrivals, key=lambda m: m.sender)
        choice = self._rng.randrange(len(arrivals) + 1)
        if choice == len(arrivals):
            return None
        return arrivals[choice]


class FlappingLinkAdversary(Adversary):
    """Links alternate between up and down phases of fixed lengths.

    A coarse model of periodic interference (e.g. a co-channel device with
    a duty cycle): every unreliable link is simultaneously up for
    ``up_rounds`` rounds, then down for ``down_rounds`` rounds, repeating.
    Deterministic — useful for reproducible worst-ish cases in tests.
    """

    def __init__(self, up_rounds: int = 1, down_rounds: int = 1) -> None:
        if up_rounds < 0 or down_rounds < 0 or up_rounds + down_rounds == 0:
            raise ValueError("phase lengths must be non-negative, not both 0")
        self.up_rounds = up_rounds
        self.down_rounds = down_rounds

    def _is_up(self, round_number: int) -> bool:
        period = self.up_rounds + self.down_rounds
        return (round_number - 1) % period < self.up_rounds

    def choose_deliveries(
        self, view: AdversaryView
    ) -> Dict[int, FrozenSet[int]]:
        if not self._is_up(view.round_number):
            return {}
        return {
            v: view.network.unreliable_only_out(v) for v in view.senders
        }
