"""Scripted and replay adversaries.

Two uses:

* **Replay** — re-run an execution's adversary choices against the same
  (or a different) algorithm: :class:`ReplayAdversary` takes the
  per-round unreliable deliveries and CR4 resolutions recorded in a
  trace and repeats them verbatim.  Replaying a trace against the same
  seeded algorithm must reproduce it exactly (tested), which makes
  recorded executions self-certifying artifacts.
* **Hand-written scripts** — lower-bound explorations often need "in
  round 7, deliver exactly these edges": :class:`ScriptedDeliveries`
  takes a round-indexed table.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.adversaries.base import Adversary, AdversaryView
from repro.sim.messages import Message, ReceptionKind
from repro.sim.trace import ExecutionTrace


class ScriptedDeliveries(Adversary):
    """Delivers unreliable edges per a fixed round-indexed table.

    Args:
        script: ``script[round][sender] = iterable of targets``.  Rounds
            or senders missing from the table get no deliveries.  Targets
            that are not legal for the round's actual senders raise at
            run time (the engine validates), surfacing script/algorithm
            mismatches instead of silently ignoring them.
        proc_mapping: Optional fixed node → uid assignment.
    """

    def __init__(
        self,
        script: Mapping[int, Mapping[int, Sequence[int]]],
        proc_mapping: Optional[Mapping[int, int]] = None,
    ) -> None:
        self._script = {
            rnd: {s: frozenset(ts) for s, ts in row.items()}
            for rnd, row in script.items()
        }
        self._proc_mapping = (
            dict(proc_mapping) if proc_mapping is not None else None
        )

    def assign_processes(self, network, uids):
        if self._proc_mapping is None:
            return super().assign_processes(network, uids)
        return dict(self._proc_mapping)

    def choose_deliveries(
        self, view: AdversaryView
    ) -> Dict[int, FrozenSet[int]]:
        row = self._script.get(view.round_number, {})
        return {
            sender: targets
            for sender, targets in row.items()
            if sender in view.senders
        }


class ReplayAdversary(Adversary):
    """Replays the adversary choices recorded in an execution trace.

    Deliveries are replayed per round (senders absent in the new
    execution are dropped); CR4 resolutions are replayed by matching the
    recorded reception at each node — silence stays silence, a delivered
    message is re-delivered when the same sender transmits again.

    Args:
        trace: The recorded execution (must carry receptions if CR4
            resolutions should be replayed; deliveries alone need only
            the default records).
        replay_proc: Reuse the recorded node → uid assignment.
        strict: Treat divergence from the recorded execution as an
            error: a recorded CR4 message reception whose sender's
            message is *not* among the new execution's arrivals raises
            instead of silently resolving to silence.  The default
            (lenient) behaviour supports replaying against a different
            algorithm; strict mode is what replay *certification* wants
            — same algorithm, same seed, any mismatch is a bug
            (:func:`repro.search.evaluate.verify_replay` relies on it).
    """

    def __init__(
        self,
        trace: ExecutionTrace,
        replay_proc: bool = True,
        strict: bool = False,
    ) -> None:
        self._deliveries: Dict[int, Dict[int, FrozenSet[int]]] = {
            rec.round_number: dict(rec.unreliable_deliveries)
            for rec in trace.rounds
        }
        self._receptions = {
            rec.round_number: rec.receptions for rec in trace.rounds
        }
        self._proc = dict(trace.proc) if replay_proc else None
        self._strict = strict

    def assign_processes(self, network, uids):
        if self._proc is None:
            return super().assign_processes(network, uids)
        if sorted(self._proc.values()) != sorted(uids):
            raise ValueError(
                "recorded proc mapping does not cover the uid set"
            )
        return dict(self._proc)

    def choose_deliveries(
        self, view: AdversaryView
    ) -> Dict[int, FrozenSet[int]]:
        row = self._deliveries.get(view.round_number, {})
        return {
            sender: targets
            for sender, targets in row.items()
            if sender in view.senders
        }

    def resolve_cr4(
        self, view: AdversaryView, node: int, arrivals: List[Message]
    ) -> Optional[Message]:
        receptions = self._receptions.get(view.round_number)
        if not receptions or node not in receptions:
            return None
        recorded = receptions[node]
        if recorded.kind is not ReceptionKind.MESSAGE:
            return None
        assert recorded.message is not None
        for msg in arrivals:
            if msg.sender == recorded.message.sender:
                return msg
        if self._strict:
            raise ValueError(
                f"replay diverged: round {view.round_number} recorded a "
                f"CR4 delivery from sender {recorded.message.sender} at "
                f"node {node}, but no such message arrived"
            )
        return None
