"""Adversary interface for the dual graph model.

Per Section 2.1, an adversary may control three things:

1. The ``proc`` mapping — the bijection assigning processes (identities) to
   graph nodes, fixed before the execution starts.
2. The per-round behaviour of unreliable links — for each sender, which of
   its ``G' \\ G`` out-neighbours the transmission additionally reaches
   (its ``G`` out-neighbours are always reached).
3. Under collision rule CR4, the resolution at each non-sending node where
   two or more messages arrive: silence, or any one of the arrivals.

An *adversary class* restricts what the adversary observes when making
these choices.  The implementations in this package range from oblivious
(random deliveries) to fully adaptive (the scripted lower-bound
adversaries, which read the entire execution state).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.graphs.dualgraph import DualGraph
from repro.sim.messages import Message


@dataclass
class AdversaryView:
    """What the adversary sees when making its per-round choices.

    Attributes:
        round_number: Current 1-based round.
        network: The dual graph (the adversary knows the topology).
        senders: Mapping from sending *node* to the message it transmits
            this round.
        informed: Nodes whose process currently holds the broadcast payload
            (before this round's deliveries).
        active: Nodes whose process is awake this round.
        proc: The node → process-uid assignment in force.
        crashed: Nodes currently down under fault injection
            (:class:`~repro.sim.faults.ChurnSchedule`); empty in
            failure-free runs.  Transmissions toward them dissolve, so
            an adaptive adversary can avoid wasting deliveries there.
    """

    round_number: int
    network: DualGraph
    senders: Mapping[int, Message]
    informed: FrozenSet[int]
    active: FrozenSet[int]
    proc: Mapping[int, int]
    crashed: FrozenSet[int] = frozenset()


class Adversary(abc.ABC):
    """Base class for all adversaries.

    Subclasses typically override :meth:`choose_deliveries`; the other
    hooks have reasonable defaults (identity process assignment, silence
    for CR4 collisions — the weakest resolution for the algorithm).
    """

    def assign_processes(
        self, network: DualGraph, uids: Sequence[int]
    ) -> Dict[int, int]:
        """Choose the ``proc`` mapping: node → process uid.

        The default assigns ``uids`` to nodes in index order.  Lower-bound
        adversaries override this to place specific identities at specific
        nodes (e.g. the bridge in Theorem 2).
        """
        if len(uids) != network.n:
            raise ValueError(
                f"need exactly {network.n} process uids, got {len(uids)}"
            )
        return {node: uids[node] for node in network.nodes}

    def on_execution_start(
        self, network: DualGraph, proc: Mapping[int, int]
    ) -> None:
        """Called once before round 1.  Default: no-op."""

    @abc.abstractmethod
    def choose_deliveries(
        self, view: AdversaryView
    ) -> Dict[int, FrozenSet[int]]:
        """Choose unreliable deliveries for this round.

        Returns:
            For each sending node, the subset of its *unreliable-only*
            out-neighbours that the transmission reaches this round.
            Senders may be omitted (treated as the empty set).  The engine
            validates that every returned node is a legal target.
        """

    def resolve_cr4(
        self, view: AdversaryView, node: int, arrivals: List[Message]
    ) -> Optional[Message]:
        """Resolve a CR4 collision at a non-sending node.

        Returns ``None`` for silence or one of ``arrivals`` to deliver it.
        The default is silence — the weakest outcome for the algorithm,
        and the conventional choice when the adversary has no better plan.
        """
        return None


class NoDeliveryAdversary(Adversary):
    """Never uses unreliable links.

    The execution then proceeds exactly as in the classical model on the
    reliable graph ``G`` — the benign extreme of the adversary spectrum.
    """

    def choose_deliveries(
        self, view: AdversaryView
    ) -> Dict[int, FrozenSet[int]]:
        return {}


class FixedAssignmentAdversary(Adversary):
    """Installs a fixed ``proc`` mapping, delegating link behaviour.

    Useful for worst-case identity placements (the adversary's other
    lever besides unreliable links): wrap any link-level adversary and
    override only where each identity sits.

    Args:
        mapping: node → process uid (must be a bijection over the uids).
        inner: The adversary controlling deliveries and CR4 resolution
            (default: never delivers on unreliable links).
    """

    def __init__(
        self,
        mapping: Mapping[int, int],
        inner: Optional["Adversary"] = None,
    ) -> None:
        self._mapping = dict(mapping)
        self._inner = inner

    def assign_processes(
        self, network: DualGraph, uids: Sequence[int]
    ) -> Dict[int, int]:
        if sorted(self._mapping) != list(network.nodes) or sorted(
            self._mapping.values()
        ) != sorted(uids):
            raise ValueError("mapping is not a node→uid bijection")
        return dict(self._mapping)

    def on_execution_start(self, network, proc) -> None:
        if self._inner is not None:
            self._inner.on_execution_start(network, proc)

    def choose_deliveries(self, view: AdversaryView):
        if self._inner is None:
            return {}
        return self._inner.choose_deliveries(view)

    def resolve_cr4(self, view, node, arrivals):
        if self._inner is None:
            return None
        return self._inner.resolve_cr4(view, node, arrivals)


class FullDeliveryAdversary(Adversary):
    """Always delivers on every unreliable link.

    The execution then proceeds as in the classical model on ``G'`` —
    maximal connectivity, but also maximal collision potential.
    """

    def choose_deliveries(
        self, view: AdversaryView
    ) -> Dict[int, FrozenSet[int]]:
        return {
            v: view.network.unreliable_only_out(v) for v in view.senders
        }
