"""The pluggable search strategies over adversary-genome space.

All searchers speak one *ask/tell* protocol so the harness
(:mod:`repro.search.harness`) owns batching, parallel evaluation,
budget accounting and persistence:

* :meth:`Searcher.ask` returns the next batch of candidate genomes,
  drawing all randomness from the harness-supplied rng (which makes the
  whole search deterministic for a fixed seed, and lets a resumed run
  regenerate the identical candidate sequence);
* :meth:`Searcher.tell` feeds the evaluated scores back, in ask order.

Three strategies, in increasing use of structure:

* :class:`RandomRestartSearch` — i.i.d. samples from the genome space;
  the unbiased baseline every smarter searcher must beat.
* :class:`LocalMutationSearch` — a (1+1)-style hill climber: each batch
  mutates the incumbent, and ``tell`` adopts any candidate at least as
  good (neutral drift crosses plateaus).
* :class:`GreedyLookaheadSearch` — constructs a genome round by round
  against a live population of
  :class:`~repro.lowerbounds.sandbox.SandboxProcess` copies: at each
  round it scores a small set of delivery patterns one round ahead on
  ``clone()``\\ d populations and commits the most stalling one.  Each
  ``ask`` varies the proc assignment (identity, reversal, then random
  permutations) — the identity-placement lever behind Theorem 2.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.runner import make_processes, suggested_round_limit
from repro.lowerbounds.sandbox import SandboxProcess
from repro.search.evaluate import CandidateScore, SearchSettings
from repro.search.genome import GenomeSpace, StrategyGenome
from repro.sim.collision import CollisionRule, resolve_reception
from repro.sim.engine import StartMode
from repro.sim.messages import Message, Reception, SILENCE

#: The payload the evaluation engines broadcast (their default).
_PAYLOAD = "broadcast-message"


class Searcher(abc.ABC):
    """Base class for all search strategies (see module docstring)."""

    #: Registry name, set by subclasses.
    kind: str = ""

    def __init__(
        self, space: GenomeSpace, settings: SearchSettings
    ) -> None:
        self.space = space
        self.settings = settings

    @abc.abstractmethod
    def ask(
        self, rng: random.Random, count: int
    ) -> List[StrategyGenome]:
        """Produce the next ``count`` candidates, in evaluation order."""

    def tell(self, scored: Sequence[CandidateScore]) -> None:
        """Receive the scores of the last ask, in ask order."""


class RandomRestartSearch(Searcher):
    """Independent uniform samples — the no-structure baseline."""

    kind = "random"

    def ask(
        self, rng: random.Random, count: int
    ) -> List[StrategyGenome]:
        """Sample ``count`` fresh genomes."""
        return [self.space.random(rng) for _ in range(count)]


class LocalMutationSearch(Searcher):
    """(1+1)-style local search: mutate the incumbent, keep the best."""

    kind = "local"

    def __init__(
        self, space: GenomeSpace, settings: SearchSettings
    ) -> None:
        super().__init__(space, settings)
        self._incumbent: Optional[CandidateScore] = None

    def ask(
        self, rng: random.Random, count: int
    ) -> List[StrategyGenome]:
        """Mutations of the incumbent (first batch: a random seed)."""
        if self._incumbent is None:
            seed_genome = self.space.random(rng)
            return [seed_genome] + [
                self.space.mutate(seed_genome, rng)
                for _ in range(count - 1)
            ]
        parent = self._incumbent.genome
        return [self.space.mutate(parent, rng) for _ in range(count)]

    def tell(self, scored: Sequence[CandidateScore]) -> None:
        """Adopt any candidate at least as good as the incumbent."""
        for score in scored:
            if (
                self._incumbent is None
                or score.objective >= self._incumbent.objective
            ):
                self._incumbent = score


class GreedyLookaheadSearch(Searcher):
    """Round-by-round greedy construction with one-round lookahead.

    For each round the searcher knows the exact sender set (it drives a
    sandbox copy of every process), enumerates a small candidate set of
    delivery patterns — no deliveries, the
    :class:`~repro.adversaries.interferers.GreedyInterferer` collision
    pattern, full delivery, plus a few random patterns — and scores each
    by cloning the whole population, applying the pattern's receptions,
    and measuring (nodes informed now, nodes the algorithm would inform
    next round if the adversary then stays quiet, nodes woken).  The
    lexicographically most stalling pattern is committed and becomes the
    genome's delivery gene for that round.

    The sandbox population uses the same per-process RNG streams as the
    evaluation engine, and every ``decide_send`` is consulted exactly
    once per round on the authoritative copies (scoring only queries
    clones), so the constructed genome's lookahead simulation matches
    its engine evaluation even for randomized algorithms.

    Args:
        space: The genome space (graph + horizon).
        settings: The search cell.
        random_patterns: Extra rng-drawn delivery patterns scored per
            round, on top of the three structured candidates.
    """

    kind = "greedy"

    def __init__(
        self,
        space: GenomeSpace,
        settings: SearchSettings,
        random_patterns: int = 2,
    ) -> None:
        super().__init__(space, settings)
        self.random_patterns = random_patterns
        self._plan = 0  # proc-assignment plan counter across asks

    # ------------------------------------------------------------------
    # Ask/tell
    # ------------------------------------------------------------------
    def _next_proc(self, rng: random.Random) -> Tuple[int, ...]:
        n = self.space.graph.n
        plan, self._plan = self._plan, self._plan + 1
        if plan == 0 or not self.space.search_proc:
            return tuple(range(n))
        if plan == 1:
            return tuple(reversed(range(n)))
        uids = list(range(n))
        rng.shuffle(uids)
        return tuple(uids)

    def ask(
        self, rng: random.Random, count: int
    ) -> List[StrategyGenome]:
        """Construct ``count`` genomes, one per proc-assignment plan."""
        return [
            self._construct(self._next_proc(rng), rng)
            for _ in range(count)
        ]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _construct(
        self, proc: Tuple[int, ...], rng: random.Random
    ) -> StrategyGenome:
        graph = self.space.graph
        settings = self.settings
        n = graph.n
        cap = settings.max_rounds
        if cap is None:
            cap = suggested_round_limit(settings.algorithm, graph)
        cap = min(cap, self.space.horizon)
        rule = CollisionRule[settings.collision_rule]

        processes = make_processes(
            settings.algorithm, n, **dict(settings.algorithm_params)
        )
        by_uid = {p.uid: p for p in processes}
        eseed = settings.derived_seed
        sandboxes: Dict[int, SandboxProcess] = {}
        for node in graph.nodes:
            sb = SandboxProcess(by_uid[proc[node]], n, _PAYLOAD)
            # Match the engine's per-process RNG stream so the lookahead
            # simulation and the engine evaluation see identical draws.
            sb.ctx.rng = random.Random(f"{eseed}:{proc[node]}")
            sandboxes[node] = sb

        source = graph.source
        sandboxes[source].give_broadcast_input()
        informed = {source}
        active: set = set()
        if StartMode(settings.start_mode) is StartMode.SYNCHRONOUS:
            for node in graph.nodes:
                sandboxes[node].activate(0)
                active.add(node)
        else:
            sandboxes[source].activate(0)
            active.add(source)

        script: Dict[int, Dict[int, FrozenSet[int]]] = {}
        for rnd in range(1, cap + 1):
            senders: Dict[int, Message] = {}
            for node in sorted(active):
                msg = sandboxes[node].would_send(rnd)
                if msg is not None:
                    senders[node] = msg
            chosen = self._choose_pattern(
                rnd, senders, sandboxes, informed, active, rule, rng
            )
            if chosen:
                script[rnd] = chosen
            receptions = _resolve_round(graph, senders, chosen, rule)
            _commit_round(
                rnd, receptions, sandboxes, informed, active
            )
            if len(informed) == n:
                break
        return StrategyGenome(
            horizon=self.space.horizon,
            deliveries=script,
            proc=proc,
        )

    def _choose_pattern(
        self,
        rnd: int,
        senders: Dict[int, Message],
        sandboxes: Dict[int, SandboxProcess],
        informed: set,
        active: set,
        rule: CollisionRule,
        rng: random.Random,
    ) -> Dict[int, FrozenSet[int]]:
        graph = self.space.graph
        candidates = [
            {},
            _interfere_pattern(graph, senders, informed),
            {
                s: graph.unreliable_only_out(s)
                for s in senders
                if graph.unreliable_only_out(s)
            },
        ]
        for _ in range(self.random_patterns if senders else 0):
            candidates.append(_random_pattern(graph, senders, rng))
        best_score: Optional[Tuple[int, int, int]] = None
        best: Dict[int, FrozenSet[int]] = {}
        for pattern in candidates:
            score = self._lookahead_score(
                rnd, senders, pattern, sandboxes, informed, active, rule
            )
            if best_score is None or score < best_score:
                best_score, best = score, pattern
        return best

    def _lookahead_score(
        self,
        rnd: int,
        senders: Dict[int, Message],
        pattern: Dict[int, FrozenSet[int]],
        sandboxes: Dict[int, SandboxProcess],
        informed: set,
        active: set,
        rule: CollisionRule,
    ) -> Tuple[int, int, int]:
        """(informed now, informed next round if quiet, woken) — min wins."""
        graph = self.space.graph
        receptions = _resolve_round(graph, senders, pattern, rule)
        clones = {node: sb.clone() for node, sb in sandboxes.items()}
        informed_after = set(informed)
        active_after = set(active)
        _commit_round(
            rnd, receptions, clones, informed_after, active_after
        )
        new_informed = len(informed_after) - len(informed)
        new_active = len(active_after) - len(active)
        # One round ahead: what would the algorithm achieve in rnd+1 if
        # the adversary then withholds every unreliable delivery?
        next_senders: Dict[int, Message] = {}
        for node in sorted(active_after):
            msg = clones[node].would_send(rnd + 1)
            if msg is not None:
                next_senders[node] = msg
        next_receptions = _resolve_round(graph, next_senders, {}, rule)
        threat = sum(
            1
            for node, rec in next_receptions.items()
            if node not in informed_after
            and rec.is_message
            and rec.message.payload == _PAYLOAD
        )
        return (new_informed, threat, new_active)


# ----------------------------------------------------------------------
# Round mechanics shared by construction and scoring
# ----------------------------------------------------------------------
def _resolve_round(
    graph,
    senders: Dict[int, Message],
    deliveries: Dict[int, FrozenSet[int]],
    rule: CollisionRule,
) -> Dict[int, Reception]:
    """Per-node receptions for one round, mirroring the engine's phases.

    Nodes the round does not touch (no arrivals) are omitted; callers
    treat them as silence, exactly like the engine's fast path.
    """
    arrivals: Dict[int, List[Message]] = {}
    setdefault = arrivals.setdefault
    for sender, msg in senders.items():
        setdefault(sender, []).append(msg)
        for target in graph.reliable_out(sender):
            setdefault(target, []).append(msg)
        for target in deliveries.get(sender, ()):
            setdefault(target, []).append(msg)
    return {
        node: resolve_reception(
            rule,
            node,
            node in senders,
            senders.get(node),
            msgs,
            cr4_resolver=None,
        )
        for node, msgs in arrivals.items()
    }


def _commit_round(
    rnd: int,
    receptions: Dict[int, Reception],
    sandboxes: Dict[int, SandboxProcess],
    informed: set,
    active: set,
) -> None:
    """Deliver one round's outcome to a sandbox population in place.

    Mirrors the engine's phase 4: active nodes the round did not reach
    observe silence, sleeping nodes wake only on a message reception
    (activation delivered before the message), and payload custody
    transfers exactly as :meth:`SandboxProcess.feed` implements.
    """
    touched = sorted(set(receptions) | active)
    for node in touched:
        reception = receptions.get(node, SILENCE)
        if node not in active:
            if not reception.is_message:
                continue  # sleeping processes observe nothing
            sandboxes[node].activate(rnd)
            active.add(node)
        sandboxes[node].feed(rnd, reception)
        if node not in informed and sandboxes[node].informed:
            informed.add(node)


def _interfere_pattern(
    graph, senders: Dict[int, Message], informed: set
) -> Dict[int, FrozenSet[int]]:
    """The GreedyInterferer move: collide lone reliable receptions."""
    reliable_arrivals: Dict[int, int] = {}
    for s in senders:
        reliable_arrivals[s] = reliable_arrivals.get(s, 0) + 1
        for t in graph.reliable_out(s):
            reliable_arrivals[t] = reliable_arrivals.get(t, 0) + 1
    chosen: Dict[int, set] = {}
    for u in graph.nodes:
        if u in informed or reliable_arrivals.get(u, 0) != 1:
            continue
        for w in sorted(senders):
            if u in graph.unreliable_only_out(w):
                chosen.setdefault(w, set()).add(u)
                break
    return {w: frozenset(ts) for w, ts in chosen.items()}


def _random_pattern(
    graph, senders: Dict[int, Message], rng: random.Random
) -> Dict[int, FrozenSet[int]]:
    """An rng-drawn legal delivery pattern over the actual senders."""
    chosen: Dict[int, FrozenSet[int]] = {}
    for s in sorted(senders):
        targets = sorted(graph.unreliable_only_out(s))
        if not targets:
            continue
        picked = frozenset(t for t in targets if rng.random() < 0.5)
        if picked:
            chosen[s] = picked
    return chosen


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
SearcherFactory = Callable[..., Searcher]

_SEARCHERS: Dict[str, SearcherFactory] = {
    RandomRestartSearch.kind: RandomRestartSearch,
    LocalMutationSearch.kind: LocalMutationSearch,
    GreedyLookaheadSearch.kind: GreedyLookaheadSearch,
}

_DESCRIPTIONS: Dict[str, str] = {
    "random": "independent random genomes (restart baseline)",
    "local": "(1+1) hill climber mutating the incumbent genome",
    "greedy": "round-by-round construction, sandbox-clone lookahead",
}


def searcher_kinds() -> List[str]:
    """The registered searcher-kind names."""
    return sorted(_SEARCHERS)


def searcher_descriptions() -> Dict[str, str]:
    """One-line description per registered searcher kind."""
    return {kind: _DESCRIPTIONS.get(kind, "") for kind in searcher_kinds()}


def register_searcher(
    kind: str, factory: SearcherFactory, description: str = ""
) -> None:
    """Register a searcher factory ``factory(space, settings, **params)``."""
    if kind in _SEARCHERS:
        raise ValueError(f"searcher kind {kind!r} already registered")
    _SEARCHERS[kind] = factory
    if description:
        _DESCRIPTIONS[kind] = description


def build_searcher(
    kind: str,
    space: GenomeSpace,
    settings: SearchSettings,
    **params,
) -> Searcher:
    """Instantiate a registered searcher kind."""
    try:
        factory = _SEARCHERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown searcher kind {kind!r}; known: {searcher_kinds()}"
        ) from None
    return factory(space, settings, **params)
