"""Candidate evaluation: score genomes against one fixed search cell.

A *search cell* (:class:`SearchSettings`) is everything of a sweep task
except the adversary — algorithm, graph, collision rule, start mode,
engine seed, round cap.  Evaluation mirrors the batched sweep runner's
per-cell economics: the graph is built and its
:class:`~repro.sim.fast_engine.CompiledTopology` compiled **once** per
:class:`EvaluationContext`, then every candidate genome runs against the
shared pair — on the bitmask fast engine by default (the eligibility
truth table is all-yes, CR4 genomes included; an explicit
``settings.engine`` forces one implementation).
``benchmarks/bench_search.py`` measures the win over rebuilding per
candidate.

:class:`PopulationEvaluator` adds the population fan-out, in one of two
backends:

* ``sandbox`` (default) — each genome runs alone; ``workers > 1``
  spreads candidates over a process pool whose workers each build the
  context once (pool initializer) and stream scores back in submission
  order.
* ``lockstep`` — the whole batch scores in-process as lanes of
  :func:`repro.sim.vector_engine.run_lockstep` matrix rounds against
  the shared topology (requires NumPy; ``workers`` is ignored — the
  matrix algebra replaces the pool).

Both backends are deterministic and score-identical (the engines are
trace-equivalent and every lane uses the cell's derived engine seed),
so resume-by-key files interchange freely between them — the same
invariant the sweep runner keeps.

The objective is **stall**: a completed broadcast scores its completion
round, and an execution still incomplete at the round cap scores
``cap + 1`` — strictly worse for the algorithm than any completion, so
maximising the objective searches for worst cases under the cap.
"""

from __future__ import annotations

import multiprocessing
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.runner import make_processes, suggested_round_limit
from repro.experiments.registry import build_graph
from repro.experiments.spec import Params, _fmt_params, _freeze_params
from repro.graphs.dualgraph import DualGraph
from repro.search.genome import StrategyGenome
from repro.sim.collision import CollisionRule
from repro.sim.engine import EngineConfig, StartMode, build_engine
from repro.sim.fast_engine import (
    CompiledTopology,
    compile_topology,
    fast_engine_eligible,
)
from repro.sim.trace import ExecutionTrace

#: Engine preferences accepted by :attr:`SearchSettings.engine`.
#: ``auto`` takes the fast engine (the eligibility truth table is
#: all-yes, CR4 genomes included); explicit names force one
#: implementation.
SEARCH_ENGINES = ("auto", "reference", "fast")

#: Population-scoring backends accepted by :class:`PopulationEvaluator`.
EVALUATOR_BACKENDS = ("sandbox", "lockstep")

#: Max lanes per :func:`repro.sim.vector_engine.run_lockstep` call in
#: the lockstep backend — the same cache-locality bound the batched
#: sweep path uses.
_LOCKSTEP_LANES = 32


@dataclass(frozen=True)
class SearchSettings:
    """One search cell: the fixed inputs every candidate is scored on.

    Everything is a primitive (or frozen tuple), so settings pickle to
    pool workers and serialise into result files.
    """

    algorithm: str
    graph_kind: str
    n: int
    algorithm_params: Params = ()
    graph_params: Params = ()
    collision_rule: str = "CR1"
    start_mode: str = "synchronous"
    seed: int = 0
    max_rounds: Optional[int] = None
    engine: str = "auto"
    #: When true, genomes carry crash genes and every evaluation runs
    #: under the genome's compiled churn schedule — the adversary
    #: co-optimises crash timing alongside edge deliveries.
    churn_genes: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "algorithm_params", _freeze_params(self.algorithm_params)
        )
        object.__setattr__(
            self, "graph_params", _freeze_params(self.graph_params)
        )
        if self.collision_rule not in CollisionRule.__members__:
            raise ValueError(
                f"unknown collision rule {self.collision_rule!r}; known: "
                f"{list(CollisionRule.__members__)}"
            )
        StartMode(self.start_mode)  # raises ValueError on unknown modes
        if self.engine not in SEARCH_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"known: {list(SEARCH_ENGINES)}"
            )

    @property
    def key(self) -> str:
        """Stable cell identifier — the namespace of candidate keys."""
        parts = [
            "search",
            f"{self.algorithm}{_fmt_params(self.algorithm_params)}",
            f"{self.graph_kind}:n{self.n}"
            f"{_fmt_params(self.graph_params)}",
            f"{self.collision_rule}-{self.start_mode}",
            f"s{self.seed}",
        ]
        if self.max_rounds is not None:
            parts.append(f"cap{self.max_rounds}")
        # Emitted only when enabled so every pre-churn cell keeps its
        # key — and therefore its resume-by-key store — unchanged.
        if self.churn_genes:
            parts.append("churn")
        return "/".join(parts)

    @property
    def derived_seed(self) -> int:
        """The engine seed, derived from the cell key like sweep tasks."""
        return zlib.crc32(self.key.encode("utf-8"))


@dataclass(frozen=True)
class CandidateScore:
    """The deterministic outcome of evaluating one genome.

    Attributes:
        genome: The evaluated strategy.
        objective: Completion round, or ``cap + 1`` for an execution the
            cap cut off — higher is a worse case for the algorithm.
        completed: Whether broadcast finished within the cap.
        completion_round: The completion round (``None`` if capped).
        rounds: Rounds actually executed.
        engine: The engine implementation that ran the evaluation.
    """

    genome: StrategyGenome
    objective: int
    completed: bool
    completion_round: Optional[int]
    rounds: int
    engine: str


class EvaluationContext:
    """Shared per-cell setup: one graph build + topology compile.

    Instances are cheap to evaluate against and safe to reuse across any
    number of sequential candidate evaluations (the engines only read
    the compiled topology).  ``graph`` optionally injects an
    already-built graph for the cell (the harness builds one for the
    genome space and shares it here) instead of rebuilding.
    """

    def __init__(
        self,
        settings: SearchSettings,
        graph: Optional[DualGraph] = None,
    ) -> None:
        self.settings = settings
        self.graph: DualGraph = (
            graph
            if graph is not None
            else build_graph(
                settings.graph_kind,
                settings.n,
                seed=settings.seed,
                **dict(settings.graph_params),
            )
        )
        self.topology: CompiledTopology = compile_topology(self.graph)
        self.rule = CollisionRule[settings.collision_rule]
        cap = settings.max_rounds
        if cap is None:
            cap = suggested_round_limit(settings.algorithm, self.graph)
        self.round_cap: int = cap

    def _config(
        self, engine: str, record: bool = False, churn=None
    ) -> EngineConfig:
        return EngineConfig(
            collision_rule=self.rule,
            start_mode=StartMode(self.settings.start_mode),
            max_rounds=self.round_cap,
            seed=self.settings.derived_seed,
            record_receptions=record,
            engine=engine,
            churn=churn,
        )

    def _churn_for(self, genome: StrategyGenome):
        """The genome's compiled churn schedule, or ``None``.

        Gene-free genomes (every genome when ``churn_genes`` is off)
        compile to ``None``, so the evaluation is byte-identical to the
        pre-churn code path.  The cell's source is always protected.
        """
        return genome.churn_schedule(
            self.graph.n, protect=(self.graph.source,)
        )

    def _route_engine(self, adversary) -> str:
        if self.settings.engine == "reference":
            return "reference"
        if fast_engine_eligible(self.rule, adversary):
            # Always true today (the truth table is all-yes, CR4 genome
            # resolvers included); kept as the central routing gate.
            return "fast"
        return "reference"

    def run_genome(
        self,
        genome: StrategyGenome,
        engine: Optional[str] = None,
        record_receptions: bool = False,
    ) -> Tuple[ExecutionTrace, str]:
        """Run one genome and return its trace and the engine used."""
        adversary = genome.build_adversary()
        if engine is None:
            engine = self._route_engine(adversary)
        processes = make_processes(
            self.settings.algorithm,
            self.graph.n,
            **dict(self.settings.algorithm_params),
        )
        eng = build_engine(
            self.graph,
            processes,
            adversary,
            self._config(
                engine,
                record=record_receptions,
                churn=self._churn_for(genome),
            ),
            topology=self.topology,
        )
        return eng.run(), engine

    def evaluate(self, genome: StrategyGenome) -> CandidateScore:
        """Score one genome (see the module docstring's objective)."""
        trace, engine = self.run_genome(genome)
        return score_from_trace(genome, trace, self.round_cap, engine)

    def evaluate_lockstep(
        self, genomes: Sequence[StrategyGenome]
    ) -> List[CandidateScore]:
        """Score a genome batch as vector-engine lockstep lanes.

        Every genome becomes one lane of a
        :func:`repro.sim.vector_engine.run_lockstep` call against the
        cell's shared graph and topology, in blocks of
        :data:`_LOCKSTEP_LANES`.  Each lane runs the cell's derived
        engine seed and round cap — exactly the sandbox configuration —
        and the engines are trace-equivalent, so the scores match
        :meth:`evaluate` objective for objective; only the recorded
        ``engine`` field says ``"vector"``.
        """
        from repro.sim.vector_engine import run_lockstep

        scores: List[CandidateScore] = []
        for lo in range(0, len(genomes), _LOCKSTEP_LANES):
            block = genomes[lo:lo + _LOCKSTEP_LANES]
            traces = run_lockstep(
                self.graph,
                [
                    make_processes(
                        self.settings.algorithm,
                        self.graph.n,
                        **dict(self.settings.algorithm_params),
                    )
                    for _ in block
                ],
                [genome.build_adversary() for genome in block],
                [
                    self._config("vector", churn=self._churn_for(genome))
                    for genome in block
                ],
                topology=self.topology,
            )
            scores.extend(
                score_from_trace(genome, trace, self.round_cap, "vector")
                for genome, trace in zip(block, traces)
            )
        return scores


def score_from_trace(
    genome: StrategyGenome,
    trace: ExecutionTrace,
    round_cap: int,
    engine: str,
) -> CandidateScore:
    """Fold one finished trace into the candidate's deterministic score."""
    objective = (
        trace.completion_round
        if trace.completed and trace.completion_round is not None
        else round_cap + 1
    )
    return CandidateScore(
        genome=genome,
        objective=objective,
        completed=trace.completed,
        completion_round=trace.completion_round,
        rounds=trace.num_rounds,
        engine=engine,
    )


def verify_replay(
    settings: SearchSettings,
    genome: StrategyGenome,
    context: Optional[EvaluationContext] = None,
) -> bool:
    """Replay-certify a genome on the reference engine.

    Runs the genome with reception recording on the reference engine,
    replays the recorded trace through a strict
    :class:`~repro.adversaries.scripted.ReplayAdversary`, and checks the
    two executions agree round for round (senders, deliveries, informing
    rounds, completion).  This is the self-certification property search
    results inherit from the recording machinery.  ``context``
    optionally reuses an existing cell context instead of rebuilding
    the graph and topology.
    """
    from repro.adversaries.scripted import ReplayAdversary

    ctx = context if context is not None else EvaluationContext(settings)
    trace, _ = ctx.run_genome(
        genome, engine="reference", record_receptions=True
    )
    processes = make_processes(
        settings.algorithm, ctx.graph.n, **dict(settings.algorithm_params)
    )
    replay_engine = build_engine(
        ctx.graph,
        processes,
        ReplayAdversary(trace, strict=True),
        # The replay must run under the same churn schedule — crashes
        # are engine state, not adversary behaviour, so the replay
        # adversary alone cannot reproduce them.
        ctx._config("reference", churn=ctx._churn_for(genome)),
        topology=ctx.topology,
    )
    replay = replay_engine.run()
    return (
        replay.completed == trace.completed
        and replay.informed_round == trace.informed_round
        and len(replay.rounds) == len(trace.rounds)
        and all(
            a.senders == b.senders
            and a.unreliable_deliveries == b.unreliable_deliveries
            and a.newly_informed == b.newly_informed
            for a, b in zip(replay.rounds, trace.rounds)
        )
    )


# ----------------------------------------------------------------------
# Parallel fan-out
# ----------------------------------------------------------------------
_WORKER_CTX: Optional[EvaluationContext] = None


def _init_worker(settings: SearchSettings) -> None:
    """Pool initializer: build the shared cell context once per worker."""
    global _WORKER_CTX
    _WORKER_CTX = EvaluationContext(settings)


def _evaluate_remote(genome: StrategyGenome) -> CandidateScore:
    assert _WORKER_CTX is not None, "pool initializer did not run"
    return _WORKER_CTX.evaluate(genome)


class PopulationEvaluator:
    """Evaluate genome batches against one cell, optionally in parallel.

    Args:
        settings: The search cell.
        workers: Worker process count; ``1`` evaluates in-process
            against a single shared :class:`EvaluationContext`.  Only
            the sandbox backend uses a pool — lockstep batches lanes
            in-process (the matrix algebra replaces the fan-out), so
            ``workers`` is ignored there.
        context: Optional prebuilt in-process context to share (pool
            workers always build their own in the initializer).
        backend: ``"sandbox"`` (per-genome runs, the default) or
            ``"lockstep"`` (whole batches as vector-engine lanes; see
            :meth:`EvaluationContext.evaluate_lockstep`).  Requires
            NumPy and is incompatible with an explicit
            ``settings.engine="reference"``; scores are identical
            either way, so stores resume across backends.

    The pool (and the in-process context, unless injected) is created
    lazily on the first :meth:`evaluate` call and reused across
    batches; call :meth:`close` (or use as a context manager) when
    done.
    """

    def __init__(
        self,
        settings: SearchSettings,
        workers: int = 1,
        context: Optional[EvaluationContext] = None,
        backend: str = "sandbox",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in EVALUATOR_BACKENDS:
            raise ValueError(
                f"unknown evaluator backend {backend!r}; "
                f"known: {list(EVALUATOR_BACKENDS)}"
            )
        if backend == "lockstep":
            from repro.sim.vector_engine import have_numpy

            if not have_numpy():
                raise ValueError(
                    "evaluator backend 'lockstep' requires numpy; "
                    "install it or use backend='sandbox'"
                )
            if settings.engine == "reference":
                raise ValueError(
                    "evaluator backend 'lockstep' runs the vector "
                    "engine; engine='reference' conflicts — use "
                    "backend='sandbox'"
                )
        self.settings = settings
        self.workers = workers
        self.backend = backend
        self._ctx = context
        self._pool = None

    def evaluate(
        self, genomes: Sequence[StrategyGenome]
    ) -> List[CandidateScore]:
        """Score a batch, preserving submission order (deterministic)."""
        if not genomes:
            return []
        if self.backend == "lockstep":
            if self._ctx is None:
                self._ctx = EvaluationContext(self.settings)
            return self._ctx.evaluate_lockstep(genomes)
        if self.workers == 1 or len(genomes) == 1:
            if self._ctx is None:
                self._ctx = EvaluationContext(self.settings)
            return [self._ctx.evaluate(g) for g in genomes]
        if self._pool is None:
            # Prefer fork so runtime-registered graph kinds reach the
            # workers, mirroring the sweep runner's policy.
            methods = multiprocessing.get_all_start_methods()
            mp = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = mp.Pool(
                self.workers,
                initializer=_init_worker,
                initargs=(self.settings,),
            )
        chunk = max(1, len(genomes) // (self.workers * 2))
        return list(
            self._pool.imap(_evaluate_remote, genomes, chunksize=chunk)
        )

    def close(self) -> None:
        """Release the worker pool, if one was created."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "PopulationEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Mapping used by callers that need scores keyed by fingerprint.
def scores_by_fingerprint(
    scores: Sequence[CandidateScore],
) -> Dict[str, CandidateScore]:
    """Index a score list by each genome's content fingerprint."""
    return {s.genome.fingerprint: s for s in scores}
