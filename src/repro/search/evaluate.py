"""Candidate evaluation: score genomes against one fixed search cell.

A *search cell* (:class:`SearchSettings`) is everything of a sweep task
except the adversary — algorithm, graph, collision rule, start mode,
engine seed, round cap.  Evaluation mirrors the batched sweep runner's
per-cell economics: the graph is built and its
:class:`~repro.sim.fast_engine.CompiledTopology` compiled **once** per
:class:`EvaluationContext`, then every candidate genome runs against the
shared pair — and each run picks the bitmask fast engine when
:func:`repro.sim.fast_engine.mask_engine_eligible` approves the genome's
adversary (genomes without CR4 genes), falling back to the reference
engine otherwise.  ``benchmarks/bench_search.py`` measures the win over
rebuilding per candidate.

:class:`PopulationEvaluator` adds the parallel fan-out: worker processes
each build the context once (pool initializer) and stream candidate
scores back in submission order, so results are deterministic for any
worker count — the same invariant the sweep runner keeps.

The objective is **stall**: a completed broadcast scores its completion
round, and an execution still incomplete at the round cap scores
``cap + 1`` — strictly worse for the algorithm than any completion, so
maximising the objective searches for worst cases under the cap.
"""

from __future__ import annotations

import multiprocessing
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.runner import make_processes, suggested_round_limit
from repro.experiments.registry import build_graph
from repro.experiments.spec import Params, _fmt_params, _freeze_params
from repro.graphs.dualgraph import DualGraph
from repro.search.genome import StrategyGenome
from repro.sim.collision import CollisionRule
from repro.sim.engine import EngineConfig, StartMode, build_engine
from repro.sim.fast_engine import (
    CompiledTopology,
    compile_topology,
    fast_engine_eligible,
)
from repro.sim.trace import ExecutionTrace

#: Engine preferences accepted by :attr:`SearchSettings.engine`.
#: ``auto`` takes the fast engine whenever the genome's adversary is
#: mask-eligible; explicit names force one implementation (an
#: ineligible ``fast`` request still downgrades, like the sweep layer).
SEARCH_ENGINES = ("auto", "reference", "fast")


@dataclass(frozen=True)
class SearchSettings:
    """One search cell: the fixed inputs every candidate is scored on.

    Everything is a primitive (or frozen tuple), so settings pickle to
    pool workers and serialise into result files.
    """

    algorithm: str
    graph_kind: str
    n: int
    algorithm_params: Params = ()
    graph_params: Params = ()
    collision_rule: str = "CR1"
    start_mode: str = "synchronous"
    seed: int = 0
    max_rounds: Optional[int] = None
    engine: str = "auto"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "algorithm_params", _freeze_params(self.algorithm_params)
        )
        object.__setattr__(
            self, "graph_params", _freeze_params(self.graph_params)
        )
        if self.collision_rule not in CollisionRule.__members__:
            raise ValueError(
                f"unknown collision rule {self.collision_rule!r}; known: "
                f"{list(CollisionRule.__members__)}"
            )
        StartMode(self.start_mode)  # raises ValueError on unknown modes
        if self.engine not in SEARCH_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"known: {list(SEARCH_ENGINES)}"
            )

    @property
    def key(self) -> str:
        """Stable cell identifier — the namespace of candidate keys."""
        parts = [
            "search",
            f"{self.algorithm}{_fmt_params(self.algorithm_params)}",
            f"{self.graph_kind}:n{self.n}"
            f"{_fmt_params(self.graph_params)}",
            f"{self.collision_rule}-{self.start_mode}",
            f"s{self.seed}",
        ]
        if self.max_rounds is not None:
            parts.append(f"cap{self.max_rounds}")
        return "/".join(parts)

    @property
    def derived_seed(self) -> int:
        """The engine seed, derived from the cell key like sweep tasks."""
        return zlib.crc32(self.key.encode("utf-8"))


@dataclass(frozen=True)
class CandidateScore:
    """The deterministic outcome of evaluating one genome.

    Attributes:
        genome: The evaluated strategy.
        objective: Completion round, or ``cap + 1`` for an execution the
            cap cut off — higher is a worse case for the algorithm.
        completed: Whether broadcast finished within the cap.
        completion_round: The completion round (``None`` if capped).
        rounds: Rounds actually executed.
        engine: The engine implementation that ran the evaluation.
    """

    genome: StrategyGenome
    objective: int
    completed: bool
    completion_round: Optional[int]
    rounds: int
    engine: str


class EvaluationContext:
    """Shared per-cell setup: one graph build + topology compile.

    Instances are cheap to evaluate against and safe to reuse across any
    number of sequential candidate evaluations (the engines only read
    the compiled topology).  ``graph`` optionally injects an
    already-built graph for the cell (the harness builds one for the
    genome space and shares it here) instead of rebuilding.
    """

    def __init__(
        self,
        settings: SearchSettings,
        graph: Optional[DualGraph] = None,
    ) -> None:
        self.settings = settings
        self.graph: DualGraph = (
            graph
            if graph is not None
            else build_graph(
                settings.graph_kind,
                settings.n,
                seed=settings.seed,
                **dict(settings.graph_params),
            )
        )
        self.topology: CompiledTopology = compile_topology(self.graph)
        self.rule = CollisionRule[settings.collision_rule]
        cap = settings.max_rounds
        if cap is None:
            cap = suggested_round_limit(settings.algorithm, self.graph)
        self.round_cap: int = cap

    def _config(self, engine: str, record: bool = False) -> EngineConfig:
        return EngineConfig(
            collision_rule=self.rule,
            start_mode=StartMode(self.settings.start_mode),
            max_rounds=self.round_cap,
            seed=self.settings.derived_seed,
            record_receptions=record,
            engine=engine,
        )

    def _route_engine(self, adversary) -> str:
        if self.settings.engine == "reference":
            return "reference"
        if fast_engine_eligible(self.rule, adversary):
            return "fast"
        return "reference"

    def run_genome(
        self,
        genome: StrategyGenome,
        engine: Optional[str] = None,
        record_receptions: bool = False,
    ) -> Tuple[ExecutionTrace, str]:
        """Run one genome and return its trace and the engine used."""
        adversary = genome.build_adversary()
        if engine is None:
            engine = self._route_engine(adversary)
        processes = make_processes(
            self.settings.algorithm,
            self.graph.n,
            **dict(self.settings.algorithm_params),
        )
        eng = build_engine(
            self.graph,
            processes,
            adversary,
            self._config(engine, record=record_receptions),
            topology=self.topology,
        )
        return eng.run(), engine

    def evaluate(self, genome: StrategyGenome) -> CandidateScore:
        """Score one genome (see the module docstring's objective)."""
        trace, engine = self.run_genome(genome)
        return score_from_trace(genome, trace, self.round_cap, engine)


def score_from_trace(
    genome: StrategyGenome,
    trace: ExecutionTrace,
    round_cap: int,
    engine: str,
) -> CandidateScore:
    """Fold one finished trace into the candidate's deterministic score."""
    objective = (
        trace.completion_round
        if trace.completed and trace.completion_round is not None
        else round_cap + 1
    )
    return CandidateScore(
        genome=genome,
        objective=objective,
        completed=trace.completed,
        completion_round=trace.completion_round,
        rounds=trace.num_rounds,
        engine=engine,
    )


def verify_replay(
    settings: SearchSettings,
    genome: StrategyGenome,
    context: Optional[EvaluationContext] = None,
) -> bool:
    """Replay-certify a genome on the reference engine.

    Runs the genome with reception recording on the reference engine,
    replays the recorded trace through a strict
    :class:`~repro.adversaries.scripted.ReplayAdversary`, and checks the
    two executions agree round for round (senders, deliveries, informing
    rounds, completion).  This is the self-certification property search
    results inherit from the recording machinery.  ``context``
    optionally reuses an existing cell context instead of rebuilding
    the graph and topology.
    """
    from repro.adversaries.scripted import ReplayAdversary

    ctx = context if context is not None else EvaluationContext(settings)
    trace, _ = ctx.run_genome(
        genome, engine="reference", record_receptions=True
    )
    processes = make_processes(
        settings.algorithm, ctx.graph.n, **dict(settings.algorithm_params)
    )
    replay_engine = build_engine(
        ctx.graph,
        processes,
        ReplayAdversary(trace, strict=True),
        ctx._config("reference"),
        topology=ctx.topology,
    )
    replay = replay_engine.run()
    return (
        replay.completed == trace.completed
        and replay.informed_round == trace.informed_round
        and len(replay.rounds) == len(trace.rounds)
        and all(
            a.senders == b.senders
            and a.unreliable_deliveries == b.unreliable_deliveries
            and a.newly_informed == b.newly_informed
            for a, b in zip(replay.rounds, trace.rounds)
        )
    )


# ----------------------------------------------------------------------
# Parallel fan-out
# ----------------------------------------------------------------------
_WORKER_CTX: Optional[EvaluationContext] = None


def _init_worker(settings: SearchSettings) -> None:
    """Pool initializer: build the shared cell context once per worker."""
    global _WORKER_CTX
    _WORKER_CTX = EvaluationContext(settings)


def _evaluate_remote(genome: StrategyGenome) -> CandidateScore:
    assert _WORKER_CTX is not None, "pool initializer did not run"
    return _WORKER_CTX.evaluate(genome)


class PopulationEvaluator:
    """Evaluate genome batches against one cell, optionally in parallel.

    Args:
        settings: The search cell.
        workers: Worker process count; ``1`` evaluates in-process
            against a single shared :class:`EvaluationContext`.
        context: Optional prebuilt in-process context to share (pool
            workers always build their own in the initializer).

    The pool (and the in-process context, unless injected) is created
    lazily on the first :meth:`evaluate` call and reused across
    batches; call :meth:`close` (or use as a context manager) when
    done.
    """

    def __init__(
        self,
        settings: SearchSettings,
        workers: int = 1,
        context: Optional[EvaluationContext] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.settings = settings
        self.workers = workers
        self._ctx = context
        self._pool = None

    def evaluate(
        self, genomes: Sequence[StrategyGenome]
    ) -> List[CandidateScore]:
        """Score a batch, preserving submission order (deterministic)."""
        if not genomes:
            return []
        if self.workers == 1 or len(genomes) == 1:
            if self._ctx is None:
                self._ctx = EvaluationContext(self.settings)
            return [self._ctx.evaluate(g) for g in genomes]
        if self._pool is None:
            # Prefer fork so runtime-registered graph kinds reach the
            # workers, mirroring the sweep runner's policy.
            methods = multiprocessing.get_all_start_methods()
            mp = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = mp.Pool(
                self.workers,
                initializer=_init_worker,
                initargs=(self.settings,),
            )
        chunk = max(1, len(genomes) // (self.workers * 2))
        return list(
            self._pool.imap(_evaluate_remote, genomes, chunksize=chunk)
        )

    def close(self) -> None:
        """Release the worker pool, if one was created."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "PopulationEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Mapping used by callers that need scores keyed by fingerprint.
def scores_by_fingerprint(
    scores: Sequence[CandidateScore],
) -> Dict[str, CandidateScore]:
    """Index a score list by each genome's content fingerprint."""
    return {s.genome.fingerprint: s for s in scores}
