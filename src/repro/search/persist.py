"""Budget accounting and JSON-lines persistence for searches.

Mirrors :mod:`repro.experiments.persist`: one line per evaluated
candidate, appended (and flushed) the moment its score reaches the
harness, so an interrupted search leaves a valid prefix on disk.  On
resume the harness regenerates the identical candidate sequence (same
settings, searcher and seed ⇒ same rng stream) and, for every candidate
whose key is already on disk *and* whose stored genome fingerprint
matches the regenerated genome, reuses the stored score instead of
re-evaluating — resume-by-key with a content check, so a foreign or
stale results file re-runs rather than corrupts.

Torn final lines (hard kill mid-write) are skipped and counted on load,
and appends heal them, exactly like the sweep layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.persist import (
    append_record,
    load_keyed_lines,
    open_for_append,
)
from repro.search.evaluate import CandidateScore, SearchSettings
from repro.search.genome import StrategyGenome

__all__ = [
    "CandidateRecord",
    "SearchBudget",
    "SearchResult",
    "append_candidate",
    "candidate_key",
    "load_candidates",
    "open_for_append",
]


@dataclass(frozen=True)
class SearchBudget:
    """How much work a search invocation may spend.

    Attributes:
        evaluations: Total candidate evaluations (across resumes: a
            resumed run counts previously persisted candidates against
            the same budget, so re-running a finished search is a
            no-op).
        batch_size: Candidates asked for (and evaluated, possibly in
            parallel) per harness iteration.
    """

    evaluations: int
    batch_size: int = 8

    def __post_init__(self) -> None:
        if self.evaluations < 1:
            raise ValueError(
                f"budget needs >= 1 evaluation, got {self.evaluations}"
            )
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )


def candidate_key(
    settings: SearchSettings, searcher: str, seed: int, ordinal: int
) -> str:
    """The stable per-candidate resume key.

    Namespaced by the search cell, the searcher kind and the search
    seed, then indexed by the candidate's position in the ask sequence —
    the same invocation always assigns the same keys in the same order.
    """
    return f"{settings.key}/{searcher}-r{seed}/c{ordinal}"


@dataclass(frozen=True)
class CandidateRecord:
    """One evaluated candidate as persisted to the results file."""

    key: str
    ordinal: int
    searcher: str
    fingerprint: str
    genome: StrategyGenome
    objective: int
    completed: bool
    completion_round: Optional[int]
    rounds: int
    engine: str

    @classmethod
    def from_score(
        cls,
        score: CandidateScore,
        key: str,
        ordinal: int,
        searcher: str,
    ) -> "CandidateRecord":
        """Wrap one fresh score with its persistence identity."""
        return cls(
            key=key,
            ordinal=ordinal,
            searcher=searcher,
            fingerprint=score.genome.fingerprint,
            genome=score.genome,
            objective=score.objective,
            completed=score.completed,
            completion_round=score.completion_round,
            rounds=score.rounds,
            engine=score.engine,
        )

    def to_score(self) -> CandidateScore:
        """The record as the score the searcher is told on resume."""
        return CandidateScore(
            genome=self.genome,
            objective=self.objective,
            completed=self.completed,
            completion_round=self.completion_round,
            rounds=self.rounds,
            engine=self.engine,
        )

    def to_dict(self) -> Dict:
        """The record as one JSON-lines document (see ``from_dict``)."""
        return {
            "key": self.key,
            "ordinal": self.ordinal,
            "searcher": self.searcher,
            "fingerprint": self.fingerprint,
            "genome": self.genome.to_dict(),
            "objective": self.objective,
            "completed": self.completed,
            "completion_round": self.completion_round,
            "rounds": self.rounds,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "CandidateRecord":
        """Rebuild a record from its JSON-lines document."""
        return cls(
            key=doc["key"],
            ordinal=int(doc["ordinal"]),
            searcher=doc["searcher"],
            fingerprint=doc["fingerprint"],
            genome=StrategyGenome.from_dict(doc["genome"]),
            objective=int(doc["objective"]),
            completed=bool(doc["completed"]),
            completion_round=(
                None
                if doc["completion_round"] is None
                else int(doc["completion_round"])
            ),
            rounds=int(doc["rounds"]),
            engine=doc["engine"],
        )


class CandidateMap(Dict[str, CandidateRecord]):
    """``key → CandidateRecord`` map that also counts skipped lines."""

    __slots__ = ("skipped",)

    def __init__(self, *args, **kwargs) -> None:
        """Build the map; ``skipped`` starts at 0."""
        super().__init__(*args, **kwargs)
        self.skipped = 0


def load_candidates(path: str) -> CandidateMap:
    """Read a search results file into a key → record map.

    Damage tolerance is the sweep layer's
    (:func:`repro.experiments.persist.load_keyed_lines`): unparsable
    lines are skipped and counted, later duplicate keys win (a
    re-evaluated candidate supersedes its stale predecessor).
    """
    return load_keyed_lines(
        path, CandidateRecord.from_dict, CandidateMap()
    )


#: One candidate per JSON line, flushed on write — the sweep layer's
#: appender works verbatim on any record with ``to_dict()``.
append_candidate = append_record


@dataclass
class SearchResult:
    """The outcome of one :func:`repro.search.harness.run_search` call.

    Attributes:
        settings: The search cell.
        searcher: The searcher kind that ran.
        seed: The search seed (candidate-generation rng, distinct from
            the cell's derived engine seed).
        best: The highest-objective candidate (ties: earliest ordinal).
        best_ordinal: Where in the ask sequence the best candidate sat.
        executed: Candidates evaluated by this invocation.
        resumed: Candidates whose scores were reused from disk.
        skipped_lines: Unparsable result-file lines dropped on load.
        elapsed: Wall-clock seconds (excluded from equality).
        replay_verified: ``None`` until
            :func:`repro.search.evaluate.verify_replay` has certified
            the best genome; then its boolean outcome.
    """

    settings: SearchSettings
    searcher: str
    seed: int
    best: CandidateScore
    best_ordinal: int
    executed: int = 0
    resumed: int = 0
    skipped_lines: int = 0
    elapsed: float = field(default=0.0, compare=False)
    replay_verified: Optional[bool] = None

    def summary(self) -> Dict:
        """A compact JSON-serialisable summary of the search."""
        return {
            "key": self.settings.key,
            "searcher": self.searcher,
            "seed": self.seed,
            "best_objective": self.best.objective,
            "best_completed": self.best.completed,
            "best_completion_round": self.best.completion_round,
            "best_ordinal": self.best_ordinal,
            "best_engine": self.best.engine,
            "executed": self.executed,
            "resumed": self.resumed,
            "skipped_lines": self.skipped_lines,
            "replay_verified": self.replay_verified,
            "best_genome": self.best.genome.to_dict(),
        }

    def table_rows(self) -> List[List]:
        """Rows for the CLI's quantity/value table."""
        return [
            ["cell", self.settings.key],
            ["searcher", self.searcher],
            ["best objective (rounds)", self.best.objective],
            ["best completed", self.best.completed],
            ["best found at candidate", self.best_ordinal],
            ["evaluations run", self.executed],
            ["evaluations resumed", self.resumed],
            ["engine of best", self.best.engine],
        ]
