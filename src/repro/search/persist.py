"""Budget accounting and result-store persistence for searches.

Search candidates persist through the same :mod:`repro.store` layer as
sweep records — one keyed record per evaluated candidate, appended the
moment its score reaches the harness, so an interrupted search leaves
a valid prefix on disk under any backend.  On resume the harness
regenerates the identical candidate sequence (same settings, searcher
and seed ⇒ same rng stream) and, for every candidate whose key is
already on disk *and* whose stored genome fingerprint matches the
regenerated genome, reuses the stored score instead of re-evaluating —
resume-by-key with a content check, so a foreign or stale results file
re-runs rather than corrupts.

The subsystem's second line of distrust is the *store-level validator
hook* :func:`genome_fingerprint_validator`: records whose persisted
``fingerprint`` does not match their own genome's recomputed
fingerprint are rejected at load time (counted on
:class:`~repro.store.base.StoreHealth`), before the harness even sees
them.

This module once carried its own keyed-line loader/appender; those now
live once in :mod:`repro.store.jsonl`, and the old names
(:func:`load_candidates`, :data:`append_candidate`,
:func:`open_for_append`) remain as thin shims so existing imports keep
working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.search.evaluate import CandidateScore, SearchSettings
from repro.search.genome import StrategyGenome
from repro.store.base import StoreHealth
from repro.store.jsonl import (
    append_jsonl_line,
    open_for_append,
    scan_jsonl,
)

__all__ = [
    "CandidateMap",
    "CandidateRecord",
    "SearchBudget",
    "SearchResult",
    "append_candidate",
    "candidate_key",
    "genome_fingerprint_validator",
    "load_candidates",
    "open_for_append",
    "search_fingerprint",
]


@dataclass(frozen=True)
class SearchBudget:
    """How much work a search invocation may spend.

    Attributes:
        evaluations: Total candidate evaluations (across resumes: a
            resumed run counts previously persisted candidates against
            the same budget, so re-running a finished search is a
            no-op).
        batch_size: Candidates asked for (and evaluated, possibly in
            parallel) per harness iteration.
    """

    evaluations: int
    batch_size: int = 8

    def __post_init__(self) -> None:
        if self.evaluations < 1:
            raise ValueError(
                f"budget needs >= 1 evaluation, got {self.evaluations}"
            )
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )


def candidate_key(
    settings: SearchSettings, searcher: str, seed: int, ordinal: int
) -> str:
    """The stable per-candidate resume key.

    Namespaced by the search cell, the searcher kind and the search
    seed, then indexed by the candidate's position in the ask sequence —
    the same invocation always assigns the same keys in the same order.
    """
    return f"{settings.key}/{searcher}-r{seed}/c{ordinal}"


@dataclass(frozen=True)
class CandidateRecord:
    """One evaluated candidate as persisted to the results file."""

    key: str
    ordinal: int
    searcher: str
    fingerprint: str
    genome: StrategyGenome
    objective: int
    completed: bool
    completion_round: Optional[int]
    rounds: int
    engine: str

    @classmethod
    def from_score(
        cls,
        score: CandidateScore,
        key: str,
        ordinal: int,
        searcher: str,
    ) -> "CandidateRecord":
        """Wrap one fresh score with its persistence identity."""
        return cls(
            key=key,
            ordinal=ordinal,
            searcher=searcher,
            fingerprint=score.genome.fingerprint,
            genome=score.genome,
            objective=score.objective,
            completed=score.completed,
            completion_round=score.completion_round,
            rounds=score.rounds,
            engine=score.engine,
        )

    def to_score(self) -> CandidateScore:
        """The record as the score the searcher is told on resume."""
        return CandidateScore(
            genome=self.genome,
            objective=self.objective,
            completed=self.completed,
            completion_round=self.completion_round,
            rounds=self.rounds,
            engine=self.engine,
        )

    def to_dict(self) -> Dict:
        """The record as one JSON-lines document (see ``from_dict``)."""
        return {
            "key": self.key,
            "ordinal": self.ordinal,
            "searcher": self.searcher,
            "fingerprint": self.fingerprint,
            "genome": self.genome.to_dict(),
            "objective": self.objective,
            "completed": self.completed,
            "completion_round": self.completion_round,
            "rounds": self.rounds,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "CandidateRecord":
        """Rebuild a record from its JSON-lines document."""
        return cls(
            key=doc["key"],
            ordinal=int(doc["ordinal"]),
            searcher=doc["searcher"],
            fingerprint=doc["fingerprint"],
            genome=StrategyGenome.from_dict(doc["genome"]),
            objective=int(doc["objective"]),
            completed=bool(doc["completed"]),
            completion_round=(
                None
                if doc["completion_round"] is None
                else int(doc["completion_round"])
            ),
            rounds=int(doc["rounds"]),
            engine=doc["engine"],
        )


class CandidateMap(Dict[str, CandidateRecord]):
    """``key → CandidateRecord`` map that also counts skipped lines."""

    __slots__ = ("skipped",)

    def __init__(self, *args, **kwargs) -> None:
        """Build the map; ``skipped`` starts at 0."""
        super().__init__(*args, **kwargs)
        self.skipped = 0


def genome_fingerprint_validator(record: CandidateRecord) -> bool:
    """The search store's distrust check, as a store-level validator.

    A persisted candidate is only trusted when its stored
    ``fingerprint`` equals its own genome's *recomputed* fingerprint —
    an internally inconsistent record (hand-edited file, partial
    foreign merge, version drift in the genome codec) is rejected at
    load time and its candidate re-evaluated.  The harness's second
    check — stored fingerprint vs. the *regenerated* ask-sequence
    genome — still runs on top; this hook catches corruption even for
    keys the current invocation never regenerates.
    """
    return record.fingerprint == record.genome.fingerprint


def search_fingerprint(
    settings: SearchSettings, searcher: str, seed: int
) -> str:
    """The campaign fingerprint a search writes into store manifests.

    Everything that namespaces candidate keys — the cell, the searcher
    kind and the search seed — so a campaign directory refuses records
    from a different search instead of interleaving them.
    """
    return f"{settings.key}/{searcher}-r{seed}"


def load_candidates(path: str) -> CandidateMap:
    """Read a search results file into a key → record map.

    Thin shim over :func:`repro.store.jsonl.scan_jsonl` (the single
    keyed-line loader): unparsable lines are skipped and counted,
    later duplicate keys win (a re-evaluated candidate supersedes its
    stale predecessor), and internally inconsistent records are
    rejected by :func:`genome_fingerprint_validator` — rejections are
    folded into the map's ``skipped`` counter here, matching the
    historical single-number report.
    """
    records = CandidateMap()
    health = StoreHealth()
    scan_jsonl(
        path,
        CandidateRecord.from_dict,
        records,
        health,
        validator=genome_fingerprint_validator,
    )
    records.skipped += health.issues
    return records


#: One candidate per JSON line, flushed on write — the storage layer's
#: appender works verbatim on any record with ``to_dict()``.
append_candidate = append_jsonl_line


@dataclass
class SearchResult:
    """The outcome of one :func:`repro.search.harness.run_search` call.

    Attributes:
        settings: The search cell.
        searcher: The searcher kind that ran.
        seed: The search seed (candidate-generation rng, distinct from
            the cell's derived engine seed).
        best: The highest-objective candidate (ties: earliest ordinal).
        best_ordinal: Where in the ask sequence the best candidate sat.
        executed: Candidates evaluated by this invocation.
        resumed: Candidates whose scores were reused from disk.
        skipped_lines: Unparsable or distrusted result-file entries
            dropped on load (mirrors ``health.issues``; kept as a
            plain int for backward compatibility).
        health: The result store's full
            :class:`~repro.store.base.StoreHealth` damage report,
            uniform with the sweep side.
        elapsed: Wall-clock seconds (excluded from equality).
        replay_verified: ``None`` until
            :func:`repro.search.evaluate.verify_replay` has certified
            the best genome; then its boolean outcome.
    """

    settings: SearchSettings
    searcher: str
    seed: int
    best: CandidateScore
    best_ordinal: int
    executed: int = 0
    resumed: int = 0
    skipped_lines: int = 0
    health: StoreHealth = field(
        default_factory=StoreHealth, compare=False
    )
    elapsed: float = field(default=0.0, compare=False)
    replay_verified: Optional[bool] = None

    def __post_init__(self) -> None:
        """Keep the legacy counter and the health report coherent."""
        if self.skipped_lines and not self.health.issues:
            self.health.skipped_lines = self.skipped_lines
        elif self.health.issues and not self.skipped_lines:
            self.skipped_lines = self.health.issues

    def summary(self) -> Dict:
        """A compact JSON-serialisable summary of the search."""
        return {
            "key": self.settings.key,
            "searcher": self.searcher,
            "seed": self.seed,
            "best_objective": self.best.objective,
            "best_completed": self.best.completed,
            "best_completion_round": self.best.completion_round,
            "best_ordinal": self.best_ordinal,
            "best_engine": self.best.engine,
            "executed": self.executed,
            "resumed": self.resumed,
            "skipped_lines": self.skipped_lines,
            "replay_verified": self.replay_verified,
            "best_genome": self.best.genome.to_dict(),
        }

    def table_rows(self) -> List[List]:
        """Rows for the CLI's quantity/value table."""
        return [
            ["cell", self.settings.key],
            ["searcher", self.searcher],
            ["best objective (rounds)", self.best.objective],
            ["best completed", self.best.completed],
            ["best found at candidate", self.best_ordinal],
            ["evaluations run", self.executed],
            ["evaluations resumed", self.resumed],
            ["engine of best", self.best.engine],
        ]
