"""Empirical worst-case adversary search.

The paper's lower bounds *construct* bad adversaries by hand; this
subsystem *finds* them: it searches the adversary strategy space —
per-round unreliable deliveries, the ``proc`` assignment, CR4
resolutions, all encoded as a replayable
:class:`~repro.search.genome.StrategyGenome` — for strategies that
maximise broadcast stall against a fixed (algorithm, graph, collision
rule) cell::

    from repro.search import SearchBudget, SearchSettings, run_search

    result = run_search(
        SearchSettings(algorithm="round_robin",
                       graph_kind="clique-bridge", n=16),
        searcher="greedy",
        budget=SearchBudget(evaluations=8),
    )
    print(result.best.objective)   # worst stall found, in rounds

Candidates are scored through the standard engines — the fast bitmask
engine per genome (sandbox backend) or whole populations as
vector-engine lockstep lanes (``backend="lockstep"``) — fan out over
worker processes, persist as JSON lines with resume-by-key, and the
best genome replay-certifies through
:class:`~repro.adversaries.scripted.ReplayAdversary` — see
``docs/SEARCH.md``.
"""

from repro.search.evaluate import (
    EVALUATOR_BACKENDS,
    CandidateScore,
    EvaluationContext,
    PopulationEvaluator,
    SearchSettings,
    verify_replay,
)
from repro.search.compare import (
    BoundComparison,
    supports_theorem2,
    theorem2_comparison,
)
from repro.search.genome import (
    GenomeAdversary,
    GenomeCR4Adversary,
    GenomeSpace,
    StrategyGenome,
)
from repro.search.harness import make_space, run_search
from repro.search.persist import (
    CandidateRecord,
    SearchBudget,
    SearchResult,
    genome_fingerprint_validator,
    load_candidates,
    search_fingerprint,
)
from repro.search.searchers import (
    GreedyLookaheadSearch,
    LocalMutationSearch,
    RandomRestartSearch,
    Searcher,
    build_searcher,
    register_searcher,
    searcher_descriptions,
    searcher_kinds,
)

__all__ = [
    "BoundComparison",
    "CandidateRecord",
    "CandidateScore",
    "EvaluationContext",
    "GenomeAdversary",
    "GenomeCR4Adversary",
    "GenomeSpace",
    "GreedyLookaheadSearch",
    "LocalMutationSearch",
    "EVALUATOR_BACKENDS",
    "PopulationEvaluator",
    "RandomRestartSearch",
    "SearchBudget",
    "SearchResult",
    "SearchSettings",
    "Searcher",
    "StrategyGenome",
    "build_searcher",
    "genome_fingerprint_validator",
    "load_candidates",
    "make_space",
    "search_fingerprint",
    "register_searcher",
    "run_search",
    "searcher_descriptions",
    "searcher_kinds",
    "supports_theorem2",
    "theorem2_comparison",
    "verify_replay",
]
