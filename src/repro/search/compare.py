"""Compare empirically found worst cases against the proven bounds.

The analysis hook closing the loop between search and the executable
lower bounds in :mod:`repro.lowerbounds`: given a search result on the
Theorem-2 clique-bridge family, :func:`theorem2_comparison` runs the
paper's scripted adversary family
(:func:`repro.lowerbounds.theorem2.theorem2_lower_bound`) against the
same deterministic algorithm and tabulates

* the theorem's analytic bound ``n − 3``,
* the scripted construction's measured worst case,
* the search's best found stall, and
* the search/scripted ratio — how much of the proof's power blind (or
  greedy) search recovers without knowing the proof.

``docs/SEARCH.md`` carries a reference table produced by this hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.round_robin import make_round_robin_processes
from repro.core.strong_select import make_strong_select_processes
from repro.lowerbounds.theorem2 import theorem2_lower_bound
from repro.search.evaluate import SearchSettings
from repro.search.persist import SearchResult

#: Deterministic algorithm factories the scripted Theorem-2 driver can
#: run (the construction is not defined for randomized algorithms).
DETERMINISTIC_FACTORIES = {
    "round_robin": make_round_robin_processes,
    "strong_select": make_strong_select_processes,
    "strong_select_ks": make_strong_select_processes,
}

#: Graph kinds that realise the Theorem-2 clique-bridge family.
THEOREM2_GRAPHS = ("clique-bridge",)


@dataclass(frozen=True)
class BoundComparison:
    """One search-vs-bound row.

    Attributes:
        n: Network size.
        algorithm: The algorithm under test.
        theorem_bound: The analytic bound (``n − 3`` for Theorem 2).
        scripted_worst: The scripted adversary family's measured worst
            case (receiver informing round), ``None`` when the
            algorithm is not deterministic.
        search_best: The search's best found objective.
        ratio: ``search_best / scripted_worst`` (``None`` when the
            scripted baseline is unavailable).
    """

    n: int
    algorithm: str
    theorem_bound: int
    scripted_worst: Optional[int]
    search_best: int
    ratio: Optional[float]

    def table_rows(self) -> List[List]:
        """Rows for the CLI's quantity/value table."""
        rows = [
            ["n", self.n],
            ["theorem 2 bound (n-3)", self.theorem_bound],
            [
                "scripted adversary worst",
                "—" if self.scripted_worst is None else self.scripted_worst,
            ],
            ["search best", self.search_best],
        ]
        if self.ratio is not None:
            rows.append(["search / scripted", f"{self.ratio:.2f}"])
        return rows


def supports_theorem2(settings: SearchSettings) -> bool:
    """Whether a search cell lies on the Theorem-2 comparison surface."""
    return settings.graph_kind in THEOREM2_GRAPHS


def theorem2_comparison(result: SearchResult) -> BoundComparison:
    """Tabulate a clique-bridge search result against Theorem 2.

    The scripted baseline runs only for deterministic algorithms (the
    proof's restriction); for randomized ones the row still carries the
    analytic bound, with the scripted column empty.
    """
    settings = result.settings
    if not supports_theorem2(settings):
        raise ValueError(
            f"graph kind {settings.graph_kind!r} is not in the "
            f"Theorem-2 family {list(THEOREM2_GRAPHS)}"
        )
    # The clique-bridge factory rounds n up to at least 3.
    n = max(3, settings.n)
    scripted: Optional[int] = None
    factory = DETERMINISTIC_FACTORIES.get(settings.algorithm)
    if factory is not None:
        scripted = theorem2_lower_bound(factory, n).worst_rounds
    best = result.best.objective
    return BoundComparison(
        n=n,
        algorithm=settings.algorithm,
        theorem_bound=n - 3,
        scripted_worst=scripted,
        search_best=best,
        ratio=(best / scripted) if scripted else None,
    )
