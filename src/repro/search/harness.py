"""The search loop: ask candidates, evaluate, persist, repeat.

:func:`run_search` wires the pieces of the subsystem together::

    settings ──► GenomeSpace ──► Searcher.ask ──► PopulationEvaluator
                     ▲                               │ (parallel,
                     │         Searcher.tell ◄───────┘  shared topology)
                     └──────── JSONL persistence / resume-by-key

Determinism contract: for fixed (settings, searcher kind, seed) the
candidate sequence, every score, and therefore the returned best are
identical across invocations, worker counts and resume histories.  The
rng driving candidate generation is seeded from the cell key + searcher
+ seed; scores are pure functions of (genome, settings); and resumed
scores are verified against the regenerated genome's fingerprint before
being trusted (mismatches are re-evaluated, so a foreign results file
degrades to extra work, never to wrong results).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.experiments.registry import build_graph
from repro.obs.telemetry import Stopwatch, current
from repro.search.evaluate import (
    CandidateScore,
    EvaluationContext,
    PopulationEvaluator,
    SearchSettings,
    verify_replay,
)
from repro.search.genome import GenomeSpace
from repro.search.persist import (
    CandidateRecord,
    SearchBudget,
    SearchResult,
    candidate_key,
    genome_fingerprint_validator,
    search_fingerprint,
)
from repro.search.searchers import build_searcher
from repro.sim.collision import CollisionRule
from repro.store import StoreHealth, open_store

#: Called after each evaluated batch with (best_so_far, done, total).
ProgressCallback = Callable[[CandidateScore, int, int], None]


def make_space(
    settings: SearchSettings,
    horizon: Optional[int] = None,
    cr4_genes: Optional[bool] = None,
) -> GenomeSpace:
    """The genome space induced by a search cell.

    The horizon defaults to the cell's round cap (every round the
    engine can execute gets a delivery gene slot); CR4 resolution genes
    default to on exactly under CR4 — the only rule where they exist;
    crash genes follow ``settings.churn_genes``.
    """
    graph = build_graph(
        settings.graph_kind,
        settings.n,
        seed=settings.seed,
        **dict(settings.graph_params),
    )
    if horizon is None:
        from repro.core.runner import suggested_round_limit

        horizon = settings.max_rounds
        if horizon is None:
            horizon = suggested_round_limit(settings.algorithm, graph)
    if cr4_genes is None:
        cr4_genes = (
            CollisionRule[settings.collision_rule] is CollisionRule.CR4
        )
    return GenomeSpace(
        graph,
        horizon=horizon,
        cr4_genes=cr4_genes,
        churn_genes=settings.churn_genes,
    )


def run_search(
    settings: SearchSettings,
    searcher: str = "random",
    budget: SearchBudget = SearchBudget(evaluations=64),
    seed: int = 0,
    workers: int = 1,
    results_path: Optional[str] = None,
    verify: bool = False,
    progress: Optional[ProgressCallback] = None,
    store: Optional[str] = None,
    flush_every: Optional[int] = None,
    evaluator: str = "sandbox",
) -> SearchResult:
    """Run one adversary search and return its best candidate.

    Args:
        settings: The search cell (algorithm, graph, CR, start mode …).
        searcher: Registered searcher kind
            (:func:`repro.search.searchers.searcher_kinds`).
        budget: Evaluation budget and batch size.
        seed: Search seed driving candidate generation (the engine seed
            is derived from the cell, independently — two searches with
            different seeds explore differently but score identically).
        workers: Parallel evaluation processes (sandbox backend only;
            the lockstep backend scores batches in-process).
        results_path: Optional results location — a JSON-lines file or
            a campaign directory; previously persisted candidates are
            resumed by key instead of re-evaluated, and fresh scores
            are appended as they arrive.
        verify: Also replay-certify the best genome through a strict
            :class:`~repro.adversaries.scripted.ReplayAdversary` on the
            reference engine (:attr:`SearchResult.replay_verified`).
        progress: Optional callback after each batch.
        store: Result-store backend name (``"jsonl"``, ``"sharded"``,
            ``"columnar"``); ``None``/``"auto"`` detects from the
            path.
        flush_every: Explicit store flush policy (``None``: backend
            default).
        evaluator: Population-scoring backend —
            ``"sandbox"`` (per-genome runs, default) or ``"lockstep"``
            (whole batches as vector-engine lanes; see
            :class:`~repro.search.evaluate.PopulationEvaluator`).
            Scores are identical either way, so a results file written
            under one backend resumes under the other.
    """
    watch = Stopwatch()
    telemetry = current()
    with telemetry.span("graph_build"):
        space = make_space(settings)
    searcher_obj = build_searcher(searcher, space, settings)
    rng = random.Random(f"{settings.key}/{searcher}/r{seed}")

    result_store = (
        open_store(
            results_path,
            parse=CandidateRecord.from_dict,
            backend=store,
            validator=genome_fingerprint_validator,
            flush_every=flush_every,
            fingerprint=search_fingerprint(settings, searcher, seed),
        )
        if results_path
        else None
    )
    with telemetry.span("resume_scan"):
        on_disk = (
            result_store.claim_keys()
            if result_store is not None
            else {}
        )

    best: Optional[CandidateScore] = None
    best_ordinal = -1
    executed = 0
    resumed = 0
    ordinal = 0
    # One graph build and one topology compile serve the whole search:
    # the genome space's graph backs the in-process evaluation context
    # and the final replay certification (pool workers, when used,
    # build their own context once each in the pool initializer).
    context = EvaluationContext(settings, graph=space.graph)
    evaluator_obj = PopulationEvaluator(
        settings, workers=workers, context=context, backend=evaluator
    )
    try:
        while ordinal < budget.evaluations:
            count = min(
                budget.batch_size, budget.evaluations - ordinal
            )
            genomes = searcher_obj.ask(rng, count)
            if len(genomes) != count:
                raise RuntimeError(
                    f"searcher {searcher!r} returned {len(genomes)} "
                    f"candidates for ask({count})"
                )
            keys = [
                candidate_key(settings, searcher, seed, ordinal + i)
                for i in range(count)
            ]
            scores: List[Optional[CandidateScore]] = [None] * count
            fresh_idx: List[int] = []
            for i, (genome, key) in enumerate(zip(genomes, keys)):
                record = on_disk.get(key)
                if (
                    record is not None
                    and record.fingerprint == genome.fingerprint
                ):
                    scores[i] = record.to_score()
                    resumed += 1
                else:
                    fresh_idx.append(i)
            with telemetry.span("engine_run"):
                fresh_scores = evaluator_obj.evaluate(
                    [genomes[i] for i in fresh_idx]
                )
            for i, score in zip(fresh_idx, fresh_scores):
                scores[i] = score
                executed += 1
                if result_store is not None:
                    with telemetry.span("store_append"):
                        result_store.append(
                            CandidateRecord.from_score(
                                score, keys[i], ordinal + i, searcher
                            )
                        )
            batch = [s for s in scores if s is not None]
            searcher_obj.tell(batch)
            for i, score in enumerate(batch):
                if best is None or score.objective > best.objective:
                    best = score
                    best_ordinal = ordinal + i
            ordinal += count
            if progress is not None and best is not None:
                progress(best, ordinal, budget.evaluations)
    finally:
        evaluator_obj.close()
        if result_store is not None:
            with telemetry.span("store_flush"):
                result_store.close()

    health = (
        result_store.health if result_store is not None else StoreHealth()
    )
    assert best is not None  # budget >= 1 guarantees one batch ran
    result = SearchResult(
        settings=settings,
        searcher=searcher,
        seed=seed,
        best=best,
        best_ordinal=best_ordinal,
        executed=executed,
        resumed=resumed,
        skipped_lines=health.issues,
        health=health,
        elapsed=watch.elapsed(),
    )
    if verify:
        result.replay_verified = verify_replay(
            settings, best.genome, context=context
        )
    return result
