"""Strategy genomes: the searchable encoding of an adversary strategy.

Per Section 2.1 an adversary controls exactly three things — the
``proc`` assignment, the per-round unreliable deliveries, and CR4
collision resolutions.  A :class:`StrategyGenome` encodes all three as
frozen tuples of primitives, so genomes pickle across worker processes,
hash, serialise to JSON lines, and replay bit-exactly: a genome builds a
:class:`GenomeAdversary` (a :class:`~repro.adversaries.scripted.ScriptedDeliveries`
subclass), and a recorded execution of that adversary replays through
:class:`~repro.adversaries.scripted.ReplayAdversary` verbatim.

The genome is an *oblivious* strategy: its delivery table is indexed by
round and sender node, not by execution state.  Entries for rounds past
the end of the execution, or for nodes that do not transmit in their
round, are simply unused (``ScriptedDeliveries`` filters by the actual
sender set) — so every genome in the space is legal for every execution,
which is what makes blind mutation safe.

:class:`GenomeSpace` is the mutation/sampling companion: it knows the
graph's unreliable edges (the only legal delivery targets) and the
search horizon, and provides rng-driven ``random`` and ``mutate``
operators for the searchers in :mod:`repro.search.searchers`.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.adversaries.base import AdversaryView
from repro.adversaries.scripted import ScriptedDeliveries
from repro.graphs.dualgraph import DualGraph
from repro.sim.messages import Message

#: ``((round, ((sender, (targets...)), ...)), ...)`` — sorted, deduped.
DeliveryTable = Tuple[Tuple[int, Tuple[Tuple[int, Tuple[int, ...]], ...]], ...]

#: ``((round, node, preferred_sender_uid), ...)`` — sorted.
CR4Table = Tuple[Tuple[int, int, int], ...]

#: ``((node, crash_round, down_for), ...)`` — sorted crash genes.
ChurnTable = Tuple[Tuple[int, int, int], ...]


def _freeze_deliveries(table) -> DeliveryTable:
    """Canonicalise any nested mapping/iterable into the frozen table."""
    rows = {}
    for rnd, row in (table.items() if isinstance(table, dict) else table):
        senders = rows.setdefault(int(rnd), {})
        for sender, targets in (
            row.items() if isinstance(row, dict) else row
        ):
            merged = senders.setdefault(int(sender), set())
            merged.update(int(t) for t in targets)
    return tuple(
        (
            rnd,
            tuple(
                (sender, tuple(sorted(targets)))
                for sender, targets in sorted(rows[rnd].items())
                if targets
            ),
        )
        for rnd in sorted(rows)
        if any(targets for targets in rows[rnd].values())
    )


@dataclass(frozen=True)
class StrategyGenome:
    """One point of the adversary strategy space, as frozen primitives.

    Attributes:
        horizon: The number of rounds the delivery schedule was generated
            for.  Purely informational — deliveries past the execution's
            actual length are unused, and an execution may outlive the
            horizon (later rounds then get no unreliable deliveries).
        deliveries: Per-round, per-sender unreliable delivery targets.
        proc: Optional node → uid assignment as a tuple indexed by node
            (``proc[v]`` is the uid at node ``v``); ``None`` keeps the
            engine default (identity).
        cr4: CR4 resolution genes ``(round, node, preferred_uid)``: when
            a CR4 collision occurs at ``node`` in ``round``, deliver the
            arrival sent by process ``preferred_uid`` if it is among the
            arrivals, silence otherwise.  Nodes/rounds without a gene
            resolve to silence (the base-class default; gene-free
            genomes never consult a resolver at all).
        churn: Crash genes ``(node, crash_round, down_for)``: the node
            crashes at ``crash_round`` and recovers ``down_for`` rounds
            later, under the ``"uninformed"`` rejoin policy (the crash
            revokes payload custody — the adversary's strongest
            resolution).  :meth:`churn_schedule` compiles the genes
            into a legal :class:`~repro.sim.faults.ChurnSchedule`,
            silently dropping genes that conflict (already-down node,
            protected node, out-of-range round) so blind mutation stays
            safe, exactly like tolerant CR4 genes.
    """

    horizon: int
    deliveries: DeliveryTable = ()
    proc: Optional[Tuple[int, ...]] = None
    cr4: CR4Table = ()
    churn: ChurnTable = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "deliveries", _freeze_deliveries(self.deliveries)
        )
        if self.proc is not None:
            object.__setattr__(
                self, "proc", tuple(int(u) for u in self.proc)
            )
        object.__setattr__(
            self,
            "cr4",
            tuple(
                sorted(
                    (int(r), int(v), int(u)) for r, v, u in self.cr4
                )
            ),
        )
        object.__setattr__(
            self,
            "churn",
            tuple(
                sorted(
                    (int(v), int(r), int(d)) for v, r, d in self.churn
                )
            ),
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def delivery_map(self) -> Dict[int, Dict[int, FrozenSet[int]]]:
        """The delivery table as the mapping ``ScriptedDeliveries`` takes."""
        return {
            rnd: {s: frozenset(ts) for s, ts in row}
            for rnd, row in self.deliveries
        }

    def proc_mapping(self) -> Optional[Dict[int, int]]:
        """The proc gene as a node → uid dict (``None`` = engine default)."""
        if self.proc is None:
            return None
        return {node: uid for node, uid in enumerate(self.proc)}

    def cr4_map(self) -> Dict[Tuple[int, int], int]:
        """The CR4 genes as a ``(round, node) → preferred uid`` dict."""
        return {(rnd, node): uid for rnd, node, uid in self.cr4}

    def churn_schedule(self, n: int, protect: Tuple[int, ...] = (0,)):
        """Compile the crash genes into a legal churn schedule.

        Returns ``None`` for gene-free genomes — the evaluation then
        runs exactly as before churn genes existed, keeping every
        pre-churn score and fingerprint valid.  Genes are applied in
        crash-round order; a gene whose node is protected (normally the
        source — crashing it forever is a degenerate worst case, not a
        strategy), out of range, or still down from an earlier gene is
        dropped rather than rejected, so any mutation of the table
        stays evaluable.
        """
        from repro.sim.faults import ChurnSchedule

        if not self.churn:
            return None
        protected = set(protect)
        crashes: Dict[int, List[int]] = {}
        recoveries: Dict[int, List[int]] = {}
        down_until: Dict[int, int] = {}
        for node, crash_round, down_for in sorted(
            self.churn, key=lambda g: (g[1], g[0])
        ):
            if node in protected or not 0 <= node < n:
                continue
            if crash_round < 1 or crash_round <= down_until.get(node, 0):
                continue
            recovery_round = crash_round + max(1, down_for)
            crashes.setdefault(crash_round, []).append(node)
            recoveries.setdefault(recovery_round, []).append(node)
            down_until[node] = recovery_round
        if not crashes:
            return None
        return ChurnSchedule(
            crashes={r: tuple(vs) for r, vs in crashes.items()},
            recoveries={r: tuple(vs) for r, vs in recoveries.items()},
            rejoin="uninformed",
        )

    # ------------------------------------------------------------------
    # Identity and serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """The genome as one JSON-serialisable document."""
        doc = {
            "horizon": self.horizon,
            "deliveries": [
                [rnd, [[s, list(ts)] for s, ts in row]]
                for rnd, row in self.deliveries
            ],
            "proc": None if self.proc is None else list(self.proc),
            "cr4": [list(gene) for gene in self.cr4],
        }
        # Omitted when empty so every pre-churn genome keeps its
        # serialised form — and therefore its fingerprint and any
        # persisted resume-by-key score — byte for byte.
        if self.churn:
            doc["churn"] = [list(gene) for gene in self.churn]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "StrategyGenome":
        """Rebuild a genome from its JSON document."""
        return cls(
            horizon=int(doc["horizon"]),
            deliveries=tuple(
                (rnd, tuple((s, tuple(ts)) for s, ts in row))
                for rnd, row in doc["deliveries"]
            ),
            proc=(
                None if doc.get("proc") is None else tuple(doc["proc"])
            ),
            cr4=tuple(tuple(g) for g in doc.get("cr4", ())),
            churn=tuple(tuple(g) for g in doc.get("churn", ())),
        )

    @property
    def fingerprint(self) -> str:
        """A short stable content hash, used to pair persisted scores
        with the genome that earned them on resume."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return f"{zlib.crc32(blob.encode('utf-8')):08x}"

    # ------------------------------------------------------------------
    # Adversary construction
    # ------------------------------------------------------------------
    def build_adversary(self) -> "GenomeAdversary":
        """The replayable adversary implementing this strategy.

        Genomes without CR4 genes build a :class:`GenomeAdversary`
        (whose ``resolve_cr4`` is the inherited base default — CR4
        collisions resolve to silence without ever consulting it);
        genomes with CR4 genes build a :class:`GenomeCR4Adversary`,
        whose real resolver the mask engines serve through their
        consult paths (the eligibility table is all-yes either way).
        """
        if self.cr4:
            return GenomeCR4Adversary(self)
        return GenomeAdversary(self)


class GenomeAdversary(ScriptedDeliveries):
    """Plays a :class:`StrategyGenome` through the scripted machinery.

    Deliveries and the proc assignment are exactly
    :class:`~repro.adversaries.scripted.ScriptedDeliveries` semantics;
    CR4 collisions resolve to silence (base default), so the mask
    engines never build arrival lists for instances of this class.
    """

    def __init__(self, genome: StrategyGenome) -> None:
        super().__init__(
            genome.delivery_map(), proc_mapping=genome.proc_mapping()
        )
        self.genome = genome


class GenomeCR4Adversary(GenomeAdversary):
    """A genome adversary that also plays CR4 resolution genes.

    A gene ``(round, node, uid)`` delivers the arrival sent by process
    ``uid`` when it is among the arrivals and falls back to silence when
    it is not — a mutated gene can legally reference a process that ends
    up not transmitting, so tolerance (unlike
    :class:`~repro.adversaries.scripted.ReplayAdversary` strict mode) is
    what keeps blind mutation safe.
    """

    def __init__(self, genome: StrategyGenome) -> None:
        super().__init__(genome)
        self._cr4 = genome.cr4_map()

    def resolve_cr4(
        self, view: AdversaryView, node: int, arrivals: List[Message]
    ) -> Optional[Message]:
        """Deliver the gene's preferred arrival, silence otherwise."""
        preferred = self._cr4.get((view.round_number, node))
        if preferred is None:
            return None
        for msg in arrivals:
            if msg.sender == preferred:
                return msg
        return None


@dataclass
class GenomeSpace:
    """Sampling and mutation operators over one graph's strategy space.

    Args:
        graph: The dual graph — defines the legal delivery targets
            (each sender's unreliable-only out-neighbours).
        horizon: Rounds the delivery schedules cover (normally the
            evaluation round cap).
        search_proc: Whether genomes explore the proc assignment (the
            identity-placement lever behind Theorem 2).  When false, all
            genomes keep ``proc=None``.
        cr4_genes: Whether genomes carry CR4 resolution genes.  Only
            useful under CR4 (no other rule ever consults the
            resolver); the mask engines score gene-carrying genomes
            through their CR4 consult paths, so the genes cost extra
            work only on rounds that actually collide.
        churn_genes: Whether genomes carry crash genes
            ``(node, crash_round, down_for)`` — the adversary then
            co-optimises crash timing alongside edge deliveries.  The
            source node is never a crash target (see
            :meth:`StrategyGenome.churn_schedule`).
        delivery_rate: Probability that a (round, sender) slot of a
            *random* genome carries any deliveries.
    """

    graph: DualGraph
    horizon: int
    search_proc: bool = True
    cr4_genes: bool = False
    churn_genes: bool = False
    delivery_rate: float = 0.2
    #: Nodes with at least one unreliable-only out-neighbour, with their
    #: sorted target tuples (the only slots worth generating genes for).
    _slots: List[Tuple[int, Tuple[int, ...]]] = field(init=False)

    #: Legal crash targets: every node except the source.
    _crashable: Tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        self._slots = [
            (v, tuple(sorted(self.graph.unreliable_only_out(v))))
            for v in self.graph.nodes
            if self.graph.unreliable_only_out(v)
        ]
        self._crashable = tuple(
            v for v in self.graph.nodes if v != self.graph.source
        )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _random_targets(
        self, rng: random.Random, targets: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        chosen = [t for t in targets if rng.random() < 0.5]
        if not chosen:
            chosen = [targets[rng.randrange(len(targets))]]
        return tuple(chosen)

    def _random_proc(self, rng: random.Random) -> Tuple[int, ...]:
        uids = list(range(self.graph.n))
        rng.shuffle(uids)
        return tuple(uids)

    def random(self, rng: random.Random) -> StrategyGenome:
        """Sample a genome uniformly-ish from the space."""
        table: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        for rnd in range(1, self.horizon + 1):
            row = {
                v: self._random_targets(rng, targets)
                for v, targets in self._slots
                if rng.random() < self.delivery_rate
            }
            if row:
                table[rnd] = row
        cr4: List[Tuple[int, int, int]] = []
        if self.cr4_genes:
            n = self.graph.n
            for rnd in range(1, self.horizon + 1):
                if rng.random() < self.delivery_rate:
                    cr4.append(
                        (rnd, rng.randrange(n), rng.randrange(n))
                    )
        churn: List[Tuple[int, int, int]] = []
        if self.churn_genes and self._crashable:
            for _ in range(max(1, self.graph.n // 2)):
                if rng.random() < self.delivery_rate:
                    churn.append(self._random_churn_gene(rng))
        return StrategyGenome(
            horizon=self.horizon,
            deliveries=_freeze_deliveries(table),
            proc=self._random_proc(rng) if self.search_proc else None,
            cr4=tuple(cr4),
            churn=tuple(churn),
        )

    def _random_churn_gene(
        self, rng: random.Random
    ) -> Tuple[int, int, int]:
        node = self._crashable[rng.randrange(len(self._crashable))]
        crash_round = rng.randrange(1, self.horizon + 1)
        down_for = 1 + rng.randrange(max(1, self.horizon // 4))
        return (node, crash_round, down_for)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def mutate(
        self, genome: StrategyGenome, rng: random.Random
    ) -> StrategyGenome:
        """One local move: toggle a delivery, swap procs, or edit a gene."""
        ops = [self._mutate_delivery]
        if self.search_proc:
            ops.append(self._mutate_proc)
        if self.cr4_genes:
            ops.append(self._mutate_cr4)
        if self.churn_genes and self._crashable:
            ops.append(self._mutate_churn)
        return ops[rng.randrange(len(ops))](genome, rng)

    def _mutate_delivery(
        self, genome: StrategyGenome, rng: random.Random
    ) -> StrategyGenome:
        if not self._slots:
            return genome
        table = {
            rnd: {s: set(ts) for s, ts in row.items()}
            for rnd, row in genome.delivery_map().items()
        }
        rnd = rng.randrange(1, self.horizon + 1)
        sender, targets = self._slots[rng.randrange(len(self._slots))]
        target = targets[rng.randrange(len(targets))]
        row = table.setdefault(rnd, {})
        slot = row.setdefault(sender, set())
        if target in slot:
            slot.discard(target)
        else:
            slot.add(target)
        return StrategyGenome(
            horizon=genome.horizon,
            deliveries=_freeze_deliveries(table),
            proc=genome.proc,
            cr4=genome.cr4,
            churn=genome.churn,
        )

    def _mutate_proc(
        self, genome: StrategyGenome, rng: random.Random
    ) -> StrategyGenome:
        n = self.graph.n
        proc = list(
            genome.proc if genome.proc is not None else range(n)
        )
        i, j = rng.randrange(n), rng.randrange(n)
        proc[i], proc[j] = proc[j], proc[i]
        return StrategyGenome(
            horizon=genome.horizon,
            deliveries=genome.deliveries,
            proc=tuple(proc),
            cr4=genome.cr4,
            churn=genome.churn,
        )

    def _mutate_cr4(
        self, genome: StrategyGenome, rng: random.Random
    ) -> StrategyGenome:
        n = self.graph.n
        genes = list(genome.cr4)
        if genes and rng.random() < 0.5:
            genes.pop(rng.randrange(len(genes)))
        else:
            genes.append(
                (
                    rng.randrange(1, self.horizon + 1),
                    rng.randrange(n),
                    rng.randrange(n),
                )
            )
        return StrategyGenome(
            horizon=genome.horizon,
            deliveries=genome.deliveries,
            proc=genome.proc,
            cr4=tuple(genes),
            churn=genome.churn,
        )

    def _mutate_churn(
        self, genome: StrategyGenome, rng: random.Random
    ) -> StrategyGenome:
        genes = list(genome.churn)
        if genes and rng.random() < 0.5:
            genes.pop(rng.randrange(len(genes)))
        else:
            genes.append(self._random_churn_gene(rng))
        return StrategyGenome(
            horizon=genome.horizon,
            deliveries=genome.deliveries,
            proc=genome.proc,
            cr4=genome.cr4,
            churn=tuple(genes),
        )
