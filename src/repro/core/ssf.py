"""Strongly Selective Families (SSFs) — Definition 6 of the paper.

A family ``F`` of subsets of the id universe ``{0, …, n−1}`` is
``(n, k)``-strongly selective if for every non-empty subset ``Z`` of the
universe with ``|Z| ≤ k`` and every ``z ∈ Z`` there is a set ``F ∈ F``
with ``Z ∩ F = {z}``.  (We use 0-based ids; the paper's universe is
``[n] = {1, …, n}``.)

Three constructions are provided:

* :func:`round_robin_family` — the singletons; an ``(n, n)``-SSF of size
  ``n``.  The paper's ``F_{s_max}``.
* :func:`random_ssf` — the existential construction of Erdős, Frankl and
  Füredi (Theorem 7 in the paper): ``O(k² log n)`` random sets, each
  containing each id independently with probability ``1/k``, are
  ``(n, k)``-strongly selective with probability ``≥ 1 − δ``.  Seeded and
  deterministic given the seed.
* :func:`kautz_singleton_ssf` — the constructive Reed–Solomon
  superimposed-code family of Kautz and Singleton (1964), of size
  ``O(k² log² n)`` — the paper's "Note on Constructive Solutions"
  observes that substituting it costs only a ``√log n`` factor.

Verification is exponential in general; :func:`verify_ssf` does an exact
check for small instances and a seeded randomized check otherwise.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class SelectiveFamily:
    """An ordered family of subsets of ``{0, …, n−1}``.

    Attributes:
        n: Universe size.
        k: The selectivity parameter the family targets.
        sets: The ordered member sets ``F[0], …, F[len−1]``.
        construction: Human-readable provenance label.
    """

    n: int
    k: int
    sets: Tuple[FrozenSet[int], ...]
    construction: str = "unspecified"

    def __len__(self) -> int:
        return len(self.sets)

    def __getitem__(self, index: int) -> FrozenSet[int]:
        return self.sets[index]

    def __iter__(self) -> Iterator[FrozenSet[int]]:
        return iter(self.sets)

    def selects(self, z: int, zs: FrozenSet[int]) -> bool:
        """Whether some member set isolates ``z`` within ``zs``."""
        return any(zs & f == {z} for f in self.sets)

    def __deepcopy__(self, memo: object) -> "SelectiveFamily":
        # Immutable: processes sharing a family may share it across clones.
        return self


#: Signature of an SSF builder: ``builder(n, k) -> SelectiveFamily``.
SSFBuilder = Callable[[int, int], SelectiveFamily]


def round_robin_family(n: int) -> SelectiveFamily:
    """The singleton family ``{0}, {1}, …, {n−1}`` — an ``(n, n)``-SSF.

    Every node is trivially isolated in its own slot; this is the family
    Strong Select uses at the top level ``s_max``.
    """
    if n < 1:
        raise ValueError("need n >= 1")
    return SelectiveFamily(
        n=n,
        k=n,
        sets=tuple(frozenset([i]) for i in range(n)),
        construction="round-robin",
    )


def full_family(n: int) -> SelectiveFamily:
    """The single set ``{0, …, n−1}`` — an ``(n, 1)``-SSF of size 1."""
    return SelectiveFamily(
        n=n,
        k=1,
        sets=(frozenset(range(n)),),
        construction="full",
    )


def random_ssf(
    n: int,
    k: int,
    seed: int = 0,
    delta: float = 1e-3,
    size_cap: Optional[int] = None,
) -> SelectiveFamily:
    """The seeded existential construction (paper Theorem 7, [14]).

    Samples ``m`` sets, each containing each id independently with
    probability ``1/k``.  The size ``m = ⌈e·k·(k·ln n + ln k + ln(1/δ))⌉``
    makes the family ``(n, k)``-strongly selective with probability at
    least ``1 − δ`` (union bound over all ``≤ k·n^k`` pairs ``(Z, z)``,
    each isolated per set with probability ``≥ 1/(e·k)``).

    When the bound exceeds ``n`` the round-robin family is returned
    instead, matching the paper's ``O(min{n, k² log n})``.

    Args:
        n: Universe size.
        k: Selectivity target (``1 ≤ k ≤ n``).
        seed: PRNG seed.
        delta: Failure probability budget for the whole family.
        size_cap: Optional explicit family size override (used by tests
            and ablations; bypasses the analytic bound).
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if k == 1:
        return full_family(n)
    if size_cap is None:
        m = math.ceil(
            math.e * k * (k * math.log(n) + math.log(k) + math.log(1 / delta))
        )
    else:
        m = size_cap
    if m >= n and size_cap is None:
        return round_robin_family(n)
    rng = random.Random(f"ssf:{seed}:{n}:{k}")
    p = 1.0 / k
    sets = tuple(
        frozenset(i for i in range(n) if rng.random() < p) for _ in range(m)
    )
    return SelectiveFamily(
        n=n, k=k, sets=sets, construction=f"random(seed={seed},delta={delta})"
    )


def _is_prime(q: int) -> bool:
    if q < 2:
        return False
    if q % 2 == 0:
        return q == 2
    f = 3
    while f * f <= q:
        if q % f == 0:
            return False
        f += 2
    return True


def _next_prime(q: int) -> int:
    while not _is_prime(q):
        q += 1
    return q


def kautz_singleton_ssf(n: int, k: int) -> SelectiveFamily:
    """The constructive Reed–Solomon superimposed-code SSF ([19]).

    Ids are encoded as polynomials of degree ``< d`` over ``GF(q)`` (``q``
    prime, ``q^d ≥ n``); the family has one set per (evaluation point,
    symbol) pair: ``F_{(x, y)} = { i : poly_i(x) = y }``.

    Two distinct polynomials agree on at most ``d − 1`` points, so for any
    ``Z`` with ``|Z| ≤ k`` and ``z ∈ Z`` the codeword of ``z`` is covered
    by the other ``≤ k − 1`` codewords on at most ``(k−1)(d−1)`` points;
    choosing ``q > (k−1)(d−1)`` leaves a point ``x`` where ``z`` is alone,
    and ``F_{(x, poly_z(x))}`` isolates it.  The family size is ``q² =
    O(k² log² n)``.

    Falls back to round robin whenever that is smaller, matching
    ``O(min{n, k² log² n})``.
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if k == 1:
        return full_family(n)

    # Find the smallest prime q with q > (k-1)*(d-1) where d = ceil(log_q n).
    q = _next_prime(max(2, k))
    while True:
        d = max(1, math.ceil(math.log(max(n, 2), q)))
        while q**d < n:
            d += 1
        if q > (k - 1) * (d - 1):
            break
        q = _next_prime(q + 1)

    if q * q >= n:
        return round_robin_family(n)

    # Encode id i as the base-q digit polynomial; evaluate at x in GF(q).
    sets: List[set] = [set() for _ in range(q * q)]
    for i in range(n):
        digits = []
        v = i
        for _ in range(d):
            digits.append(v % q)
            v //= q
        for x in range(q):
            # Horner evaluation of the digit polynomial at x mod q.
            y = 0
            for c in reversed(digits):
                y = (y * x + c) % q
            sets[x * q + y].add(i)
    return SelectiveFamily(
        n=n,
        k=k,
        sets=tuple(frozenset(s) for s in sets),
        construction=f"kautz-singleton(q={q},d={d})",
    )


def greedy_ssf(n: int, k: int) -> SelectiveFamily:
    """Exact greedy set-cover construction (exponential; tiny inputs only).

    Enumerates every pair ``(Z, z)`` with ``|Z| ≤ k`` and greedily picks
    the set covering the most uncovered pairs.  Guaranteed correct, used
    as a ground-truth oracle in tests.  Practical only for ``n ≤ ~12``.
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if n > 14:
        raise ValueError("greedy_ssf is exponential; use n <= 14")
    universe = range(n)
    pairs = set()
    for size in range(1, k + 1):
        for zs in itertools.combinations(universe, size):
            for z in zs:
                pairs.add((frozenset(zs), z))
    candidate_sets = [
        frozenset(c)
        for size in range(1, n + 1)
        for c in itertools.combinations(universe, size)
    ]
    chosen: List[FrozenSet[int]] = []
    uncovered = set(pairs)
    while uncovered:
        best = max(
            candidate_sets,
            key=lambda f: sum(1 for (zs, z) in uncovered if zs & f == {z}),
        )
        newly = {(zs, z) for (zs, z) in uncovered if zs & best == {z}}
        if not newly:
            raise RuntimeError("greedy made no progress; should not happen")
        uncovered -= newly
        chosen.append(best)
    return SelectiveFamily(
        n=n, k=k, sets=tuple(chosen), construction="greedy"
    )


def verify_ssf(
    family: SelectiveFamily,
    exhaustive_limit: int = 2_000_000,
    samples: int = 20_000,
    seed: int = 0,
) -> bool:
    """Check ``(n, k)``-strong selectivity.

    Performs an exact check when the number of ``(Z, z)`` pairs is at most
    ``exhaustive_limit``; otherwise draws ``samples`` random pairs (seeded)
    and checks those.  Returns ``True`` when no violation is found.
    """
    n, k = family.n, family.k
    total_pairs = sum(
        math.comb(n, size) * size for size in range(1, k + 1)
    )
    if total_pairs <= exhaustive_limit:
        for size in range(1, k + 1):
            for zs in itertools.combinations(range(n), size):
                fz = frozenset(zs)
                for z in zs:
                    if not family.selects(z, fz):
                        return False
        return True
    rng = random.Random(seed)
    for _ in range(samples):
        size = rng.randint(1, k)
        zs = frozenset(rng.sample(range(n), size))
        z = rng.choice(sorted(zs))
        if not family.selects(z, zs):
            return False
    return True


def find_violation(
    family: SelectiveFamily,
) -> Optional[Tuple[FrozenSet[int], int]]:
    """Exhaustively find a ``(Z, z)`` pair the family fails to select.

    Exponential; intended for tests on small instances.  Returns ``None``
    when the family is genuinely ``(n, k)``-strongly selective.
    """
    n, k = family.n, family.k
    for size in range(1, k + 1):
        for zs in itertools.combinations(range(n), size):
            fz = frozenset(zs)
            for z in zs:
                if not family.selects(z, fz):
                    return fz, z
    return None
