"""Round-robin broadcast — the deterministic workhorse baseline.

Process ``i`` transmits in every round ``r`` with ``(r − 1) mod n == i``
once it holds the message.  Each window of ``n`` consecutive rounds gives
every informed process a slot in which it is the *only* sender in the
network, so its reliable out-neighbours are informed regardless of the
adversary: round robin completes within ``n · ecc(G)`` rounds on **any**
dual graph (``ecc`` = source eccentricity in ``G``), under any collision
rule and either start mode.

This is the matching upper bound for Theorem 2's ``Ω(n)`` on
2-broadcastable networks (see the paper's note after Theorem 4), and the
``O(n²)`` oblivious algorithm of Clementi et al. discussed in Section 2.2.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.messages import Message
from repro.sim.process import Process, ProcessContext


class RoundRobinProcess(Process):
    """One round-robin automaton over the id universe ``{0, …, n−1}``."""

    def __init__(self, uid: int, n: Optional[int] = None) -> None:
        super().__init__(uid)
        self._n = n

    def decide_send(self, ctx: ProcessContext) -> Optional[Message]:
        if not self.has_message:
            return None
        n = self._n if self._n is not None else ctx.n
        if (ctx.round_number - 1) % n == self.uid % n:
            return self.outgoing(ctx)
        return None


def round_robin_bound(n: int, eccentricity: int) -> int:
    """The guaranteed completion bound ``n · ecc(G)``."""
    return n * max(1, eccentricity)


def make_round_robin_processes(n: int) -> List[RoundRobinProcess]:
    """Build the full round-robin process collection."""
    return [RoundRobinProcess(uid, n=n) for uid in range(n)]
