"""High-level convenience API: run a named algorithm on a network.

This is the entry point most downstream users want::

    from repro import broadcast
    from repro.graphs import gnp_dual
    from repro.adversaries import GreedyInterferer

    trace = broadcast(gnp_dual(64, seed=1), "harmonic",
                      adversary=GreedyInterferer(), seed=7)
    print(trace.completion_round)

Algorithms are registered by name; ``make_processes`` exposes the factory
directly for callers that need to customise processes before running.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.adversaries.base import Adversary
from repro.core.decay import make_decay_processes
from repro.core.harmonic import (
    completion_bound,
    default_T,
    make_harmonic_processes,
)
from repro.core.round_robin import (
    make_round_robin_processes,
    round_robin_bound,
)
from repro.core.ssf import kautz_singleton_ssf
from repro.core.strong_select import (
    build_schedule,
    make_strong_select_processes,
)
from repro.core.uniform import make_uniform_processes
from repro.graphs.dualgraph import DualGraph
from repro.sim.engine import EngineConfig, build_engine
from repro.sim.process import Process
from repro.sim.trace import ExecutionTrace

#: Factory signature: ``factory(n, **params) -> list of processes``.
ProcessFactory = Callable[..., List[Process]]

_REGISTRY: Dict[str, ProcessFactory] = {
    "strong_select": make_strong_select_processes,
    "strong_select_ks": lambda n, **kw: make_strong_select_processes(
        n, ssf_builder=kautz_singleton_ssf, **kw
    ),
    "harmonic": make_harmonic_processes,
    "round_robin": make_round_robin_processes,
    "decay": make_decay_processes,
    "uniform": make_uniform_processes,
}


def algorithm_names() -> List[str]:
    """The registered algorithm names."""
    return sorted(_REGISTRY)


def register_algorithm(name: str, factory: ProcessFactory) -> None:
    """Register a custom algorithm factory under ``name``."""
    if name in _REGISTRY:
        raise ValueError(f"algorithm {name!r} already registered")
    _REGISTRY[name] = factory


def make_processes(
    algorithm: str, n: int, **params: Any
) -> List[Process]:
    """Instantiate the processes of a registered algorithm."""
    try:
        factory = _REGISTRY[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {algorithm_names()}"
        ) from None
    return factory(n, **params)


def suggested_round_limit(algorithm: str, network: DualGraph) -> int:
    """A safe ``max_rounds`` derived from each algorithm's proven bound.

    Strong Select gets its Theorem-10 bound ``X = n/ρ``; Harmonic gets
    twice the Theorem-18 bound (the theorem is w.h.p., not worst-case);
    round robin gets ``n·ecc``; Decay, which has no dual-graph guarantee,
    gets a generous ``4·n·log²n + n·ecc``-ish allowance.
    """
    n = network.n
    ecc = network.source_eccentricity
    if algorithm.startswith("strong_select"):
        return build_schedule(n).round_bound() + 1
    if algorithm == "harmonic":
        return 2 * completion_bound(n, default_T(n)) + 1
    if algorithm == "round_robin":
        return round_robin_bound(n, ecc) + 1
    log2n = max(1.0, math.log2(n))
    if algorithm == "uniform":
        # Expected Θ(n) rounds per frontier layer at probability 1/n,
        # with a log factor of headroom for the tail.
        return int(12 * n * (ecc + log2n) * log2n) + 1
    return int(4 * n * log2n * log2n + n * ecc) + 1


def broadcast(
    network: DualGraph,
    algorithm: str = "strong_select",
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    algorithm_params: Optional[dict] = None,
    **config_kwargs: Any,
) -> ExecutionTrace:
    """Run a named broadcast algorithm on a network and return its trace.

    Args:
        network: The dual graph to broadcast on.
        algorithm: A registered algorithm name (see
            :func:`algorithm_names`).
        adversary: The adversary controlling unreliable links (default:
            never delivers on them).
        seed: Master seed for the processes' randomness.
        max_rounds: Execution cap (default: derived from the algorithm's
            proven bound via :func:`suggested_round_limit`).
        algorithm_params: Extra keyword arguments for the process factory
            (e.g. ``{"T": 8}`` for Harmonic).
        **config_kwargs: Forwarded to
            :class:`~repro.sim.engine.EngineConfig` (e.g.
            ``collision_rule=CollisionRule.CR1``,
            ``start_mode=StartMode.SYNCHRONOUS``, ``engine="fast"``).
    """
    processes = make_processes(
        algorithm, network.n, **(algorithm_params or {})
    )
    if max_rounds is None:
        max_rounds = suggested_round_limit(algorithm, network)
    config = EngineConfig(
        seed=seed, max_rounds=max_rounds, **config_kwargs
    )
    engine = build_engine(network, processes, adversary, config)
    return engine.run()
