"""The paper's algorithms: Strong Select, Harmonic Broadcast, baselines,
and the strongly-selective-family machinery they are built on."""

from repro.core.decay import DecayProcess, make_decay_processes, phase_length
from repro.core.harmonic import (
    HarmonicProcess,
    busy_round_bound,
    completion_bound,
    default_T,
    harmonic_number,
    make_harmonic_processes,
    sending_probability,
)
from repro.core.round_robin import (
    RoundRobinProcess,
    make_round_robin_processes,
    round_robin_bound,
)
from repro.core.runner import (
    algorithm_names,
    broadcast,
    make_processes,
    register_algorithm,
    suggested_round_limit,
)
from repro.core.ssf import (
    SelectiveFamily,
    find_violation,
    full_family,
    greedy_ssf,
    kautz_singleton_ssf,
    random_ssf,
    round_robin_family,
    verify_ssf,
)
from repro.core.strong_select import (
    StrongSelectProcess,
    StrongSelectSchedule,
    build_schedule,
    default_s_max,
    make_strong_select_processes,
)

__all__ = [
    "DecayProcess",
    "HarmonicProcess",
    "RoundRobinProcess",
    "SelectiveFamily",
    "StrongSelectProcess",
    "StrongSelectSchedule",
    "algorithm_names",
    "broadcast",
    "build_schedule",
    "busy_round_bound",
    "completion_bound",
    "default_T",
    "default_s_max",
    "find_violation",
    "full_family",
    "greedy_ssf",
    "harmonic_number",
    "kautz_singleton_ssf",
    "make_decay_processes",
    "make_harmonic_processes",
    "make_processes",
    "make_round_robin_processes",
    "make_strong_select_processes",
    "phase_length",
    "random_ssf",
    "register_algorithm",
    "round_robin_bound",
    "round_robin_family",
    "sending_probability",
    "suggested_round_limit",
    "verify_ssf",
]
