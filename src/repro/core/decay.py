"""The Decay protocol of Bar-Yehuda, Goldreich and Itai ([2]).

The classical randomized broadcast baseline for the ``G = G'`` columns of
Table 2.  Time is divided into *phases* of ``⌈log₂ n⌉ + 1`` slots.  At the
start of each phase every informed node begins transmitting; after each
slot it stops for the rest of the phase with probability 1/2.  Thus in
slot ``j`` a node is still transmitting with probability ``2^{−j}``, so
for any set of contending neighbours some slot matches the contention
level and a lone transmission gets through with constant probability per
phase.

In the classical model this yields ``O((D + log n) · log n)`` rounds
w.h.p.  (The asymptotically optimal classical algorithm of Czumaj–Rytter
[12] is substantially more intricate; Decay is the standard stand-in
baseline and reproduces the same Table-2 *shape* — polylogarithmic in
``n`` for constant diameter, versus ``Ω(n)`` in the dual graph model.
The substitution is recorded in DESIGN.md.)

Decay has no worst-case guarantee against the dual-graph adversary — the
Theorem 4 experiment demonstrates exactly that.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.sim.messages import Message
from repro.sim.process import Process, ProcessContext


def phase_length(n: int) -> int:
    """Slots per Decay phase: ``⌈log₂ n⌉ + 1``."""
    if n < 1:
        raise ValueError("need n >= 1")
    return max(1, math.ceil(math.log2(max(n, 2)))) + 1


class DecayProcess(Process):
    """One Decay automaton.

    Args:
        uid: Process identifier.
        n: System size (fixes the phase length; defaults to the engine's
            ``ctx.n``).
    """

    def __init__(self, uid: int, n: Optional[int] = None) -> None:
        super().__init__(uid)
        self._n = n
        self._phase_id: Optional[int] = None
        self._transmitting = False

    def decide_send(self, ctx: ProcessContext) -> Optional[Message]:
        if not self.has_message:
            return None
        length = phase_length(self._n if self._n is not None else ctx.n)
        phase_id = (ctx.round_number - 1) // length
        slot = (ctx.round_number - 1) % length
        t_v = self.first_message_round
        assert t_v is not None
        if phase_id * length + 1 <= t_v:
            # A node informed mid-phase joins at the next phase boundary.
            return None
        if phase_id != self._phase_id:
            # New phase: start transmitting again.
            self._phase_id = phase_id
            self._transmitting = True
        if not self._transmitting:
            return None
        msg = self.outgoing(ctx, slot=slot)
        # Decide now whether to continue into the next slot.
        if ctx.rng.random() < 0.5:
            self._transmitting = False
        return msg

    def on_activate(self, ctx: ProcessContext) -> None:
        super().on_activate(ctx)
        self._phase_id = None
        self._transmitting = False


def make_decay_processes(n: int) -> List[DecayProcess]:
    """Build the full Decay process collection."""
    return [DecayProcess(uid, n=n) for uid in range(n)]
