"""Uniform-probability (ALOHA-style) randomized baseline.

The naive randomized broadcast: every informed node transmits each round
with a fixed probability ``c/n``.  With ``c ≈ 1`` a round is a lone
transmission with constant probability once many nodes are informed —
but early on (few informed nodes) progress is slow: expected
``Θ(n/k)`` rounds to get any transmission from ``k`` informed nodes, so
completion costs ``Θ(n log n)`` even on a clique and degrades badly on
deep topologies.

Harmonic Broadcast is exactly the fix for this: its probability
*schedule* starts at 1 and decays, matching the contention level at
every stage.  The baseline exists to make that comparison measurable
(see ``bench_ablations``' adversary ladder and the unit tests).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.messages import Message
from repro.sim.process import Process, ProcessContext


class UniformProcess(Process):
    """Transmit with fixed probability ``c/n`` once informed.

    Args:
        uid: Process identifier.
        c: Numerator of the transmission probability (default 1).
        n: System size (defaults to the engine-supplied ``ctx.n``).
    """

    def __init__(self, uid: int, c: float = 1.0,
                 n: Optional[int] = None) -> None:
        super().__init__(uid)
        if c <= 0:
            raise ValueError("c must be positive")
        self._c = c
        self._n = n

    def probability(self, n: int) -> float:
        """The per-round transmission probability."""
        return min(1.0, self._c / n)

    def decide_send(self, ctx: ProcessContext) -> Optional[Message]:
        if not self.has_message:
            return None
        if ctx.rng.random() < self.probability(
            self._n if self._n is not None else ctx.n
        ):
            return self.outgoing(ctx)
        return None


def make_uniform_processes(
    n: int, c: float = 1.0
) -> List[UniformProcess]:
    """Build the full uniform-baseline process collection."""
    return [UniformProcess(uid, c=c, n=n) for uid in range(n)]
