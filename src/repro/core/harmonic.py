"""The Harmonic Broadcast algorithm (Section 7 of the paper).

Randomized broadcast completing in ``O(n log² n)`` rounds with high
probability on directed (or undirected) dual graphs under CR4 and
asynchronous start.

A node ``v`` that first receives the message in round ``t_v`` transmits in
every round ``t > t_v`` with probability::

    p_v(t) = 1 / (1 + ⌊(t − t_v − 1) / T⌋)

i.e. probability 1 for the first ``T`` rounds after receipt, then 1/2 for
``T`` rounds, then 1/3, … .  With ``T = ⌈12 ln(n/ε)⌉`` all nodes receive
the message within ``2·n·T·H(n)`` rounds with probability at least
``1 − ε`` (Theorem 18); ``ε = n^{−Θ(1)}`` gives the headline
``O(n log² n)`` (Theorem 19).

The source is treated as receiving the message at time 0 (``t_s = 0``)
and starts transmitting in round 1, matching the paper's convention.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.sim.messages import Message
from repro.sim.process import Process, ProcessContext


def default_T(n: int, epsilon: float = 0.1, constant: float = 12.0) -> int:
    """The paper's probability-plateau length ``T = ⌈c · ln(n/ε)⌉``.

    Args:
        n: Number of processes.
        epsilon: Target failure probability.
        constant: The analysis uses ``c = 12``; smaller values trade the
            proof's guarantee for speed (see the ablation benchmark).
    """
    if n < 1:
        raise ValueError("need n >= 1")
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    return max(1, math.ceil(constant * math.log(n / epsilon)))


def harmonic_number(n: int) -> float:
    """``H(n) = Σ_{i=1..n} 1/i`` (the paper sets ``H(0) = 1``)."""
    if n <= 0:
        return 1.0
    return sum(1.0 / i for i in range(1, n + 1))


def completion_bound(n: int, T: int) -> int:
    """Theorem 18's w.h.p. completion bound ``2·n·T·H(n)``."""
    return math.ceil(2 * n * T * harmonic_number(n))


def busy_round_bound(n: int, T: int) -> int:
    """Lemma 15's bound on the number of busy rounds: ``n·T·H(n)``."""
    return math.ceil(n * T * harmonic_number(n))


def sending_probability(t: int, t_v: int, T: int) -> float:
    """``p_v(t)`` for a node informed at ``t_v`` (0 for ``t ≤ t_v``)."""
    if t <= t_v:
        return 0.0
    return 1.0 / (1 + (t - t_v - 1) // T)


class HarmonicProcess(Process):
    """One Harmonic Broadcast automaton.

    Args:
        uid: Process identifier.
        T: The plateau length (default: the paper's ``⌈12 ln(n/ε)⌉`` is
            computed lazily from the engine-supplied ``n`` on first use
            when ``None``).
        epsilon: Failure probability target used when ``T`` is derived.
        constant: Constant in the derived ``T``.
    """

    def __init__(
        self,
        uid: int,
        T: Optional[int] = None,
        epsilon: float = 0.1,
        constant: float = 12.0,
    ) -> None:
        super().__init__(uid)
        self._T = T
        self._epsilon = epsilon
        self._constant = constant

    def plateau_length(self, n: int) -> int:
        """The effective ``T`` once the system size is known."""
        if self._T is None:
            self._T = default_T(n, self._epsilon, self._constant)
        return self._T

    def decide_send(self, ctx: ProcessContext) -> Optional[Message]:
        if not self.has_message:
            return None
        t_v = self.first_message_round
        assert t_v is not None
        T = self.plateau_length(ctx.n)
        p = sending_probability(ctx.round_number, t_v, T)
        if p > 0 and ctx.rng.random() < p:
            return self.outgoing(ctx, probability=p)
        return None


def make_harmonic_processes(
    n: int,
    T: Optional[int] = None,
    epsilon: float = 0.1,
    constant: float = 12.0,
) -> List[HarmonicProcess]:
    """Build the full Harmonic Broadcast process collection."""
    if T is None:
        T = default_T(n, epsilon, constant)
    return [
        HarmonicProcess(uid, T=T, epsilon=epsilon, constant=constant)
        for uid in range(n)
    ]
