"""The Strong Select algorithm (Section 5 of the paper).

Deterministic broadcast in ``O(n^{3/2} √log n)`` rounds on directed (or
undirected) dual graphs under the weakest assumptions: collision rule CR4
and asynchronous start.

Structure:

* Rounds are divided into *epochs* of length ``2^{s_max} − 1``.  The first
  round of each epoch belongs to the smallest SSF ``F_1``, the next two to
  ``F_2``, the next four to ``F_3``, … — in general ``2^{s−1}`` rounds of
  each epoch belong to the ``(n, 2^s)``-SSF ``F_s``, cycling through its
  sets across epochs.  ``F_{s_max}`` is the round-robin ``(n, n)``-SSF.
* When a node first receives the message it waits, for each ``s``, until
  ``F_s`` cycles back to its first set, then participates in **exactly
  one** complete iteration of ``F_s``, transmitting whenever its id is in
  the scheduled set.  Participating only once bounds the interval during
  which an already-useless node can interfere — the crux of the paper's
  amortisation argument (and our ablation knob).

The global round counter the schedule needs is available WLOG (footnote 1:
the source stamps messages with its local counter and nodes adopt it); our
engine simply exposes the global round number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.ssf import (
    SSFBuilder,
    SelectiveFamily,
    random_ssf,
    round_robin_family,
)
from repro.sim.messages import Message
from repro.sim.process import Process, ProcessContext


def default_s_max(n: int) -> int:
    """The paper's ``s_max = log₂ √(n / log n)``, generalised to all n.

    The paper assumes ``√(n/log n)`` is a power of two; we round down and
    clamp to at least 1 (for small ``n`` the algorithm then degenerates to
    pure round robin, which is correct and within the bound).
    """
    if n < 2:
        return 1
    ratio = n / max(1.0, math.log2(n))
    return max(1, int(math.floor(math.log2(math.sqrt(ratio)))))


@dataclass(frozen=True)
class StrongSelectSchedule:
    """The shared deterministic schedule: families plus round geometry.

    All processes of one algorithm instance must share one schedule (the
    algorithm is deterministic; the families are part of its code).

    Attributes:
        n: Number of processes.
        s_max: Number of SSF levels.
        families: ``families[s-1]`` is the ``(n, 2^s)``-SSF ``F_s``;
            ``families[s_max-1]`` is the round-robin ``(n, n)``-SSF.
    """

    n: int
    s_max: int
    families: Tuple[SelectiveFamily, ...]

    def __deepcopy__(self, memo: object) -> "StrongSelectSchedule":
        # Immutable: process clones (lower-bound sandboxes) share it.
        return self

    @property
    def epoch_length(self) -> int:
        """Rounds per epoch: ``2^{s_max} − 1``."""
        return (1 << self.s_max) - 1

    def family(self, s: int) -> SelectiveFamily:
        """The SSF ``F_s`` (``1 ≤ s ≤ s_max``)."""
        return self.families[s - 1]

    def family_size(self, s: int) -> int:
        """``ℓ_s``, the number of sets in ``F_s``."""
        return len(self.families[s - 1])

    # ------------------------------------------------------------------
    # Round geometry
    # ------------------------------------------------------------------
    def level_of_round(self, r: int) -> Tuple[int, int]:
        """Map a global round to its SSF level and global position.

        Args:
            r: Global 1-based round number.

        Returns:
            ``(s, p)`` where ``s`` is the SSF level the round belongs to
            and ``p`` is the 0-based count of previous ``F_s`` rounds
            (the *position* of this round in the family-``s`` subsequence;
            the scheduled set is ``F_s[p mod ℓ_s]``).
        """
        if r < 1:
            raise ValueError(f"rounds are 1-based, got {r}")
        epoch_len = self.epoch_length
        epoch = (r - 1) // epoch_len  # 0-based epoch index
        q = (r - 1) % epoch_len + 1  # 1-based round within the epoch
        s = q.bit_length()  # floor(log2(q)) + 1
        j = q - (1 << (s - 1))  # 0-based index among the epoch's F_s rounds
        p = epoch * (1 << (s - 1)) + j
        return s, p

    def positions_before(self, s: int, t: int) -> int:
        """Number of ``F_s`` rounds among global rounds ``1 .. t``."""
        if t <= 0:
            return 0
        epoch_len = self.epoch_length
        full_epochs = t // epoch_len
        rem = t % epoch_len  # rounds 1..rem of a partial epoch
        per_epoch = 1 << (s - 1)
        first_q = per_epoch  # F_s occupies q in [2^{s-1}, 2^s - 1]
        in_partial = min(max(rem - first_q + 1, 0), per_epoch)
        return full_epochs * per_epoch + in_partial

    def participation_window(self, s: int, t: int) -> Tuple[int, int]:
        """Position window ``[start, end)`` for a node informed in round ``t``.

        The node waits for ``F_s`` to cycle back to its first set: the
        window starts at the first position ``≥`` (number of ``F_s``
        rounds already elapsed by round ``t``) that is a multiple of
        ``ℓ_s``, and spans one full iteration.
        """
        size = self.family_size(s)
        elapsed = self.positions_before(s, t)
        start = ((elapsed + size - 1) // size) * size
        return start, start + size

    def scheduled_set(self, r: int) -> Tuple[int, FrozenSet[int]]:
        """The (level, set) scheduled in global round ``r``."""
        s, p = self.level_of_round(r)
        fam = self.family(s)
        return s, fam[p % len(fam)]

    # ------------------------------------------------------------------
    # Analysis quantities
    # ------------------------------------------------------------------
    def f_n(self) -> float:
        """The log factor ``f(n)``: max over levels of ``ℓ_s / k_s²``.

        The analysis defines ``f(n)`` as a function with ``ℓ_s ≤ k_s²·f(n)``
        for every family used; we compute it exactly from the built
        families.
        """
        return max(
            len(self.family(s)) / float((1 << s) ** 2)
            for s in range(1, self.s_max + 1)
        )

    def density_threshold(self) -> float:
        """The paper's ``ρ = 1 / (12·f(n)·2^{s_max})``."""
        return 1.0 / (12.0 * self.f_n() * (1 << self.s_max))

    def round_bound(self) -> int:
        """The guaranteed completion bound ``X = n / ρ`` (Theorem 10)."""
        return math.ceil(self.n / self.density_threshold())

    def iteration_rounds(self, s: int) -> int:
        """``ℓ'_s``: global rounds spanned by one full ``F_s`` iteration."""
        per_epoch = 1 << (s - 1)
        return self.family_size(s) * self.epoch_length // per_epoch


def build_schedule(
    n: int,
    s_max: Optional[int] = None,
    ssf_builder: SSFBuilder = random_ssf,
) -> StrongSelectSchedule:
    """Construct the shared Strong Select schedule for ``n`` processes.

    Args:
        n: Number of processes.
        s_max: Override the number of levels (default: the paper's value).
        ssf_builder: How to build the intermediate ``(n, 2^s)``-SSFs — the
            seeded existential construction by default; pass
            :func:`~repro.core.ssf.kautz_singleton_ssf` for the fully
            constructive variant (costs an extra ``√log n``).
    """
    if n < 1:
        raise ValueError("need n >= 1")
    if s_max is None:
        s_max = default_s_max(n)
    # Intermediate families F_s are (n, 2^s)-SSFs, which need 2^s ≤ n;
    # clamp so an explicit s_max cannot overshoot the universe.
    max_levels = max(1, int(math.floor(math.log2(n))) + 1) if n > 1 else 1
    s_max = max(1, min(s_max, max_levels))
    families: List[SelectiveFamily] = []
    for s in range(1, s_max):
        families.append(ssf_builder(n, 1 << s))
    families.append(round_robin_family(n))
    return StrongSelectSchedule(n=n, s_max=s_max, families=tuple(families))


class StrongSelectProcess(Process):
    """One Strong Select automaton.

    Args:
        uid: Process identifier in ``{0, …, n−1}``.
        schedule: The shared schedule (build once per algorithm instance
            with :func:`build_schedule`).
        participate_once: The paper's rule — each node runs exactly one
            iteration of each family, then stops (nodes eventually fall
            silent).  Setting ``False`` gives the classical
            cycle-forever behaviour for the ablation benchmark.
    """

    def __init__(
        self,
        uid: int,
        schedule: StrongSelectSchedule,
        participate_once: bool = True,
    ) -> None:
        super().__init__(uid)
        if not 0 <= uid < schedule.n:
            raise ValueError(
                f"uid {uid} outside the schedule universe [0, {schedule.n})"
            )
        self.schedule = schedule
        self.participate_once = participate_once
        self._windows: Optional[Dict[int, Tuple[int, int]]] = None

    def _ensure_windows(self) -> None:
        """Fix the per-level participation windows once informed."""
        if self._windows is not None or self.first_message_round is None:
            return
        t = self.first_message_round
        self._windows = {
            s: self.schedule.participation_window(s, t)
            for s in range(1, self.schedule.s_max + 1)
        }

    def decide_send(self, ctx: ProcessContext) -> Optional[Message]:
        if not self.has_message:
            return None
        self._ensure_windows()
        assert self._windows is not None
        s, p = self.schedule.level_of_round(ctx.round_number)
        start, end = self._windows[s]
        if p < start:
            return None  # still waiting for the family to cycle back
        if self.participate_once and p >= end:
            return None  # already did our one iteration of F_s
        fam = self.schedule.family(s)
        if self.uid in fam[p % len(fam)]:
            return self.outgoing(ctx, level=s, position=p)
        return None


def make_strong_select_processes(
    n: int,
    s_max: Optional[int] = None,
    ssf_builder: SSFBuilder = random_ssf,
    participate_once: bool = True,
) -> List[StrongSelectProcess]:
    """Build the full process collection sharing one schedule."""
    schedule = build_schedule(n, s_max=s_max, ssf_builder=ssf_builder)
    return [
        StrongSelectProcess(
            uid, schedule, participate_once=participate_once
        )
        for uid in range(n)
    ]
