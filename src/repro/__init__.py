"""repro — a reproduction of *Broadcasting in Unreliable Radio Networks*
(Kuhn, Lynch, Newport, Oshman, Richa; PODC 2010).

The package implements the dual graph radio network model, the paper's two
broadcast algorithms (deterministic Strong Select and randomized Harmonic
Broadcast), classical baselines, executable versions of every lower-bound
construction, and the analysis tooling used to regenerate the paper's
tables.

Quickstart::

    from repro import broadcast
    from repro.graphs import gnp_dual

    trace = broadcast(gnp_dual(64, seed=1), "harmonic", seed=7)
    print(trace.completion_round)
"""

from repro.core.runner import (
    algorithm_names,
    broadcast,
    make_processes,
    register_algorithm,
)
from repro.graphs.dualgraph import DualGraph
from repro.sim.engine import (
    BroadcastEngine,
    EngineConfig,
    StartMode,
    build_engine,
)
from repro.sim.fast_engine import FastBroadcastEngine
from repro.sim.collision import CollisionRule
from repro.sim.trace import ExecutionTrace

__version__ = "1.0.0"

__all__ = [
    "BroadcastEngine",
    "CollisionRule",
    "DualGraph",
    "EngineConfig",
    "ExecutionTrace",
    "FastBroadcastEngine",
    "StartMode",
    "build_engine",
    "__version__",
    "algorithm_names",
    "broadcast",
    "make_processes",
    "register_algorithm",
]
