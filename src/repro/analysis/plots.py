"""ASCII charts for terminal-friendly experiment output.

Matplotlib is deliberately not a dependency: the benches run in CI-like
environments and their artefacts are text.  Two chart types cover what
the experiments need — an x/y scatter with optional multiple series
(growth curves), and a horizontal bar chart (comparisons).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Point = Tuple[float, float]


def _nice_label(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def scatter(
    series: Dict[str, Sequence[Point]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render one or more point series on a shared canvas.

    Each series gets a marker (``*``, ``o``, ``x``, ``+``, …) recorded in
    the legend.  Log scaling is applied per axis when requested (points
    must then be positive).

    Args:
        series: Mapping from series name to its ``(x, y)`` points.
        width: Canvas width in characters (plot area).
        height: Canvas height in lines.
        title: Optional title line.
        logx: Use log₁₀ on the x axis.
        logy: Use log₁₀ on the y axis.
    """
    markers = "*ox+#%@&"
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        raise ValueError("nothing to plot")

    def tx(x: float) -> float:
        if logx:
            if x <= 0:
                raise ValueError("log x-axis needs positive values")
            return math.log10(x)
        return x

    def ty(y: float) -> float:
        if logy:
            if y <= 0:
                raise ValueError("log y-axis needs positive values")
            return math.log10(y)
        return y

    xs = [tx(x) for x, _ in all_points]
    ys = [ty(y) for _, y in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            col = int((tx(x) - x_lo) / x_span * (width - 1))
            row = int((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    y_hi_label = _nice_label(10**y_hi if logy else y_hi)
    y_lo_label = _nice_label(10**y_lo if logy else y_lo)
    label_w = max(len(y_hi_label), len(y_lo_label))
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = y_hi_label.rjust(label_w)
        elif i == height - 1:
            label = y_lo_label.rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row_cells)}")
    x_lo_label = _nice_label(10**x_lo if logx else x_lo)
    x_hi_label = _nice_label(10**x_hi if logx else x_hi)
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(
        " " * label_w
        + "  "
        + x_lo_label
        + " " * max(1, width - len(x_lo_label) - len(x_hi_label))
        + x_hi_label
    )
    legend = "   ".join(
        f"{marker} {name}"
        for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(legend)
    return "\n".join(lines)


def bars(
    items: Iterable[Tuple[str, float]],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render a horizontal bar chart.

    Args:
        items: ``(label, value)`` pairs; values must be non-negative.
        width: Maximum bar width in characters.
        title: Optional title line.
        unit: Suffix appended to the value labels.
    """
    data = list(items)
    if not data:
        raise ValueError("nothing to plot")
    if any(v < 0 for _, v in data):
        raise ValueError("bar values must be non-negative")
    peak = max(v for _, v in data) or 1.0
    label_w = max(len(label) for label, _ in data)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in data:
        bar = "█" * max(0, round(value / peak * width))
        if value > 0 and not bar:
            bar = "▏"
        lines.append(
            f"{label.rjust(label_w)} | {bar} {_nice_label(value)}{unit}"
        )
    return "\n".join(lines)
