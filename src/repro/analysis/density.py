"""Busy/free-round accounting for the Harmonic Broadcast analysis.

Section 7 reasons about *wake-up patterns* ``W = t₁ ≤ t₂ ≤ … ≤ t_n``
(``t₁ = 0``; ``t_i`` is the round the ``i``-th node receives the
message).  The pattern determines every node's sending probability, hence
the per-round probability mass::

    P(t) = Σ_v p_v(t),   p_v(t) = 1 / (1 + ⌊(t − t_v − 1)/T⌋)

A round is *busy* when ``P(t) ≥ 1`` and *free* otherwise.  Lemma 14 says
some pattern packs all its busy rounds first; Lemma 15 bounds the number
of busy rounds of **any** pattern by ``n·T·H(n)``.  These functions make
the quantities computable so tests and benchmarks can check both lemmas
and extract busy/free structure from real traces.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.harmonic import harmonic_number, sending_probability
from repro.sim.trace import ExecutionTrace


def probability_mass(
    wakeup_pattern: Sequence[int], t: int, T: int
) -> float:
    """``P(t)``: the summed sending probabilities under a pattern."""
    if t < 1:
        raise ValueError("rounds are 1-based")
    return sum(sending_probability(t, t_v, T) for t_v in wakeup_pattern)


def is_busy(wakeup_pattern: Sequence[int], t: int, T: int) -> bool:
    """Whether round ``t`` is busy (``P(t) ≥ 1``)."""
    return probability_mass(wakeup_pattern, t, T) >= 1.0


def busy_rounds(
    wakeup_pattern: Sequence[int],
    T: int,
    horizon: Optional[int] = None,
) -> List[int]:
    """All busy rounds of a pattern up to ``horizon``.

    The default horizon is Lemma 15's ``⌈n·T·H(n)⌉ + 1``, beyond which no
    round of a valid pattern can be busy once all nodes are awake — the
    probability mass then only decays.  (We scan to the horizon
    explicitly rather than trusting the bound; the bench checks the two
    agree.)
    """
    n = len(wakeup_pattern)
    if horizon is None:
        horizon = math.ceil(n * T * harmonic_number(n)) + 1
    return [
        t for t in range(1, horizon + 1) if is_busy(wakeup_pattern, t, T)
    ]


def busy_round_count(
    wakeup_pattern: Sequence[int],
    T: int,
    horizon: Optional[int] = None,
) -> int:
    """Number of busy rounds (compare against Lemma 15's ``n·T·H(n)``)."""
    return len(busy_rounds(wakeup_pattern, T, horizon))


def front_loaded_pattern(n: int, T: int) -> List[int]:
    """A pattern whose busy rounds form a contiguous prefix.

    Waking every node at round 0 keeps ``P(t) ≥ 1`` for a prefix and
    nowhere else — the *shape* Lemma 14 proves some busy-maximising
    pattern has.  Note it is not itself the busy-count maximiser:
    staggered wake-ups can keep ``P(t)`` hovering above 1 for longer
    (the benchmarks show this), which is why Lemma 15's ``n·T·H(n)``
    bound — not ``n·T`` — is the right ceiling.
    """
    return [0] * n


def wakeup_pattern_of(trace: ExecutionTrace) -> List[int]:
    """Extract the wake-up pattern from an execution trace."""
    rounds = sorted(
        r for r in trace.informed_round.values() if r is not None
    )
    return rounds


def free_round_prefix_equal_point(
    wakeup_pattern: Sequence[int], T: int, horizon: int
) -> Optional[int]:
    """The first round ``τ`` where free rounds in ``[1, τ]`` match busy.

    Theorem 18's argument pivots on this balance point; ``None`` if it
    does not occur within the horizon.
    """
    balance = 0
    for t in range(1, horizon + 1):
        balance += 1 if is_busy(wakeup_pattern, t, T) else -1
        if balance <= 0:
            return t
    return None
