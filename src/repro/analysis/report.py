"""Streaming campaign reports: the paper table set from one store.

``repro report`` turns a campaign — any
:class:`~repro.store.base.ResultStore`, from a laptop-sized JSONL file
to a 10⁶-run sharded directory — into the paper-reproduction tables
without ever materialising the record list: records stream off
:meth:`~repro.store.base.ResultStore.iter_records` into one
:class:`~repro.analysis.stats.RunningSummary` per science cell
(Welford mean/variance feeding the Student-t CI machinery), so memory
is O(cells), not O(runs).

The report has two tables:

* the **campaign table** — one row per (sweep, algorithm, graph, n,
  collision rule) cell with completion-round summary, transmission
  mean and cap-hit count: the empirical side of the paper's Tables 1–2
  ensemble claims; and
* the **paper-reference table** — rows for which the source paper
  states a bound the cell can be read against: Theorem 2's ``n − 3``
  worst-case lower bound for deterministic algorithms on the
  clique-bridge family, Theorem 10's ``X = ⌈n/ρ⌉`` Strong Select
  completion guarantee, and Theorem 18's ``2·n·T·H(n)`` w.h.p.
  Harmonic bound.  Cells outside every stated bound simply have no
  row — the report never invents a comparison.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.stats import RunningSummary
from repro.analysis.tables import render_table

#: Graph kinds on the Theorem-2 comparison surface (the clique-bridge
#: family; mirrors repro.search.compare.THEOREM2_GRAPHS without
#: importing the search subsystem into the analysis layer).
THEOREM2_GRAPHS = ("clique-bridge",)

#: Deterministic algorithms Theorem 2's worst-case argument covers.
DETERMINISTIC_ALGORITHMS = ("round_robin", "strong_select")

#: Matches the ``[T=4]`` parameter segment a task key embeds for the
#: Harmonic plateau length (RunResult does not carry params directly).
_T_PARAM = re.compile(r"harmonic\[.*?T=(\d+)")


@dataclass
class CellAggregate:
    """Streaming per-cell aggregation state.

    One instance per (sweep, algorithm, graph kind, n, collision rule)
    science cell; every field is either a counter or a
    :class:`RunningSummary`, so the aggregate never grows with the
    number of runs.
    """

    records: int = 0
    capped: int = 0
    completion: RunningSummary = field(default_factory=RunningSummary)
    transmissions: RunningSummary = field(
        default_factory=RunningSummary
    )
    harmonic_T: Optional[int] = None

    def add(self, record) -> None:
        """Fold one :class:`~repro.experiments.results.RunResult` in."""
        self.records += 1
        if record.completed and record.completion_round is not None:
            self.completion.add(record.completion_round)
        else:
            self.capped += 1
        self.transmissions.add(record.total_transmissions)
        if self.harmonic_T is None and record.algorithm == "harmonic":
            match = _T_PARAM.search(record.key)
            if match:
                self.harmonic_T = int(match.group(1))


#: The grouping key of one campaign-table row.
CellKey = Tuple[str, str, str, int, str]


class CampaignReport:
    """A streaming fold of campaign records into the paper tables."""

    CAMPAIGN_HEADER = [
        "sweep",
        "algorithm",
        "graph",
        "n",
        "CR",
        "runs",
        "completion rounds",
        "mean sends",
        "capped",
    ]

    REFERENCE_HEADER = [
        "cell",
        "paper bound",
        "measured",
        "consistent",
    ]

    def __init__(self) -> None:
        """Start with no cells and no records."""
        self.cells: Dict[CellKey, CellAggregate] = {}
        self.records = 0

    def add(self, record) -> None:
        """Fold one record into its cell's aggregate."""
        key: CellKey = (
            record.sweep,
            record.algorithm,
            record.graph_kind,
            record.n,
            record.collision_rule,
        )
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = CellAggregate()
        cell.add(record)
        self.records += 1

    @classmethod
    def from_store(cls, store) -> "CampaignReport":
        """Stream every record of a result store into a report."""
        report = cls()
        for record in store.iter_records():
            report.add(record)
        return report

    # ------------------------------------------------------------------
    # Campaign table
    # ------------------------------------------------------------------
    def table_rows(self) -> List[List[Any]]:
        """One row per science cell, sorted by the grouping key."""
        rows: List[List[Any]] = []
        for key in sorted(self.cells):
            sweep, algorithm, graph, n, cr = key
            cell = self.cells[key]
            rows.append(
                [
                    sweep,
                    algorithm,
                    graph,
                    n,
                    cr,
                    cell.records,
                    cell.completion.summary().format()
                    if cell.completion.count
                    else "—",
                    f"{cell.transmissions.mean:.1f}"
                    if cell.transmissions.count
                    else "—",
                    cell.capped,
                ]
            )
        return rows

    # ------------------------------------------------------------------
    # Paper-reference table
    # ------------------------------------------------------------------
    def reference_rows(self) -> List[List[Any]]:
        """Rows reading measured cells against the paper's bounds."""
        rows: List[List[Any]] = []
        for key in sorted(self.cells):
            sweep, algorithm, graph, n, cr = key
            cell = self.cells[key]
            reference = paper_reference(
                algorithm, graph, n, harmonic_T=cell.harmonic_T
            )
            if reference is None:
                continue
            label, bound, check = reference
            if cell.completion.count:
                measured = cell.completion.summary()
                worst = measured.maximum
                shown = (
                    f"max {measured.maximum:.0f}, "
                    f"mean {measured.mean:.1f}"
                )
            else:
                worst = None
                shown = f"capped × {cell.capped}"
            rows.append(
                [
                    f"{sweep}/{algorithm}/{graph}:n{n}/{cr}",
                    label,
                    shown,
                    "—" if worst is None else check(worst, cell),
                ]
            )
        return rows

    # ------------------------------------------------------------------
    # Rendering / serialisation
    # ------------------------------------------------------------------
    def render(self, title: str = "campaign report") -> str:
        """Both tables as one printable block."""
        blocks = [
            render_table(
                self.CAMPAIGN_HEADER,
                self.table_rows(),
                title=f"{title}: {self.records} records, "
                f"{len(self.cells)} cells",
            )
        ]
        reference = self.reference_rows()
        if reference:
            blocks.append(
                render_table(
                    self.REFERENCE_HEADER,
                    reference,
                    title="paper reference bounds "
                    "(Thm 2 / Thm 10 / Thm 18)",
                )
            )
        return "\n\n".join(blocks)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable form of the full report."""
        cells = []
        for key in sorted(self.cells):
            sweep, algorithm, graph, n, cr = key
            cell = self.cells[key]
            doc: Dict[str, Any] = {
                "sweep": sweep,
                "algorithm": algorithm,
                "graph_kind": graph,
                "n": n,
                "collision_rule": cr,
                "records": cell.records,
                "capped": cell.capped,
                "mean_transmissions": cell.transmissions.mean
                if cell.transmissions.count
                else None,
            }
            if cell.completion.count:
                summary = cell.completion.summary()
                doc["completion"] = {
                    "count": summary.count,
                    "mean": summary.mean,
                    "median": summary.median,
                    "stdev": summary.stdev,
                    "min": summary.minimum,
                    "max": summary.maximum,
                    "ci95_half_width": summary.ci95_half_width,
                }
            cells.append(doc)
        return {"records": self.records, "cells": cells}


def paper_reference(
    algorithm: str,
    graph_kind: str,
    n: int,
    harmonic_T: Optional[int] = None,
):
    """The paper bound a cell can be read against, if one is stated.

    Returns ``None`` when the paper states no bound for the
    combination, else ``(label, bound_value, check)`` where ``check``
    maps the measured worst completion round (plus the cell aggregate)
    to a short verdict string.
    """
    if (
        graph_kind in THEOREM2_GRAPHS
        and algorithm in DETERMINISTIC_ALGORITHMS
    ):
        bound = max(3, n) - 3
        return (
            f"worst case ≥ {bound} (Thm 2)",
            bound,
            # Theorem 2 bounds the adversarial worst case; a sweep's
            # sampled adversaries may or may not realise it, so the
            # verdict reports which side the measurement landed on
            # rather than pass/fail.
            lambda worst, cell: "reached"
            if worst >= bound or cell.capped
            else "not reached",
        )
    if algorithm == "strong_select":
        from repro.core.strong_select import build_schedule

        bound = build_schedule(n).round_bound()
        return (
            f"completes ≤ {bound} (Thm 10)",
            bound,
            lambda worst, cell: "holds"
            if worst <= bound and not cell.capped
            else "VIOLATED",
        )
    if algorithm == "harmonic" and harmonic_T is not None:
        from repro.core.harmonic import completion_bound

        bound = completion_bound(n, harmonic_T)
        return (
            f"completes ≤ {bound} whp (Thm 18)",
            bound,
            # A w.h.p. bound tolerates stragglers; report the side.
            lambda worst, cell: "within"
            if worst <= bound
            else "exceeded",
        )
    return None
