"""Streaming campaign reports: the paper table set from one store.

``repro report`` turns a campaign — any
:class:`~repro.store.base.ResultStore`, from a laptop-sized JSONL file
to a 10⁶-run sharded directory — into the paper-reproduction tables
without ever materialising the record list: records stream off
:meth:`~repro.store.base.ResultStore.iter_records` into one
:class:`~repro.analysis.stats.RunningSummary` per science cell
(Welford mean/variance feeding the Student-t CI machinery), so memory
is O(cells), not O(runs).

The report has up to three tables:

* the **campaign table** — one row per (sweep, algorithm, graph, n,
  collision rule) cell with completion-round summary, transmission
  mean and cap-hit count: the empirical side of the paper's Tables 1–2
  ensemble claims;
* the **paper-reference table** — rows for which the source paper
  states a bound the cell can be read against: Theorem 2's ``n − 3``
  worst-case lower bound for deterministic algorithms on the
  clique-bridge family, Theorem 10's ``X = ⌈n/ρ⌉`` Strong Select
  completion guarantee, and Theorem 18's ``2·n·T·H(n)`` w.h.p.
  Harmonic bound.  Cells outside every stated bound simply have no
  row — the report never invents a comparison; and
* the **under-churn table** — fault-injected cells
  (``churn_kind != "none"``), rendered only when the campaign has any.
  Churn records never enter the other two tables: the paper's bounds
  are stated for the failure-free model, so mixing crash/recovery runs
  into them would silently corrupt every comparison.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.stats import RunningSummary
from repro.analysis.tables import render_table

#: Graph kinds on the Theorem-2 comparison surface (the clique-bridge
#: family; mirrors repro.search.compare.THEOREM2_GRAPHS without
#: importing the search subsystem into the analysis layer).
THEOREM2_GRAPHS = ("clique-bridge",)

#: Deterministic algorithms Theorem 2's worst-case argument covers.
DETERMINISTIC_ALGORITHMS = ("round_robin", "strong_select")

#: Matches the ``[T=4]`` parameter segment a task key embeds for the
#: Harmonic plateau length (RunResult does not carry params directly).
_T_PARAM = re.compile(r"harmonic\[.*?T=(\d+)")


@dataclass
class CellAggregate:
    """Streaming per-cell aggregation state.

    One instance per (sweep, algorithm, graph kind, n, collision rule)
    science cell; every field is either a counter or a
    :class:`RunningSummary`, so the aggregate never grows with the
    number of runs.
    """

    records: int = 0
    capped: int = 0
    completion: RunningSummary = field(default_factory=RunningSummary)
    transmissions: RunningSummary = field(
        default_factory=RunningSummary
    )
    harmonic_T: Optional[int] = None

    def add(self, record) -> None:
        """Fold one :class:`~repro.experiments.results.RunResult` in."""
        self.records += 1
        if record.completed and record.completion_round is not None:
            self.completion.add(record.completion_round)
        else:
            self.capped += 1
        self.transmissions.add(record.total_transmissions)
        if self.harmonic_T is None and record.algorithm == "harmonic":
            match = _T_PARAM.search(record.key)
            if match:
                self.harmonic_T = int(match.group(1))


#: The grouping key of one campaign-table row.
CellKey = Tuple[str, str, str, int, str]

#: The grouping key of one under-churn row: a cell key plus the
#: fault-injection kind that produced the records.
ChurnCellKey = Tuple[str, str, str, int, str, str]


class CampaignReport:
    """A streaming fold of campaign records into the paper tables."""

    CAMPAIGN_HEADER = [
        "sweep",
        "algorithm",
        "graph",
        "n",
        "CR",
        "runs",
        "completion rounds",
        "mean sends",
        "capped",
    ]

    REFERENCE_HEADER = [
        "cell",
        "paper bound",
        "measured",
        "consistent",
    ]

    CHURN_HEADER = [
        "sweep",
        "algorithm",
        "graph",
        "n",
        "CR",
        "churn",
        "runs",
        "completion rounds",
        "mean sends",
        "capped",
    ]

    def __init__(self) -> None:
        """Start with no cells and no records."""
        self.cells: Dict[CellKey, CellAggregate] = {}
        self.churn_cells: Dict[ChurnCellKey, CellAggregate] = {}
        self.records = 0

    def add(self, record) -> None:
        """Fold one record into its cell's aggregate.

        Fault-injected records (``churn_kind != "none"``) aggregate
        into their own cells — the campaign and paper-reference tables
        stay failure-free, so the paper's bounds are only ever read
        against the model they are stated for.
        """
        churn_kind = getattr(record, "churn_kind", "none")
        if churn_kind != "none":
            churn_key: ChurnCellKey = (
                record.sweep,
                record.algorithm,
                record.graph_kind,
                record.n,
                record.collision_rule,
                churn_kind,
            )
            churn_cell = self.churn_cells.get(churn_key)
            if churn_cell is None:
                churn_cell = CellAggregate()
                self.churn_cells[churn_key] = churn_cell
            churn_cell.add(record)
            self.records += 1
            return
        key: CellKey = (
            record.sweep,
            record.algorithm,
            record.graph_kind,
            record.n,
            record.collision_rule,
        )
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = CellAggregate()
        cell.add(record)
        self.records += 1

    @classmethod
    def from_store(cls, store) -> "CampaignReport":
        """Stream every record of a result store into a report."""
        report = cls()
        for record in store.iter_records():
            report.add(record)
        return report

    # ------------------------------------------------------------------
    # Campaign table
    # ------------------------------------------------------------------
    def table_rows(self) -> List[List[Any]]:
        """One row per science cell, sorted by the grouping key."""
        rows: List[List[Any]] = []
        for key in sorted(self.cells):
            sweep, algorithm, graph, n, cr = key
            cell = self.cells[key]
            rows.append(
                [
                    sweep,
                    algorithm,
                    graph,
                    n,
                    cr,
                    cell.records,
                    cell.completion.summary().format()
                    if cell.completion.count
                    else "—",
                    f"{cell.transmissions.mean:.1f}"
                    if cell.transmissions.count
                    else "—",
                    cell.capped,
                ]
            )
        return rows

    # ------------------------------------------------------------------
    # Under-churn table
    # ------------------------------------------------------------------
    def churn_rows(self) -> List[List[Any]]:
        """One row per fault-injected cell, sorted by the grouping key.

        Empty when the campaign has no churn records, in which case the
        report renders without the companion table at all.
        """
        rows: List[List[Any]] = []
        for key in sorted(self.churn_cells):
            sweep, algorithm, graph, n, cr, churn_kind = key
            cell = self.churn_cells[key]
            rows.append(
                [
                    sweep,
                    algorithm,
                    graph,
                    n,
                    cr,
                    churn_kind,
                    cell.records,
                    cell.completion.summary().format()
                    if cell.completion.count
                    else "—",
                    f"{cell.transmissions.mean:.1f}"
                    if cell.transmissions.count
                    else "—",
                    cell.capped,
                ]
            )
        return rows

    # ------------------------------------------------------------------
    # Paper-reference table
    # ------------------------------------------------------------------
    def reference_rows(self) -> List[List[Any]]:
        """Rows reading measured cells against the paper's bounds."""
        rows: List[List[Any]] = []
        for key in sorted(self.cells):
            sweep, algorithm, graph, n, cr = key
            cell = self.cells[key]
            reference = paper_reference(
                algorithm, graph, n, harmonic_T=cell.harmonic_T
            )
            if reference is None:
                continue
            label, bound, check = reference
            if cell.completion.count:
                measured = cell.completion.summary()
                worst = measured.maximum
                shown = (
                    f"max {measured.maximum:.0f}, "
                    f"mean {measured.mean:.1f}"
                )
            else:
                worst = None
                shown = f"capped × {cell.capped}"
            rows.append(
                [
                    f"{sweep}/{algorithm}/{graph}:n{n}/{cr}",
                    label,
                    shown,
                    "—" if worst is None else check(worst, cell),
                ]
            )
        return rows

    # ------------------------------------------------------------------
    # Rendering / serialisation
    # ------------------------------------------------------------------
    def render(self, title: str = "campaign report") -> str:
        """Both tables as one printable block."""
        blocks = [
            render_table(
                self.CAMPAIGN_HEADER,
                self.table_rows(),
                title=f"{title}: {self.records} records, "
                f"{len(self.cells) + len(self.churn_cells)} cells",
            )
        ]
        reference = self.reference_rows()
        if reference:
            blocks.append(
                render_table(
                    self.REFERENCE_HEADER,
                    reference,
                    title="paper reference bounds "
                    "(Thm 2 / Thm 10 / Thm 18)",
                )
            )
        churn = self.churn_rows()
        if churn:
            blocks.append(
                render_table(
                    self.CHURN_HEADER,
                    churn,
                    title="under churn (fault-injected cells; "
                    "paper bounds do not apply)",
                )
            )
        return "\n\n".join(blocks)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable form of the full report."""
        cells = []
        for key in sorted(self.cells):
            sweep, algorithm, graph, n, cr = key
            cell = self.cells[key]
            doc: Dict[str, Any] = {
                "sweep": sweep,
                "algorithm": algorithm,
                "graph_kind": graph,
                "n": n,
                "collision_rule": cr,
                "records": cell.records,
                "capped": cell.capped,
                "mean_transmissions": cell.transmissions.mean
                if cell.transmissions.count
                else None,
            }
            if cell.completion.count:
                summary = cell.completion.summary()
                doc["completion"] = {
                    "count": summary.count,
                    "mean": summary.mean,
                    "median": summary.median,
                    "stdev": summary.stdev,
                    "min": summary.minimum,
                    "max": summary.maximum,
                    "ci95_half_width": summary.ci95_half_width,
                }
            cells.append(doc)
        out: Dict[str, Any] = {"records": self.records, "cells": cells}
        if self.churn_cells:
            churn_docs = []
            for churn_key in sorted(self.churn_cells):
                sweep, algorithm, graph, n, cr, churn_kind = churn_key
                cell = self.churn_cells[churn_key]
                churn_doc: Dict[str, Any] = {
                    "sweep": sweep,
                    "algorithm": algorithm,
                    "graph_kind": graph,
                    "n": n,
                    "collision_rule": cr,
                    "churn_kind": churn_kind,
                    "records": cell.records,
                    "capped": cell.capped,
                    "mean_transmissions": cell.transmissions.mean
                    if cell.transmissions.count
                    else None,
                }
                if cell.completion.count:
                    summary = cell.completion.summary()
                    churn_doc["completion"] = {
                        "count": summary.count,
                        "mean": summary.mean,
                        "median": summary.median,
                        "stdev": summary.stdev,
                        "min": summary.minimum,
                        "max": summary.maximum,
                        "ci95_half_width": summary.ci95_half_width,
                    }
                churn_docs.append(churn_doc)
            out["churn_cells"] = churn_docs
        return out


def paper_reference(
    algorithm: str,
    graph_kind: str,
    n: int,
    harmonic_T: Optional[int] = None,
):
    """The paper bound a cell can be read against, if one is stated.

    Returns ``None`` when the paper states no bound for the
    combination, else ``(label, bound_value, check)`` where ``check``
    maps the measured worst completion round (plus the cell aggregate)
    to a short verdict string.
    """
    if (
        graph_kind in THEOREM2_GRAPHS
        and algorithm in DETERMINISTIC_ALGORITHMS
    ):
        bound = max(3, n) - 3
        return (
            f"worst case ≥ {bound} (Thm 2)",
            bound,
            # Theorem 2 bounds the adversarial worst case; a sweep's
            # sampled adversaries may or may not realise it, so the
            # verdict reports which side the measurement landed on
            # rather than pass/fail.
            lambda worst, cell: "reached"
            if worst >= bound or cell.capped
            else "not reached",
        )
    if algorithm == "strong_select":
        from repro.core.strong_select import build_schedule

        bound = build_schedule(n).round_bound()
        return (
            f"completes ≤ {bound} (Thm 10)",
            bound,
            lambda worst, cell: "holds"
            if worst <= bound and not cell.capped
            else "VIOLATED",
        )
    if algorithm == "harmonic" and harmonic_T is not None:
        from repro.core.harmonic import completion_bound

        bound = completion_bound(n, harmonic_T)
        return (
            f"completes ≤ {bound} whp (Thm 18)",
            bound,
            # A w.h.p. bound tolerates stragglers; report the side.
            lambda worst, cell: "within"
            if worst <= bound
            else "exceeded",
        )
    return None
