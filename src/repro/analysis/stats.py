"""Summary statistics and seed sweeps for experiment harnesses."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample.

    Attributes:
        count: Sample size.
        mean: Arithmetic mean.
        median: Median.
        stdev: Sample standard deviation (0 for singletons).
        minimum: Smallest observation.
        maximum: Largest observation.
        ci95_half_width: Half-width of a normal-approximation 95%
            confidence interval for the mean.
    """

    count: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float
    ci95_half_width: float

    def format(self, precision: int = 1) -> str:
        """Human-readable ``mean ± ci [min, max]`` rendering."""
        return (
            f"{self.mean:.{precision}f} ± {self.ci95_half_width:.{precision}f}"
            f" [{self.minimum:.{precision}f}, {self.maximum:.{precision}f}]"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of the sample.

    Raises:
        ValueError: On an empty sample.
    """
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    stdev = statistics.stdev(data) if len(data) > 1 else 0.0
    return Summary(
        count=len(data),
        mean=statistics.fmean(data),
        median=statistics.median(data),
        stdev=stdev,
        minimum=min(data),
        maximum=max(data),
        ci95_half_width=1.96 * stdev / math.sqrt(len(data)),
    )


def seed_sweep(
    run: Callable[[int], float],
    seeds: Sequence[int],
) -> Summary:
    """Run a seeded experiment once per seed and summarize the results.

    Args:
        run: ``run(seed) -> measurement``.
        seeds: The seeds to sweep.
    """
    return summarize(run(seed) for seed in seeds)


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (linear interpolation, ``0 ≤ q ≤ 1``)."""
    if not values:
        raise ValueError("cannot take a quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    data = sorted(float(v) for v in values)
    if len(data) == 1:
        return data[0]
    pos = q * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac
