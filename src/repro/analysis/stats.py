"""Summary statistics and seed sweeps for experiment harnesses."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence, TypeVar

T = TypeVar("T")


#: Two-sided 95% Student-t critical values, indexed by ``df - 1`` for
#: ``df = 1 .. 30``.  Beyond 30 degrees of freedom the normal
#: approximation (1.96) is within ~2% and takes over.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
)


def t_critical_95(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` ≥ 1.

    Tabulated for ``df ≤ 30``; larger samples fall back to the normal
    1.96 (the t distribution is within ~2% of normal there).  Small
    seed sweeps (5–10 seeds per cell are common in the benches) need
    the t value — the normal 1.96 under-reports their uncertainty by
    up to a factor of ~1.4 at ``n = 5``.
    """
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    return _T95[df - 1] if df <= len(_T95) else 1.96


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample.

    Attributes:
        count: Sample size.
        mean: Arithmetic mean.
        median: Median.
        stdev: Sample standard deviation (0 for singletons).
        minimum: Smallest observation.
        maximum: Largest observation.
        ci95_half_width: Half-width of a 95% confidence interval for
            the mean, using the Student-t critical value for the
            sample's degrees of freedom (normal approximation beyond
            ``n = 31``; 0 for singletons).
    """

    count: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float
    ci95_half_width: float

    def format(self, precision: int = 1) -> str:
        """Human-readable ``mean ± ci [min, max]`` rendering."""
        return (
            f"{self.mean:.{precision}f} ± {self.ci95_half_width:.{precision}f}"
            f" [{self.minimum:.{precision}f}, {self.maximum:.{precision}f}]"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of the sample.

    Raises:
        ValueError: On an empty sample.
    """
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    if len(data) > 1:
        stdev = statistics.stdev(data)
        ci95 = t_critical_95(len(data) - 1) * stdev / math.sqrt(len(data))
    else:
        stdev = ci95 = 0.0
    return Summary(
        count=len(data),
        mean=statistics.fmean(data),
        median=statistics.median(data),
        stdev=stdev,
        minimum=min(data),
        maximum=max(data),
        ci95_half_width=ci95,
    )


class RunningSummary:
    """Streaming accumulator producing the same :class:`Summary`.

    The incremental-analysis primitive behind ``repro report``: feed it
    observations one at a time (straight off a result store's record
    iterator) and it maintains Welford's online mean/variance — which
    feeds the existing Student-t CI machinery — plus exact min/max and
    an exact median, *without ever materialising the sample list*.

    The median stays exact because observations are folded into a
    value → count map: completion rounds (and most sweep measurables)
    are small integers, so the map holds one entry per *distinct*
    value — memory O(distinct values), not O(observations).  A 10⁶-run
    campaign whose completion rounds span a few hundred values costs a
    few hundred dict entries.

    Accumulators also :meth:`merge`, so per-shard partial summaries
    combine associatively (Chan et al.'s parallel Welford update) —
    the shape a sharded or multi-host reducer needs.
    """

    __slots__ = ("count", "_mean", "_m2", "_min", "_max", "_counts")

    def __init__(self) -> None:
        """Start empty (``count == 0``; no summary available yet)."""
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._counts: Dict[float, int] = {}

    def add(self, value: float) -> None:
        """Fold one observation in (Welford single-pass update)."""
        v = float(value)
        self.count += 1
        delta = v - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (v - self._mean)
        if self._min is None or v < self._min:
            self._min = v
        if self._max is None or v > self._max:
            self._max = v
        self._counts[v] = self._counts.get(v, 0) + 1

    def update(self, values: Iterable[float]) -> "RunningSummary":
        """Fold a stream of observations in (returns self)."""
        for v in values:
            self.add(v)
        return self

    def merge(self, other: "RunningSummary") -> "RunningSummary":
        """Combine another accumulator into this one (returns self).

        Associative and order-insensitive up to floating-point
        rounding — per-shard partials merged in any order agree with
        one sequential pass to well below the CI's resolution.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            self._counts = dict(other._counts)
            return self
        total = self.count + other.count
        delta = other._mean - self._mean
        self._mean += delta * other.count / total
        self._m2 += (
            other._m2 + delta * delta * self.count * other.count / total
        )
        self.count = total
        assert other._min is not None and other._max is not None
        if self._min is None or other._min < self._min:
            self._min = other._min
        if self._max is None or other._max > self._max:
            self._max = other._max
        for v, c in other._counts.items():
            self._counts[v] = self._counts.get(v, 0) + c
        return self

    @property
    def mean(self) -> float:
        """The running arithmetic mean (0.0 while empty)."""
        return self._mean

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0 for fewer than 2 samples)."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))

    @property
    def ci95_half_width(self) -> float:
        """Student-t 95% CI half-width, same rule as :func:`summarize`."""
        if self.count < 2:
            return 0.0
        return (
            t_critical_95(self.count - 1)
            * self.stdev
            / math.sqrt(self.count)
        )

    def median(self) -> float:
        """Exact median from the value-count map (interpolated)."""
        if self.count == 0:
            raise ValueError("cannot take the median of an empty sample")
        lo_pos = (self.count - 1) // 2
        hi_pos = self.count // 2
        lo = hi = None
        seen = 0
        for v in sorted(self._counts):
            seen += self._counts[v]
            if lo is None and seen > lo_pos:
                lo = v
            if seen > hi_pos:
                hi = v
                break
        assert lo is not None and hi is not None
        return (lo + hi) / 2.0

    def summary(self) -> Summary:
        """The accumulated sample as a standard :class:`Summary`.

        Numerically agrees with :func:`summarize` over the same
        observations (to floating-point rounding; exactly for the
        count/min/max/median fields).

        Raises:
            ValueError: When no observations have been added.
        """
        if self.count == 0:
            raise ValueError("cannot summarize an empty sample")
        assert self._min is not None and self._max is not None
        return Summary(
            count=self.count,
            mean=self._mean,
            median=self.median(),
            stdev=self.stdev,
            minimum=self._min,
            maximum=self._max,
            ci95_half_width=self.ci95_half_width,
        )


def seed_sweep(
    run: Callable[[int], float],
    seeds: Sequence[int],
) -> Summary:
    """Run a seeded experiment once per seed and summarize the results.

    Args:
        run: ``run(seed) -> measurement``.
        seeds: The seeds to sweep.
    """
    return summarize(run(seed) for seed in seeds)


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (linear interpolation, ``0 ≤ q ≤ 1``)."""
    if not values:
        raise ValueError("cannot take a quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    data = sorted(float(v) for v in values)
    if len(data) == 1:
        return data[0]
    pos = q * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac
