"""Summary statistics and seed sweeps for experiment harnesses."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


#: Two-sided 95% Student-t critical values, indexed by ``df - 1`` for
#: ``df = 1 .. 30``.  Beyond 30 degrees of freedom the normal
#: approximation (1.96) is within ~2% and takes over.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
)


def t_critical_95(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` ≥ 1.

    Tabulated for ``df ≤ 30``; larger samples fall back to the normal
    1.96 (the t distribution is within ~2% of normal there).  Small
    seed sweeps (5–10 seeds per cell are common in the benches) need
    the t value — the normal 1.96 under-reports their uncertainty by
    up to a factor of ~1.4 at ``n = 5``.
    """
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    return _T95[df - 1] if df <= len(_T95) else 1.96


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample.

    Attributes:
        count: Sample size.
        mean: Arithmetic mean.
        median: Median.
        stdev: Sample standard deviation (0 for singletons).
        minimum: Smallest observation.
        maximum: Largest observation.
        ci95_half_width: Half-width of a 95% confidence interval for
            the mean, using the Student-t critical value for the
            sample's degrees of freedom (normal approximation beyond
            ``n = 31``; 0 for singletons).
    """

    count: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float
    ci95_half_width: float

    def format(self, precision: int = 1) -> str:
        """Human-readable ``mean ± ci [min, max]`` rendering."""
        return (
            f"{self.mean:.{precision}f} ± {self.ci95_half_width:.{precision}f}"
            f" [{self.minimum:.{precision}f}, {self.maximum:.{precision}f}]"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of the sample.

    Raises:
        ValueError: On an empty sample.
    """
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    if len(data) > 1:
        stdev = statistics.stdev(data)
        ci95 = t_critical_95(len(data) - 1) * stdev / math.sqrt(len(data))
    else:
        stdev = ci95 = 0.0
    return Summary(
        count=len(data),
        mean=statistics.fmean(data),
        median=statistics.median(data),
        stdev=stdev,
        minimum=min(data),
        maximum=max(data),
        ci95_half_width=ci95,
    )


def seed_sweep(
    run: Callable[[int], float],
    seeds: Sequence[int],
) -> Summary:
    """Run a seeded experiment once per seed and summarize the results.

    Args:
        run: ``run(seed) -> measurement``.
        seeds: The seeds to sweep.
    """
    return summarize(run(seed) for seed in seeds)


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (linear interpolation, ``0 ≤ q ≤ 1``)."""
    if not values:
        raise ValueError("cannot take a quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    data = sorted(float(v) for v in values)
    if len(data) == 1:
        return data[0]
    pos = q * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac
