"""Complexity-model fitting: does the measured ``T(n)`` match the bound?

The paper's upper bounds have the form ``T(n) = c · n^a · (log n)^b`` —
Strong Select at ``(a, b) = (3/2, 1/2)``, Harmonic at ``(1, 2)``, round
robin on constant-eccentricity networks at ``(1, 0)``.  We fit ``a`` by
log–log least squares for each candidate ``b`` on a small grid and keep
the best ``R²``; the benchmark harnesses then compare the fitted ``a``
against the paper's exponent (the reproduction contract is about *shape*,
so ``a`` is the headline number and ``b`` a refinement).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class PowerLawFit:
    """The fitted model ``T(n) ≈ c · n^a · (log₂ n)^b``.

    Attributes:
        exponent: The fitted ``a``.
        log_exponent: The ``b`` used (fixed per fit; chosen by grid).
        coefficient: The fitted ``c``.
        r_squared: Coefficient of determination in log space.
    """

    exponent: float
    log_exponent: float
    coefficient: float
    r_squared: float

    def predict(self, n: float) -> float:
        """The model's prediction at ``n``."""
        return (
            self.coefficient
            * n**self.exponent
            * max(1.0, math.log2(n)) ** self.log_exponent
        )

    def format(self) -> str:
        parts = [f"{self.coefficient:.3g} * n^{self.exponent:.3f}"]
        if self.log_exponent:
            parts.append(f"* (log n)^{self.log_exponent:g}")
        parts.append(f"(R^2={self.r_squared:.4f})")
        return " ".join(parts)


def fit_power_law(
    ns: Sequence[float],
    ts: Sequence[float],
    log_exponent: float = 0.0,
) -> PowerLawFit:
    """Least-squares fit of ``a`` and ``c`` with ``b`` held fixed.

    Args:
        ns: Problem sizes (``> 1``).
        ts: Measurements (``> 0``), same length as ``ns``.
        log_exponent: The fixed ``b``.

    Raises:
        ValueError: On fewer than two points or non-positive inputs.
    """
    if len(ns) != len(ts):
        raise ValueError("ns and ts must have the same length")
    if len(ns) < 2:
        raise ValueError("need at least two points to fit")
    if any(n <= 1 for n in ns) or any(t <= 0 for t in ts):
        raise ValueError("need n > 1 and t > 0 for a log-log fit")
    x: List[float] = [math.log(float(n)) for n in ns]
    y: List[float] = [
        math.log(t) - log_exponent * math.log(math.log2(n))
        for n, t in zip(ns, ts)
    ]
    # Closed-form ordinary least squares in log space (the degree-1
    # polyfit this used to delegate to NumPy for); pure stdlib so the
    # analysis layer honours the stdlib-only runtime contract.
    mean_x = math.fsum(x) / len(x)
    mean_y = math.fsum(y) / len(y)
    var_x = math.fsum((xi - mean_x) ** 2 for xi in x)
    if var_x == 0:
        raise ValueError("need at least two distinct n values to fit")
    slope = (
        math.fsum(
            (xi - mean_x) * (yi - mean_y) for xi, yi in zip(x, y)
        )
        / var_x
    )
    intercept = mean_y - slope * mean_x
    ss_res = math.fsum(
        (yi - (slope * xi + intercept)) ** 2 for xi, yi in zip(x, y)
    )
    ss_tot = math.fsum((yi - mean_y) ** 2 for yi in y)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        exponent=float(slope),
        log_exponent=log_exponent,
        coefficient=float(math.exp(intercept)),
        r_squared=r_squared,
    )


def best_fit(
    ns: Sequence[float],
    ts: Sequence[float],
    log_exponents: Iterable[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
) -> PowerLawFit:
    """Fit over a grid of ``b`` values and return the best-``R²`` model."""
    fits = [fit_power_law(ns, ts, b) for b in log_exponents]
    return max(fits, key=lambda f: f.r_squared)


def growth_ratio_check(
    ns: Sequence[float],
    ts: Sequence[float],
    reference: float,
    tolerance: float = 0.35,
) -> Tuple[bool, float]:
    """Whether the fitted exponent is within ``tolerance`` of ``reference``.

    Returns ``(ok, fitted_exponent)``; a coarse but robust shape check
    used by integration tests (benchmarks report the full fit).
    """
    fit = best_fit(ns, ts)
    return abs(fit.exponent - reference) <= tolerance, fit.exponent
