"""Analysis utilities: statistics, complexity fits, busy-round accounting,
and paper-style table rendering."""

from repro.analysis.density import (
    busy_round_count,
    busy_rounds,
    free_round_prefix_equal_point,
    front_loaded_pattern,
    is_busy,
    probability_mass,
    wakeup_pattern_of,
)
from repro.analysis.fitting import (
    PowerLawFit,
    best_fit,
    fit_power_law,
    growth_ratio_check,
)
from repro.analysis.plots import bars, scatter
from repro.analysis.report import (
    CampaignReport,
    CellAggregate,
    paper_reference,
)
from repro.analysis.stats import (
    RunningSummary,
    Summary,
    quantile,
    seed_sweep,
    summarize,
    t_critical_95,
)
from repro.analysis.tables import render_kv, render_table

__all__ = [
    "CampaignReport",
    "CellAggregate",
    "PowerLawFit",
    "RunningSummary",
    "Summary",
    "bars",
    "best_fit",
    "scatter",
    "busy_round_count",
    "busy_rounds",
    "fit_power_law",
    "free_round_prefix_equal_point",
    "front_loaded_pattern",
    "growth_ratio_check",
    "is_busy",
    "paper_reference",
    "probability_mass",
    "quantile",
    "render_kv",
    "render_table",
    "seed_sweep",
    "summarize",
    "t_critical_95",
    "wakeup_pattern_of",
]
