"""ASCII table rendering for paper-style result tables.

The benchmark harnesses regenerate Tables 1 and 2 with a "measured"
column next to the paper's bound; this module does the formatting so
every bench prints consistently aligned, copy-pasteable tables.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column headers.
        rows: Row cell values (stringified; ``None`` renders as ``—``).
        title: Optional title line printed above the table.
    """
    str_rows: List[List[str]] = [
        ["—" if c is None else str(c) for c in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return (
            "| "
            + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))
            + " |"
        )

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.extend([sep, fmt(list(headers)), sep])
    lines.extend(fmt(row) for row in str_rows)
    lines.append(sep)
    return "\n".join(lines)


def render_kv(pairs: Iterable[Sequence[object]], title: str = "") -> str:
    """Render key–value pairs as a two-column table."""
    return render_table(["quantity", "value"], pairs, title=title)
