"""Executable versions of the paper's lower-bound constructions."""

from repro.lowerbounds.sandbox import SandboxProcess
from repro.lowerbounds.theorem2 import (
    Theorem2Adversary,
    Theorem2Result,
    run_alpha_i,
    theorem2_lower_bound,
)
from repro.lowerbounds.theorem4 import Theorem4Result, theorem4_experiment
from repro.lowerbounds.theorem11 import (
    Theorem11Result,
    theorem11_lower_bound,
    verify_with_engine,
    worst_case_proc_mapping,
)
from repro.lowerbounds.theorem12 import (
    ConstructionError,
    StageRecord,
    Theorem12Result,
    theorem12_construction,
)

__all__ = [
    "ConstructionError",
    "SandboxProcess",
    "StageRecord",
    "Theorem2Adversary",
    "Theorem2Result",
    "Theorem4Result",
    "Theorem11Result",
    "Theorem12Result",
    "run_alpha_i",
    "theorem2_lower_bound",
    "theorem4_experiment",
    "theorem11_lower_bound",
    "theorem12_construction",
    "verify_with_engine",
    "worst_case_proc_mapping",
]
