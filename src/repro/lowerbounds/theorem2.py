"""Theorem 2: the ``Ω(n)`` lower bound on 2-broadcastable networks.

The network is :func:`~repro.graphs.constructions.clique_bridge`: an
``(n−1)``-clique containing the source and a *bridge* node, plus a lone
receiver attached only to the bridge; ``G'`` is complete.  The network is
2-broadcastable (source sends, then bridge sends), yet no deterministic
algorithm finishes within ``n − 3`` rounds.

The proof fixes the adversary's communication rules (restated in
:class:`Theorem2Adversary` below) and considers, for every candidate
bridge identity ``i``, the execution ``α_i`` in which the adversary
assigns identity ``i`` to the bridge node.  The candidate-set argument
(Claim 3) shows some ``i`` is not isolated for at least ``n − 3`` rounds
— operationally, the *maximum* over ``i`` of the receiver's informing
round exceeds ``n − 3``.

:func:`theorem2_lower_bound` runs that executable version of the
argument: it simulates ``α_i`` for every ``i`` and reports the worst one.
The paper's convention: identity 0 is assigned to the source and identity
``n − 1`` to the receiver (the paper uses ``1`` and ``n``; we are
0-based); the remaining identities fill the clique by a default rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Sequence

from repro.adversaries.base import Adversary, AdversaryView
from repro.graphs.constructions import CliqueBridgeLayout, clique_bridge
from repro.sim.collision import CollisionRule
from repro.sim.engine import BroadcastEngine, EngineConfig, StartMode
from repro.sim.process import Process
from repro.sim.trace import ExecutionTrace

#: Factory building the n processes of the algorithm under test.
AlgorithmFactory = Callable[[int], Sequence[Process]]


class Theorem2Adversary(Adversary):
    """The proof's communication rules on the clique-bridge network.

    Per round (collisions under CR1):

    1. If two or more processes send, all messages reach all processes
       (everyone observes ``⊤``).
    2. If a single process at a node in ``C − {b}`` sends, its message
       reaches exactly the processes at clique nodes (the receiver hears
       ``⊥``).
    3. If only the bridge process or only the receiver process sends, the
       message reaches all processes.

    The adversary also fixes the ``proc`` mapping: identity 0 at the
    source, identity ``n−1`` at the receiver, the chosen ``bridge_uid``
    at the bridge, and remaining identities at clique nodes in ascending
    node order.
    """

    def __init__(self, layout: CliqueBridgeLayout, bridge_uid: int) -> None:
        n = layout.graph.n
        if not 1 <= bridge_uid <= n - 2:
            raise ValueError(
                f"bridge identity must be in [1, {n - 2}], got {bridge_uid}"
            )
        self.layout = layout
        self.bridge_uid = bridge_uid

    def assign_processes(self, network, uids: Sequence[int]) -> Dict[int, int]:
        layout = self.layout
        n = network.n
        uid_set = sorted(uids)
        if uid_set != list(range(n)):
            raise ValueError("theorem 2 driver expects identities 0..n-1")
        mapping: Dict[int, int] = {
            layout.source: 0,
            layout.receiver: n - 1,
            layout.bridge: self.bridge_uid,
        }
        remaining = [
            u for u in uid_set if u not in (0, n - 1, self.bridge_uid)
        ]
        free_nodes = [
            v
            for v in network.nodes
            if v not in (layout.source, layout.receiver, layout.bridge)
        ]
        for node, uid in zip(free_nodes, remaining):
            mapping[node] = uid
        return mapping

    def choose_deliveries(
        self, view: AdversaryView
    ) -> Dict[int, FrozenSet[int]]:
        layout = self.layout
        network = view.network
        senders = sorted(view.senders)
        if len(senders) >= 2:
            # Rule 1: everything reaches everywhere.
            return {
                v: network.unreliable_only_out(v) for v in senders
            }
        if not senders:
            return {}
        (v,) = senders
        if v == layout.bridge or v == layout.receiver:
            # Rule 3: reaches all processes (reliable edges already cover
            # most of them; add the unreliable remainder).
            return {v: network.unreliable_only_out(v)}
        # Rule 2: a lone clique sender reaches exactly the clique, which
        # its reliable edges already do.  No unreliable deliveries.
        return {}


@dataclass
class Theorem2Result:
    """Outcome of the executable Theorem-2 argument.

    Attributes:
        n: Network size.
        rounds_by_bridge_uid: For each candidate bridge identity, the round
            in which the receiver was informed in ``α_i`` (``None`` when
            the execution hit the cap first).
        worst_bridge_uid: The identity maximising that round.
        worst_rounds: The maximum — the algorithm's worst-case broadcast
            time over this adversary family.
        theorem_bound: ``n − 3``; the theorem asserts
            ``worst_rounds > theorem_bound`` for every deterministic
            algorithm.
    """

    n: int
    rounds_by_bridge_uid: Dict[int, Optional[int]] = field(
        default_factory=dict
    )
    max_rounds_cap: int = 0

    @property
    def worst_bridge_uid(self) -> int:
        def key(item):
            uid, rounds = item
            return (self.max_rounds_cap + 1 if rounds is None else rounds, -uid)

        return max(self.rounds_by_bridge_uid.items(), key=key)[0]

    @property
    def worst_rounds(self) -> int:
        r = self.rounds_by_bridge_uid[self.worst_bridge_uid]
        return self.max_rounds_cap if r is None else r

    @property
    def theorem_bound(self) -> int:
        return self.n - 3

    @property
    def bound_holds(self) -> bool:
        """Whether the measured worst case exceeds ``n − 3``."""
        return self.worst_rounds > self.theorem_bound


def run_alpha_i(
    algorithm_factory: AlgorithmFactory,
    layout: CliqueBridgeLayout,
    bridge_uid: int,
    max_rounds: int,
) -> ExecutionTrace:
    """Run the execution ``α_i`` with identity ``i`` at the bridge."""
    n = layout.graph.n
    processes = algorithm_factory(n)
    adversary = Theorem2Adversary(layout, bridge_uid)
    config = EngineConfig(
        collision_rule=CollisionRule.CR1,
        start_mode=StartMode.SYNCHRONOUS,
        max_rounds=max_rounds,
        seed=0,
    )
    engine = BroadcastEngine(layout.graph, processes, adversary, config)
    return engine.run()


def theorem2_lower_bound(
    algorithm_factory: AlgorithmFactory,
    n: int,
    max_rounds: Optional[int] = None,
) -> Theorem2Result:
    """Run the Theorem-2 argument against a deterministic algorithm.

    Simulates ``α_i`` for every candidate bridge identity
    ``i ∈ {1, …, n−2}`` and reports the receiver's informing round in
    each; the maximum is the algorithm's worst case against this
    (restricted!) adversary family, and Theorem 2 promises it exceeds
    ``n − 3``.

    Args:
        algorithm_factory: Builds the ``n`` deterministic processes, uids
            ``0..n−1``.
        n: Network size (``n ≥ 3``).
        max_rounds: Per-execution cap (default ``8·n + 64``).
    """
    layout = clique_bridge(n)
    if max_rounds is None:
        max_rounds = 8 * n + 64
    result = Theorem2Result(n=n, max_rounds_cap=max_rounds)
    for bridge_uid in range(1, n - 1):
        trace = run_alpha_i(algorithm_factory, layout, bridge_uid, max_rounds)
        result.rounds_by_bridge_uid[bridge_uid] = trace.informed_round[
            layout.receiver
        ]
    return result
