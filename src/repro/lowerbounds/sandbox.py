"""Manually driven process copies for lower-bound constructions.

The adversary arguments in Sections 4 and 6 reason about *families* of
executions that share prefixes and differ only in the ``proc`` mapping.
Simulating them efficiently requires driving process automata by hand —
querying "would you send in round r?" and feeding each copy the exact
observation the construction dictates — and cloning automata at branch
points.

This requires the processes to be **deterministic** automata whose
``decide_send`` is a pure function of their state (true for Strong
Select, round robin, and any deterministic algorithm playing by the
model's rules).  The constructions are not defined for randomized
algorithms (Theorem 4 handles those by fixing choice sequences, i.e.
seeds).
"""

from __future__ import annotations

import copy
import random
from typing import Optional

from repro.sim.messages import (
    COLLISION,
    Message,
    Reception,
    SILENCE,
    received,
)
from repro.sim.process import Process, ProcessContext


class SandboxProcess:
    """A process copy driven round-by-round by a construction.

    Args:
        process: The automaton to drive (the sandbox takes ownership).
        n: System size passed through the context.
        payload: The broadcast payload; message custody is tracked exactly
            as the real engine does (a received message informs the copy
            only when it carries the payload).
        seed: Seed for the context PRNG (only consulted by probabilistic
            automata, which the constructions do not support; present for
            interface completeness).
    """

    def __init__(
        self,
        process: Process,
        n: int,
        payload: object,
        seed: int = 0,
    ) -> None:
        self.process = process
        self.payload = payload
        self.ctx = ProcessContext(
            round_number=0,
            rng=random.Random(f"sandbox:{seed}:{process.uid}"),
            n=n,
        )

    @property
    def uid(self) -> int:
        return self.process.uid

    @property
    def informed(self) -> bool:
        """Whether the copy holds the broadcast payload."""
        return self.process.has_message

    def clone(self) -> "SandboxProcess":
        """An independent copy sharing no mutable state."""
        return copy.deepcopy(self)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def activate(self, round_number: int = 0) -> None:
        """Wake the process (synchronous start: round 0)."""
        self.ctx.round_number = round_number
        self.process.on_activate(self.ctx)

    def give_broadcast_input(self) -> None:
        """Deliver the payload from the environment (source only)."""
        self.process.on_broadcast_input(
            Message(payload=self.payload, sender=self.uid, round_sent=0)
        )

    def would_send(self, round_number: int) -> Optional[Message]:
        """Query the automaton's transmission decision for a round.

        Pure for deterministic automata, so constructions may re-query
        the same round when exploring branch points.
        """
        self.ctx.round_number = round_number
        return self.process.decide_send(self.ctx)

    def feed(self, round_number: int, reception: Reception) -> None:
        """Deliver one observation for the given round."""
        self.ctx.round_number = round_number
        msg = reception.message
        if reception.is_message and msg is not None and msg.payload != self.payload:
            # A payload-free message: deliver without custody transfer,
            # mirroring BroadcastEngine._deliver.
            self.process.on_reception(self.ctx, reception)
            return
        self.process.deliver(self.ctx, reception)

    def feed_silence(self, round_number: int) -> None:
        self.feed(round_number, SILENCE)

    def feed_collision(self, round_number: int) -> None:
        self.feed(round_number, COLLISION)

    def feed_message(self, round_number: int, message: Message) -> None:
        self.feed(round_number, received(message))
