"""Theorem 4: the randomized lower bound on 2-broadcastable networks.

On the Theorem-2 clique-bridge network, against the restricted adversary
class that only chooses the ``proc`` mapping (communication resolved by
the fixed Theorem-2 rules, collisions by CR1), **no** probabilistic
algorithm solves broadcast within ``k`` rounds (``1 ≤ k ≤ n−3``) with
probability greater than ``k/(n−2)``.

The executable version is a Monte-Carlo experiment: for each candidate
bridge identity ``i`` we estimate, over random seeds, the probability that
the receiver is informed within ``k`` rounds of ``α_i``; the adversary
then picks the worst identity, so the algorithm's success probability at
``k`` is ``min_i P̂_i(k)``.  Theorem 4 promises this stays below the
envelope ``k/(n−2)`` (up to sampling error) for every algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.graphs.constructions import clique_bridge
from repro.lowerbounds.theorem2 import Theorem2Adversary
from repro.sim.collision import CollisionRule
from repro.sim.engine import BroadcastEngine, EngineConfig, StartMode
from repro.sim.process import Process

#: Factory building the n processes from a seed index (the seed selects
#: the algorithm's random choice sequence; the engine derives per-process
#: PRNGs from the engine seed, so factories may ignore the argument).
SeededAlgorithmFactory = Callable[[int], Sequence[Process]]


@dataclass
class Theorem4Result:
    """Outcome of the Monte-Carlo Theorem-4 experiment.

    Attributes:
        n: Network size.
        trials: Seeds per bridge identity.
        informed_rounds: ``informed_rounds[i]`` lists, per trial, the round
            the receiver was informed in ``α_i`` (cap+1 when never).
    """

    n: int
    trials: int
    max_rounds_cap: int
    informed_rounds: Dict[int, List[int]] = field(default_factory=dict)

    def success_probability(self, k: int, bridge_uid: int) -> float:
        """``P̂_i(k)``: fraction of trials informing the receiver by ``k``."""
        rounds = self.informed_rounds[bridge_uid]
        return sum(1 for r in rounds if r <= k) / len(rounds)

    def adversarial_success_probability(self, k: int) -> float:
        """``min_i P̂_i(k)`` — success against the worst proc mapping."""
        return min(
            self.success_probability(k, i) for i in self.informed_rounds
        )

    def envelope(self, k: int) -> float:
        """The theorem's bound ``k/(n−2)``."""
        return k / (self.n - 2)

    def violations(
        self, ks: Sequence[int], slack: float = 0.0
    ) -> List[int]:
        """The ``k`` values where measurement exceeds envelope + slack."""
        return [
            k
            for k in ks
            if self.adversarial_success_probability(k)
            > self.envelope(k) + slack
        ]


def theorem4_experiment(
    algorithm_factory: SeededAlgorithmFactory,
    n: int,
    trials: int = 50,
    max_rounds: Optional[int] = None,
    base_seed: int = 0,
) -> Theorem4Result:
    """Estimate per-``k`` success probabilities under the restricted class.

    Args:
        algorithm_factory: Builds the ``n`` (probabilistic) processes;
            receives the trial index, and each trial also varies the
            engine seed so per-process PRNGs differ.
        n: Network size (``n ≥ 4``).
        trials: Monte-Carlo repetitions per bridge identity.
        max_rounds: Per-execution cap (default ``n``; we only need rounds
            up to ``n − 3``).
        base_seed: Offset applied to all engine seeds.
    """
    if n < 4:
        raise ValueError("theorem 4 experiment needs n >= 4")
    layout = clique_bridge(n)
    if max_rounds is None:
        max_rounds = n
    result = Theorem4Result(
        n=n, trials=trials, max_rounds_cap=max_rounds
    )
    for bridge_uid in range(1, n - 1):
        rounds: List[int] = []
        for trial in range(trials):
            processes = algorithm_factory(trial)
            adversary = Theorem2Adversary(layout, bridge_uid)
            config = EngineConfig(
                collision_rule=CollisionRule.CR1,
                start_mode=StartMode.SYNCHRONOUS,
                max_rounds=max_rounds,
                seed=base_seed + trial * 7919 + bridge_uid,
            )
            engine = BroadcastEngine(
                layout.graph, processes, adversary, config
            )
            trace = engine.run()
            informed = trace.informed_round[layout.receiver]
            rounds.append(
                informed if informed is not None else max_rounds + 1
            )
        result.informed_rounds[bridge_uid] = rounds
    return result
