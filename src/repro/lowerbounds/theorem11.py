"""Theorem 11: the ``Ω(n^{3/2})`` directed lower bound, executably.

The paper imports this bound from Clementi–Monti–Silvestri [9, 11] for
``√n``-broadcastable *directed* networks.  Our executable stand-in is the
:func:`~repro.graphs.constructions.pivot_layers` network: ``≈√n`` layers
of ``≈√n`` nodes; reliable progress edges leave each layer only through
its *pivot* node, and the adversary owns a blanket of unreliable edges
into every later layer.

Why the shape is forced: the graph is directed, all non-activation
observations of a layer node are adversary-controlled, and a sender
always hears only its own message (CR4).  Hence the behaviour of a
process is a pure function of its identity and the round its layer was
activated — independent of which node of the layer it occupies, and
independent of which layer the identity was assigned to before that
activation.  The adversary exploits this twice:

* **layer population** — when a layer activates, the adversary decides
  (with deferred commitment, justified by the behaviour-independence
  above) *which* of the still-unplaced identities occupy it.  It reserves
  the identity that would transmit latest after activation;
* **pivot placement** — within the layer, it places at the pivot node the
  identity that is isolated *last*.  Progress out of layer ``k`` happens
  exactly at::

      t_{k+1} = max over identities i assigned to layer k of
                min { r > t_k : i transmits in r and no other active
                                process transmits in r }

  because a lone pivot transmission reliably informs the next layer (the
  adversary cannot stop reliable edges), while any concurrent transmission
  lets the adversary blanket the next layer with collisions, and lone
  non-pivot transmissions are delivered to nobody.

For round robin this makes every layer cost up to a full ``n``-round
cycle (the reserved identity's slot has just passed), so ``√n`` layers
cost ``Θ(n^{3/2})`` — the scaling [9] proves unavoidable for every
deterministic algorithm.

:func:`theorem11_lower_bound` computes the progress times by lockstep
sandbox simulation; :func:`verify_with_engine` replays the resulting
worst-case ``proc`` mapping in the real engine under the runtime
:class:`~repro.adversaries.interferers.PivotAdversary`, checking the
prediction round-for-round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.adversaries.interferers import PivotAdversary
from repro.graphs.constructions import PivotLayersLayout, pivot_layers
from repro.lowerbounds.sandbox import SandboxProcess
from repro.sim.collision import CollisionRule
from repro.sim.engine import BroadcastEngine, EngineConfig, StartMode
from repro.sim.messages import Message
from repro.sim.process import Process
from repro.sim.trace import ExecutionTrace

AlgorithmFactory = Callable[[int], Sequence[Process]]

_PAYLOAD = "thm11-broadcast-payload"


@dataclass
class Theorem11Result:
    """Outcome of the pivot-layer hardness computation.

    Attributes:
        n: Total node count.
        num_layers: Layers including the source layer.
        width: Identities per non-source layer.
        activation_rounds: ``activation_rounds[k]`` is the round layer
            ``k`` received the message (0 for the source layer).
        layer_uids: The adversary's identity assignment: ``layer_uids[k]``
            lists the identities occupying layer ``k``.
        pivot_uids: The identity at each layer's pivot node (the
            last-isolated identity of the layer); one entry per layer that
            has a successor.
        completed: Whether every layer was eventually activated within
            the cap.
    """

    n: int
    num_layers: int
    width: int
    activation_rounds: List[int] = field(default_factory=list)
    layer_uids: List[List[int]] = field(default_factory=list)
    pivot_uids: List[int] = field(default_factory=list)
    completed: bool = False

    @property
    def total_rounds(self) -> Optional[int]:
        """Rounds until the last layer was informed."""
        if not self.completed:
            return None
        return self.activation_rounds[-1]

    @property
    def normalized(self) -> Optional[float]:
        """``total_rounds / n^{3/2}`` — the Theorem-11 shape check."""
        total = self.total_rounds
        if total is None:
            return None
        return total / (self.n ** 1.5)


def _first_send_after(
    pristine: SandboxProcess,
    activation_round: int,
    activation_msg: Message,
    horizon: int,
) -> int:
    """When a pristine identity would first transmit if activated now.

    Clones the (never-activated) sandbox, activates it with the given
    message, and scans forward feeding silence.  Returns ``horizon + 1``
    when the identity stays silent throughout — the most valuable pivot
    reservation of all.
    """
    probe = pristine.clone()
    probe.activate(activation_round)
    probe.feed_message(activation_round, activation_msg)
    for r in range(activation_round + 1, activation_round + horizon + 1):
        if probe.would_send(r) is not None:
            return r
        probe.feed_silence(r)
    return activation_round + horizon + 1


def theorem11_lower_bound(
    algorithm_factory: AlgorithmFactory,
    layout: Optional[PivotLayersLayout] = None,
    n: Optional[int] = None,
    max_rounds: int = 0,
    scoring_horizon: int = 0,
) -> Theorem11Result:
    """Compute the adversarial broadcast time on the pivot-layer network.

    Exactly one of ``layout`` or ``n`` must be given; with ``n`` a
    ``√n × √n`` layout is built.

    Args:
        algorithm_factory: Builds the deterministic processes (uids
            ``0..n−1``).
        layout: The network layout to use.
        n: Approximate node count for an auto-built layout.
        max_rounds: Safety cap (default ``64·n^{3/2} + 1024``).
        scoring_horizon: How far ahead the layer-population greedy looks
            when scoring identities (default ``8·n + 256``).
    """
    if (layout is None) == (n is None):
        raise ValueError("give exactly one of layout / n")
    if layout is None:
        assert n is not None
        width = max(1, math.isqrt(n))
        num_layers = max(2, (n - 1) // width + 1)
        layout = pivot_layers(num_layers, width)
    total_n = layout.graph.n
    if max_rounds <= 0:
        max_rounds = int(64 * total_n**1.5) + 1024
    if scoring_horizon <= 0:
        scoring_horizon = 8 * total_n + 256

    processes = list(algorithm_factory(total_n))
    if sorted(p.uid for p in processes) != list(range(total_n)):
        raise ValueError("factory must produce uids 0..n-1")
    sandboxes = {
        p.uid: SandboxProcess(p, total_n, _PAYLOAD) for p in processes
    }

    result = Theorem11Result(
        n=total_n,
        num_layers=layout.num_layers,
        width=layout.width,
        activation_rounds=[0],
        layer_uids=[[0]],
        pivot_uids=[],  # filled per layer as its pivot is committed
    )

    # Asynchronous start: the source activates at round 0 with the payload.
    sandboxes[0].activate(0)
    sandboxes[0].give_broadcast_input()
    active: List[int] = [0]
    layer_of_uid: Dict[int, int] = {0: 0}
    pool = set(range(1, total_n))  # identities not yet placed in a layer
    #: committed pivot identity per layer (index k covers layer k; the
    #: frontier layer's pivot is committed when its last identity is
    #: isolated).
    committed_pivots: List[int] = []
    rnd = 0

    def populate_layer(k: int, t: int, activation_msg: Message) -> List[int]:
        """Adversarially choose which pool identities form layer ``k``.

        Greedy: score each remaining identity by how late it would first
        transmit if activated now; reserve the latest as the layer's
        pivot-to-be and fill the rest with the earliest (saving other
        late identities for later layers).
        """
        want = len(layout.layers[k])
        scores = {
            uid: _first_send_after(
                sandboxes[uid], t, activation_msg, scoring_horizon
            )
            for uid in pool
        }
        by_score = sorted(pool, key=lambda u: (scores[u], u))
        pivot_uid = by_score[-1]
        chosen = by_score[: want - 1]
        if pivot_uid in chosen:  # only when the pool barely covers the layer
            chosen = [u for u in by_score if u != pivot_uid][: want - 1]
        members = chosen + [pivot_uid]
        for uid in members:
            pool.discard(uid)
        return members

    for k in range(layout.num_layers - 1):
        layer_ids = result.layer_uids[k]
        # Identities of layer k still awaiting their first lone send.
        pending = set(layer_ids)
        last_lone_uid: Optional[int] = None
        last_lone_msg: Optional[Message] = None
        while pending:
            rnd += 1
            if rnd > max_rounds:
                result.completed = False
                return result
            senders = {
                uid: m
                for uid in active
                if (m := sandboxes[uid].would_send(rnd)) is not None
            }
            # Unavoidable reliable deliveries: a committed pivot of layer
            # j < k that transmits without any concurrent sender in layers
            # ≤ j (only those hold blanket edges into layer j+1) delivers
            # its message to the (already informed) layer j+1.
            delivered: Dict[int, Message] = {}
            for j, pivot_uid in enumerate(committed_pivots):
                if pivot_uid not in senders:
                    continue
                blocked = any(
                    layer_of_uid[w] <= j
                    for w in senders
                    if w != pivot_uid
                )
                if blocked:
                    continue
                for uid in result.layer_uids[j + 1]:
                    delivered[uid] = senders[pivot_uid]
            # Feed observations: a sender hears its own message (CR4);
            # reliable deliveries arrive as computed; all else is
            # adversarial silence.
            for uid in active:
                if uid in senders:
                    sandboxes[uid].feed_message(rnd, senders[uid])
                elif uid in delivered:
                    sandboxes[uid].feed_message(rnd, delivered[uid])
                else:
                    sandboxes[uid].feed_silence(rnd)
            if len(senders) == 1:
                lone_uid = next(iter(senders))
                if lone_uid in pending:
                    pending.discard(lone_uid)
                    last_lone_uid = lone_uid
                    last_lone_msg = senders[lone_uid]
        # The adversary placed `last_lone_uid` at the pivot: progress
        # happens only now, at round `rnd`.
        assert last_lone_uid is not None and last_lone_msg is not None
        committed_pivots.append(last_lone_uid)
        result.pivot_uids.append(last_lone_uid)
        result.activation_rounds.append(rnd)
        # Adversarially populate and activate the next layer.
        members = populate_layer(k + 1, rnd, last_lone_msg)
        result.layer_uids.append(members)
        for uid in members:
            sandboxes[uid].activate(rnd)
            sandboxes[uid].feed_message(rnd, last_lone_msg)
            active.append(uid)
            layer_of_uid[uid] = k + 1

    result.completed = True
    return result


def worst_case_proc_mapping(
    layout: PivotLayersLayout, result: Theorem11Result
) -> Dict[int, int]:
    """The node → uid mapping realising the computed worst case."""
    mapping: Dict[int, int] = {0: 0}
    for k in range(1, layout.num_layers):
        layer_nodes = list(layout.layers[k])
        ids = list(result.layer_uids[k])
        if k < len(result.pivot_uids):
            pivot_uid = result.pivot_uids[k]
        else:
            # The last layer has no outgoing pivot; any placement works.
            pivot_uid = ids[-1]
        ids.remove(pivot_uid)
        mapping[layer_nodes[0]] = pivot_uid  # pivot node is first in layer
        for node, uid in zip(layer_nodes[1:], ids):
            mapping[node] = uid
    return mapping


class _MappedPivotAdversary(PivotAdversary):
    """PivotAdversary that also installs a fixed proc mapping."""

    def __init__(self, layout: PivotLayersLayout, mapping: Dict[int, int]):
        super().__init__(layout)
        self._mapping = mapping

    def assign_processes(self, network, uids):
        if sorted(self._mapping.values()) != sorted(uids):
            raise ValueError("mapping does not cover the uid set")
        return dict(self._mapping)


def verify_with_engine(
    algorithm_factory: AlgorithmFactory,
    layout: PivotLayersLayout,
    result: Theorem11Result,
    max_rounds: int = 0,
) -> ExecutionTrace:
    """Replay the computed worst case in the real engine.

    Runs the algorithm on the actual network under the runtime
    :class:`PivotAdversary` with the worst-case ``proc`` mapping and
    returns the trace; callers assert the trace's completion round equals
    ``result.total_rounds``.
    """
    if not result.completed:
        raise ValueError("cannot verify an incomplete result")
    total = result.total_rounds
    assert total is not None
    if max_rounds <= 0:
        max_rounds = total + 16
    processes = list(algorithm_factory(layout.graph.n))
    adversary = _MappedPivotAdversary(
        layout, worst_case_proc_mapping(layout, result)
    )
    config = EngineConfig(
        collision_rule=CollisionRule.CR4,
        start_mode=StartMode.ASYNCHRONOUS,
        max_rounds=max_rounds,
        seed=0,
    )
    engine = BroadcastEngine(layout.graph, processes, adversary, config)
    return engine.run()
