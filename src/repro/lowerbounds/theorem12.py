"""Theorem 12: the ``Ω(n log n)`` lower bound for undirected networks.

The network is :func:`~repro.graphs.constructions.layered_pairs`: a
complete layered graph with two nodes per layer and a complete ``G'``.
The proof builds an adversarial execution in stages.  Stage ``k+1``
assigns two process identities to layer ``L_{k+1}`` and extends the
execution; a candidate-set argument (Claim 13) guarantees the stage lasts
at least ``log(n−1) − 2`` rounds, and there are ``(n−1)/4`` stages, giving
``Ω(n log n)`` total.

This module is the *executable* version of that argument, driven against
a concrete deterministic algorithm.  Per stage it maintains, for every
unassigned identity, two sandboxed automaton copies:

* the **assigned** copy — the identity's state if the stage's round-0
  message had reached it (it is one of the layer's two nodes), and
* the **unassigned** copy — its state if not.

Part 2 of the proof's invariant ``P(ℓ)`` guarantees the observations fed
to each copy are independent of which pair is eventually chosen, so one
copy per perspective suffices.  Each round the driver computes

* ``S`` — candidates that would send if assigned,
* ``N`` — candidates that would send if unassigned,
* background senders (previously removed identities and ``A_k`` members),

applies the proof's Case I/II/III shrinkage to the candidate set, feeds
everyone the case-determined observation (``⊤`` / ``⊥`` / the lone
message delivered per the adversary rules), and repeats until two
candidates remain.  The chosen pair's assigned copies become canonical;
the stage then continues under the adversary rules until one of the pair
is *about to be isolated* (would next send alone), which seeds the next
stage's round 0.

Collision rule CR1, synchronous start — the strongest setting, as in the
paper, which makes the lower bound strongest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.lowerbounds.sandbox import SandboxProcess
from repro.sim.messages import Message
from repro.sim.process import Process

#: Factory building the n deterministic processes of the algorithm.
AlgorithmFactory = Callable[[int], Sequence[Process]]

_PAYLOAD = "thm12-broadcast-payload"


class ConstructionError(RuntimeError):
    """Raised when the construction cannot proceed (e.g. the algorithm
    never isolates the required process within the cap — which itself
    means the algorithm failed to broadcast)."""


@dataclass(frozen=True)
class StageRecord:
    """One stage of the construction.

    Attributes:
        index: 1-based stage number (stage 0 is the preamble ``α_0``).
        pair: The two identities assigned to this stage's layer.
        construction_rounds: Rounds spent in the candidate-set phase (the
            proof guarantees ``≥ log₂(n−1) − 2`` while enough candidates
            remain).
        continuation_rounds: Rounds from pair choice until one of the pair
            was about to be isolated.
        start_round: Global round at which the stage's round 0 happened.
    """

    index: int
    pair: Tuple[int, int]
    construction_rounds: int
    continuation_rounds: int
    start_round: int

    @property
    def total_rounds(self) -> int:
        """Rounds contributed by the stage (including its round 0)."""
        return 1 + self.construction_rounds + self.continuation_rounds


@dataclass
class Theorem12Result:
    """Outcome of the executable Theorem-12 construction.

    Attributes:
        n: Number of identities (and nodes).
        preamble_rounds: Length of ``α_0``.
        stages: Per-stage records.
        total_rounds: Length of the constructed execution during which at
            least one process is missing the message.
        informed: Identities holding the payload at the end.
    """

    n: int
    preamble_rounds: int
    stages: List[StageRecord] = field(default_factory=list)
    total_rounds: int = 0
    informed: Set[int] = field(default_factory=set)

    @property
    def paper_stage_guarantee(self) -> float:
        """The per-stage round guarantee ``log₂(n−1) − 2``."""
        return math.log2(self.n - 1) - 2

    @property
    def paper_total_guarantee(self) -> float:
        """The headline ``Ω(n log n)`` witness: ``(n−1)/4`` stages of
        ``log₂(n−1) − 2`` rounds each."""
        return max(0.0, (self.n - 1) / 4 * self.paper_stage_guarantee)

    @property
    def min_early_stage_rounds(self) -> Optional[int]:
        """Fewest construction rounds among the first ``(n−1)/4`` stages."""
        limit = max(1, (self.n - 1) // 4)
        early = self.stages[:limit]
        if not early:
            return None
        return min(s.construction_rounds for s in early)


class _Theorem12Driver:
    """Internal state machine executing the construction."""

    def __init__(
        self,
        algorithm_factory: AlgorithmFactory,
        n: int,
        stage_cap: int,
        max_stages: Optional[int],
    ) -> None:
        if n < 5 or (n - 1) & (n - 2):
            # The paper assumes n-1 is a power of two >= 4; we accept any
            # n >= 5 but note the guarantee is cleanest at those sizes.
            pass
        if n < 5:
            raise ValueError("theorem 12 construction needs n >= 5")
        processes = list(algorithm_factory(n))
        if sorted(p.uid for p in processes) != list(range(n)):
            raise ValueError("factory must produce uids 0..n-1")
        self.n = n
        self.stage_cap = stage_cap
        self.max_stages = max_stages
        # Canonical sandbox per identity; synchronous start.
        self.sandbox: Dict[int, SandboxProcess] = {
            p.uid: SandboxProcess(p, n, _PAYLOAD) for p in processes
        }
        for sb in self.sandbox.values():
            sb.activate(0)
        self.sandbox[0].give_broadcast_input()
        self.assigned_ids: List[int] = [0]  # A_k (source id = 0)
        self.round = 0
        self.result = Theorem12Result(n=n, preamble_rounds=0, informed={0})

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _query_all(
        self, uids: Sequence[int], rnd: int
    ) -> Dict[int, Message]:
        out: Dict[int, Message] = {}
        for uid in uids:
            msg = self.sandbox[uid].would_send(rnd)
            if msg is not None:
                out[uid] = msg
        return out

    def _feed_all_collision(self, rnd: int, extra=()) -> None:
        for sb in self.sandbox.values():
            sb.feed_collision(rnd)
        for sb in extra:
            sb.feed_collision(rnd)

    def _feed_all_silence(self, rnd: int, extra=()) -> None:
        for sb in self.sandbox.values():
            sb.feed_silence(rnd)
        for sb in extra:
            sb.feed_silence(rnd)

    def _feed_all_message(self, rnd: int, msg: Message, extra=()) -> None:
        for sb in self.sandbox.values():
            sb.feed_message(rnd, msg)
        for sb in extra:
            sb.feed_message(rnd, msg)

    # ------------------------------------------------------------------
    # Stage 0: the preamble α₀
    # ------------------------------------------------------------------
    def run_preamble(self) -> None:
        """All ``G'`` edges used every round, until the source is about to
        be isolated (would send alone next round)."""
        everyone = sorted(self.sandbox)
        while True:
            rnd = self.round + 1
            senders = self._query_all(everyone, rnd)
            if set(senders) == {0}:
                break  # source about to be isolated: α₀ ends here
            if rnd > self.stage_cap:
                raise ConstructionError(
                    f"source never about to be isolated within "
                    f"{self.stage_cap} rounds; the algorithm cannot "
                    f"broadcast on this network at all"
                )
            self.round = rnd
            if not senders:
                self._feed_all_silence(rnd)
            elif len(senders) == 1:
                (msg,) = senders.values()
                self._feed_all_message(rnd, msg)
            else:
                self._feed_all_collision(rnd)
        self.result.preamble_rounds = self.round

    # ------------------------------------------------------------------
    # One stage
    # ------------------------------------------------------------------
    def run_stage(self, stage_index: int) -> bool:
        """Execute stage ``stage_index``; returns False when no further
        stage is possible (fewer than two unassigned identities)."""
        candidates = sorted(set(range(self.n)) - set(self.assigned_ids))
        if len(candidates) < 2:
            return False
        unassigned_ids = list(candidates)

        # --- Round 0: the pending lone A_k sender transmits; the message
        # reaches exactly A_k ∪ {i, i'}.
        rnd0 = self.round + 1
        senders = self._query_all(sorted(self.sandbox), rnd0)
        if len(senders) != 1 or next(iter(senders)) not in self.assigned_ids:
            raise ConstructionError(
                f"stage {stage_index}: expected a lone A_k sender at its "
                f"round 0, got senders {sorted(senders)}"
            )
        (j0, msg0) = next(iter(senders.items()))
        self.round = rnd0
        start_round = rnd0

        assigned_copies: Dict[int, SandboxProcess] = {
            i: self.sandbox[i].clone() for i in candidates
        }
        for i, copy_ in assigned_copies.items():
            copy_.feed_message(rnd0, msg0)  # assigned: informed in round 0
        for uid in unassigned_ids:
            self.sandbox[uid].feed_silence(rnd0)  # unassigned: hears ⊥
        for a in self.assigned_ids:
            self.sandbox[a].feed_message(rnd0, msg0)

        # --- Candidate-set construction phase.
        C: Set[int] = set(candidates)
        construction_rounds = 0
        while len(C) > 2 and construction_rounds < self.stage_cap:
            rnd = self.round + 1
            a_send = self._query_all(self.assigned_ids, rnd)
            u_send = self._query_all(unassigned_ids, rnd)
            s_send = {
                i: m
                for i in sorted(C)
                if (m := assigned_copies[i].would_send(rnd)) is not None
            }
            N = set(u_send) & C
            background = set(u_send) - C

            if len(N) >= 2:
                # Case I: two unassigned candidates will send; keep them
                # unassigned, forcing a collision everyone observes.
                removed = sorted(N)[:2]
                C_next = C - set(removed)
                outcome = ("collision", None)
            elif len(s_send) >= len(C) / 2:
                # Case II: at least half would send if assigned; keep only
                # those, so the eventual pair collides with itself.
                C_next = set(s_send)
                outcome = ("collision", None)
            else:
                # Case III: survivors send in neither perspective.
                C_next = C - set(s_send) - N
                actual = dict(a_send)
                for uid in background | N:
                    actual[uid] = u_send[uid]
                if not actual:
                    outcome = ("silence", None)
                elif len(actual) >= 2:
                    outcome = ("collision", None)
                else:
                    (lone_uid, lone_msg) = next(iter(actual.items()))
                    if lone_uid in self.assigned_ids:
                        outcome = ("ak-message", lone_msg)
                    else:
                        outcome = ("global-message", lone_msg)

            if len(C_next) < 2:
                break  # do not commit this round; choose the pair now

            # Commit the round.
            self.round = rnd
            construction_rounds += 1
            C = C_next
            for i in list(assigned_copies):
                if i not in C:
                    del assigned_copies[i]

            kind, lone_msg = outcome
            if kind == "collision":
                self._feed_all_collision(rnd, extra=assigned_copies.values())
            elif kind == "silence":
                self._feed_all_silence(rnd, extra=assigned_copies.values())
            elif kind == "global-message":
                assert lone_msg is not None
                self._feed_all_message(
                    rnd, lone_msg, extra=assigned_copies.values()
                )
            else:  # "ak-message": reaches exactly A_k ∪ {i, i'}
                assert lone_msg is not None
                for a in self.assigned_ids:
                    self.sandbox[a].feed_message(rnd, lone_msg)
                for uid in unassigned_ids:
                    self.sandbox[uid].feed_silence(rnd)
                for copy_ in assigned_copies.values():
                    copy_.feed_message(rnd, lone_msg)

        # --- Choose the pair and make its assigned copies canonical.
        pair = tuple(sorted(C)[:2])
        for uid in pair:
            self.sandbox[uid] = assigned_copies[uid]
        self.result.informed.update(pair)
        pair_set = set(pair)
        a_union_pair = set(self.assigned_ids) | pair_set

        # --- Continuation: adversary rules until one of the pair is about
        # to be isolated.
        continuation = 0
        everyone = sorted(self.sandbox)
        while True:
            rnd = self.round + 1
            senders = self._query_all(everyone, rnd)
            if len(senders) == 1 and next(iter(senders)) in pair_set:
                break  # about to be isolated: stage ends, next round 0
            if continuation >= self.stage_cap:
                raise ConstructionError(
                    f"stage {stage_index}: neither of pair {pair} about to "
                    f"be isolated within {self.stage_cap} rounds; the "
                    f"algorithm never informs the next layer"
                )
            self.round = rnd
            continuation += 1
            if not senders:
                self._feed_all_silence(rnd)
            elif len(senders) >= 2:
                self._feed_all_collision(rnd)
            else:
                (lone_uid, lone_msg) = next(iter(senders.items()))
                if lone_uid in self.assigned_ids:
                    # Rule 2: reaches exactly A_k ∪ {i, i'}.
                    for uid in everyone:
                        if uid in a_union_pair:
                            self.sandbox[uid].feed_message(rnd, lone_msg)
                        else:
                            self.sandbox[uid].feed_silence(rnd)
                else:
                    # Rule 3: a lone unassigned sender reaches everyone.
                    self._feed_all_message(rnd, lone_msg)

        self.assigned_ids.extend(pair)
        self.result.stages.append(
            StageRecord(
                index=stage_index,
                pair=pair,  # type: ignore[arg-type]
                construction_rounds=construction_rounds,
                continuation_rounds=continuation,
                start_round=start_round,
            )
        )
        return True

    def run(self) -> Theorem12Result:
        self.run_preamble()
        stage = 1
        while self.max_stages is None or stage <= self.max_stages:
            # Keep at least one identity forever uninformed so every
            # constructed round is certified "broadcast incomplete".
            if len(self.assigned_ids) + 2 >= self.n:
                break
            if not self.run_stage(stage):
                break
            stage += 1
        self.result.total_rounds = self.round
        return self.result


def theorem12_construction(
    algorithm_factory: AlgorithmFactory,
    n: int,
    stage_cap: int = 0,
    max_stages: Optional[int] = None,
) -> Theorem12Result:
    """Run the Theorem-12 adversarial construction against an algorithm.

    Args:
        algorithm_factory: Builds ``n`` *deterministic* processes with
            uids ``0..n−1`` (randomized automata are outside the theorem's
            scope and break the construction's determinism assumption).
        n: Number of identities; the paper's layered-pairs network has the
            same count of nodes (odd ``n``, and the per-stage guarantee is
            cleanest when ``n − 1`` is a power of two).
        stage_cap: Safety cap on rounds per phase (default ``8n + 64``).
        max_stages: Stop after this many stages (default: run until fewer
            than two unassigned identities remain).

    Returns:
        The constructed execution's statistics; ``total_rounds`` is a
        certified number of rounds during which broadcast was incomplete.
    """
    if stage_cap <= 0:
        stage_cap = 8 * n + 64
    driver = _Theorem12Driver(algorithm_factory, n, stage_cap, max_stages)
    return driver.run()
