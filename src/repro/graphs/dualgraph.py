"""The dual graph network structure ``(G, G')`` from Section 2.1.

A dual graph network over ``n`` nodes is a pair of directed graphs
``G = (V, E)`` and ``G' = (V, E')`` with ``E ⊆ E'``:

* ``E`` is the set of *reliable* links — a transmission always reaches all
  reliable out-neighbours of the sender.
* ``E' \\ E`` is the set of *unreliable* links — each round, a worst-case
  adversary chooses which of a sender's unreliable out-neighbours the
  transmission additionally reaches.

The model requires a distinguished source node from which every node is
reachable in ``G``.  A network is *undirected* when both edge sets are
symmetric.  The classical static radio model is the special case
``G = G'``.

Nodes are the integers ``0 .. n-1``; by convention the source is node ``0``
unless stated otherwise.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

Edge = Tuple[int, int]


class DualGraphError(ValueError):
    """Raised when a dual graph violates a model invariant."""


class DualGraph:
    """An immutable dual graph network ``(G, G')``.

    Args:
        n: Number of nodes; nodes are ``0 .. n-1``.
        reliable_edges: Directed edges of ``G``.  For undirected networks
            supply each edge in one direction and pass ``undirected=True``,
            or supply both directions explicitly.
        all_edges: Directed edges of ``G'``.  Must be a superset of the
            reliable edges (this is validated).  Self-loops are rejected;
            the model's "a sender hears itself" behaviour is part of the
            collision rules, not the graph.
        source: The distinguished source node (default 0).
        undirected: If true, both edge sets are symmetrised and the network
            is flagged undirected.
        name: Optional human-readable label used in traces and reports.

    Raises:
        DualGraphError: If ``E ⊄ E'``, an endpoint is out of range, a
            self-loop is present, or some node is unreachable from the
            source in ``G``.
    """

    __slots__ = (
        "_n",
        "_source",
        "_name",
        "_undirected",
        "_reliable_out",
        "_all_out",
        "_unreliable_only_out",
        "_reliable_in",
        "_all_in",
        "_distances",
    )

    def __init__(
        self,
        n: int,
        reliable_edges: Iterable[Edge],
        all_edges: Optional[Iterable[Edge]] = None,
        source: int = 0,
        undirected: bool = False,
        name: str = "",
    ) -> None:
        if n < 1:
            raise DualGraphError(f"need at least one node, got n={n}")
        if not 0 <= source < n:
            raise DualGraphError(f"source {source} out of range for n={n}")
        self._n = n
        self._source = source
        self._name = name or f"dual-graph(n={n})"
        self._undirected = undirected

        reliable = self._normalize(reliable_edges, undirected)
        if all_edges is None:
            union = set(reliable)
        else:
            union = self._normalize(all_edges, undirected)
        missing = reliable - union
        if missing:
            raise DualGraphError(
                f"reliable edges must be a subset of all edges; "
                f"missing from E': {sorted(missing)[:5]}"
            )

        self._reliable_out = self._adjacency(reliable, outgoing=True)
        self._all_out = self._adjacency(union, outgoing=True)
        self._reliable_in = self._adjacency(reliable, outgoing=False)
        self._all_in = self._adjacency(union, outgoing=False)
        self._unreliable_only_out = tuple(
            self._all_out[v] - self._reliable_out[v] for v in range(n)
        )

        self._distances = self._bfs_distances(self._reliable_out, source)
        unreachable = [v for v, d in enumerate(self._distances) if d is None]
        if unreachable:
            raise DualGraphError(
                f"nodes {unreachable[:5]} unreachable from source "
                f"{source} in the reliable graph G"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _normalize(
        self, edges: Iterable[Edge], undirected: bool
    ) -> FrozenSet[Edge]:
        out = set()
        for u, v in edges:
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise DualGraphError(f"edge ({u}, {v}) out of range")
            if u == v:
                raise DualGraphError(f"self-loop ({u}, {v}) not allowed")
            out.add((u, v))
            if undirected:
                out.add((v, u))
        return frozenset(out)

    def _adjacency(
        self, edges: FrozenSet[Edge], outgoing: bool
    ) -> Tuple[FrozenSet[int], ...]:
        adj: List[set] = [set() for _ in range(self._n)]
        for u, v in edges:
            if outgoing:
                adj[u].add(v)
            else:
                adj[v].add(u)
        return tuple(frozenset(s) for s in adj)

    @staticmethod
    def _bfs_distances(
        out_adj: Sequence[FrozenSet[int]], start: int
    ) -> Tuple[Optional[int], ...]:
        dist: List[Optional[int]] = [None] * len(out_adj)
        dist[start] = 0
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in out_adj[u]:
                if dist[v] is None:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return tuple(dist)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def source(self) -> int:
        """The distinguished source node."""
        return self._source

    @property
    def name(self) -> str:
        """Human-readable label."""
        return self._name

    @property
    def nodes(self) -> range:
        """All nodes, ``0 .. n-1``."""
        return range(self._n)

    @property
    def is_undirected(self) -> bool:
        """Whether both edge sets are symmetric."""
        if self._undirected:
            return True
        return self._symmetric(self._reliable_out) and self._symmetric(
            self._all_out
        )

    @staticmethod
    def _symmetric(adj: Sequence[FrozenSet[int]]) -> bool:
        return all(u in adj[v] for u in range(len(adj)) for v in adj[u])

    @property
    def is_classical(self) -> bool:
        """Whether ``G = G'`` (the classical static radio model)."""
        return all(not extra for extra in self._unreliable_only_out)

    # ------------------------------------------------------------------
    # Neighbourhoods
    # ------------------------------------------------------------------
    def reliable_out(self, v: int) -> FrozenSet[int]:
        """Out-neighbours of ``v`` in the reliable graph ``G``."""
        return self._reliable_out[v]

    def all_out(self, v: int) -> FrozenSet[int]:
        """Out-neighbours of ``v`` in ``G'`` (reliable and unreliable)."""
        return self._all_out[v]

    def unreliable_only_out(self, v: int) -> FrozenSet[int]:
        """Out-neighbours of ``v`` reachable only via unreliable links."""
        return self._unreliable_only_out[v]

    def reliable_in(self, v: int) -> FrozenSet[int]:
        """In-neighbours of ``v`` in ``G``."""
        return self._reliable_in[v]

    def all_in(self, v: int) -> FrozenSet[int]:
        """In-neighbours of ``v`` in ``G'``."""
        return self._all_in[v]

    def reliable_edges(self) -> FrozenSet[Edge]:
        """All directed edges of ``G``."""
        return frozenset(
            (u, v) for u in self.nodes for v in self._reliable_out[u]
        )

    def all_edges(self) -> FrozenSet[Edge]:
        """All directed edges of ``G'``."""
        return frozenset((u, v) for u in self.nodes for v in self._all_out[u])

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def distance_from_source(self, v: int) -> int:
        """Hop distance from the source to ``v`` in ``G``."""
        d = self._distances[v]
        assert d is not None  # construction validated reachability
        return d

    @property
    def source_eccentricity(self) -> int:
        """Maximum ``G``-distance from the source to any node.

        A lower bound on ``k`` for ``k``-broadcastability (Section 3 notes
        that the source-to-node distance in ``G`` bounds ``k`` from below).
        """
        return max(self.distance_from_source(v) for v in self.nodes)

    def max_in_degree(self) -> int:
        """Maximum in-degree in ``G'`` (the ``Δ`` of the dynamic-fault
        algorithm of Clementi et al. discussed in Section 2.2)."""
        return max(len(self._all_in[v]) for v in self.nodes)

    # ------------------------------------------------------------------
    # Derived networks
    # ------------------------------------------------------------------
    def classical_projection(self) -> "DualGraph":
        """The classical network using only the reliable edges (``G = G'``)."""
        return DualGraph(
            self._n,
            self.reliable_edges(),
            source=self._source,
            name=f"{self._name}|classical-G",
        )

    def classical_union(self) -> "DualGraph":
        """The classical network in which every ``G'`` edge is reliable."""
        return DualGraph(
            self._n,
            self.all_edges(),
            source=self._source,
            name=f"{self._name}|classical-G'",
        )

    def relabeled(self, mapping: Dict[int, int], name: str = "") -> "DualGraph":
        """Return an isomorphic copy with nodes renamed by ``mapping``.

        ``mapping`` must be a bijection on ``0..n-1``.  The source moves
        with the relabeling.
        """
        if sorted(mapping) != list(range(self._n)) or sorted(
            mapping.values()
        ) != list(range(self._n)):
            raise DualGraphError("mapping must be a bijection on the nodes")
        rel = [(mapping[u], mapping[v]) for (u, v) in self.reliable_edges()]
        alle = [(mapping[u], mapping[v]) for (u, v) in self.all_edges()]
        return DualGraph(
            self._n,
            rel,
            alle,
            source=mapping[self._source],
            name=name or f"{self._name}|relabeled",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DualGraph(name={self._name!r}, n={self._n}, "
            f"|E|={len(self.reliable_edges())}, |E'|={len(self.all_edges())})"
        )
