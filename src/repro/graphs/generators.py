"""Standard dual graph topologies.

These generators cover the workloads used throughout the paper's discussion
and our benchmarks: classical graphs (``G = G'``), their "noisy" dual
variants, and the usual structural families (lines, rings, cliques, stars,
grids, layered graphs, random trees).

Every generator returns a validated :class:`~repro.graphs.dualgraph.DualGraph`
with source node 0 unless documented otherwise.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, List, Optional, Sequence

from repro.graphs.dualgraph import DualGraph, Edge


def line(n: int, extra_edges: Iterable[Edge] = ()) -> DualGraph:
    """An undirected path ``0 - 1 - ... - n-1`` with optional ``G'`` extras.

    The line maximises diameter; in the classical model round robin needs
    ``Θ(n)`` rounds here, giving the Table-1 classical baseline row.
    """
    reliable = [(i, i + 1) for i in range(n - 1)]
    all_edges = list(reliable) + list(extra_edges)
    return DualGraph(
        n, reliable, all_edges, undirected=True, name=f"line(n={n})"
    )


def ring(n: int, extra_edges: Iterable[Edge] = ()) -> DualGraph:
    """An undirected cycle over ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("ring needs n >= 3")
    reliable = [(i, (i + 1) % n) for i in range(n)]
    all_edges = list(reliable) + list(extra_edges)
    return DualGraph(
        n, reliable, all_edges, undirected=True, name=f"ring(n={n})"
    )


def clique(n: int) -> DualGraph:
    """The undirected complete graph (diameter 1, classical)."""
    reliable = list(itertools.combinations(range(n), 2))
    return DualGraph(n, reliable, undirected=True, name=f"clique(n={n})")


def star(n: int, center: int = 0) -> DualGraph:
    """An undirected star with the given center (also the source)."""
    reliable = [(center, v) for v in range(n) if v != center]
    return DualGraph(
        n, reliable, source=center, undirected=True, name=f"star(n={n})"
    )


def grid(rows: int, cols: int) -> DualGraph:
    """An undirected ``rows × cols`` grid; source at the top-left corner."""
    n = rows * cols

    def node(r: int, c: int) -> int:
        return r * cols + c

    reliable: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                reliable.append((node(r, c), node(r, c + 1)))
            if r + 1 < rows:
                reliable.append((node(r, c), node(r + 1, c)))
    return DualGraph(
        n, reliable, undirected=True, name=f"grid({rows}x{cols})"
    )


def random_tree(n: int, seed: int = 0) -> DualGraph:
    """A uniform random recursive tree rooted at the source."""
    rng = random.Random(seed)
    reliable = [(rng.randrange(v), v) for v in range(1, n)]
    return DualGraph(
        n, reliable, undirected=True, name=f"random-tree(n={n},seed={seed})"
    )


def layered(
    layer_sizes: Sequence[int],
    complete_within: bool = True,
    name: str = "",
) -> DualGraph:
    """An undirected layered graph with complete inter-layer bipartite links.

    Layer 0 must have size 1 (the source).  Consecutive layers are fully
    connected; within a layer, nodes form a clique when ``complete_within``.
    This is the scaffolding for the Theorem-12 construction and for the
    "layered network" intuition in Section 7's analysis.
    """
    if not layer_sizes or layer_sizes[0] != 1:
        raise ValueError("layer_sizes must start with a singleton source layer")
    boundaries = [0]
    for size in layer_sizes:
        if size < 1:
            raise ValueError("layer sizes must be positive")
        boundaries.append(boundaries[-1] + size)
    n = boundaries[-1]
    layers = [
        list(range(boundaries[i], boundaries[i + 1]))
        for i in range(len(layer_sizes))
    ]
    reliable: List[Edge] = []
    for layer in layers:
        if complete_within:
            reliable.extend(itertools.combinations(layer, 2))
    for a, b in zip(layers, layers[1:]):
        reliable.extend(itertools.product(a, b))
    return DualGraph(
        n,
        reliable,
        undirected=True,
        name=name or f"layered(sizes={list(layer_sizes)})",
    )


def with_complete_unreliable(graph: DualGraph, name: str = "") -> DualGraph:
    """Extend a network so that ``G'`` is the complete graph.

    This is the canonical "maximally unreliable" dual of a classical graph:
    the reliable topology is preserved while the adversary gains every
    possible interference edge.  Both Theorem 2 and Theorem 12 use a
    complete ``G'``.
    """
    n = graph.n
    all_edges = [(u, v) for u in range(n) for v in range(n) if u != v]
    return DualGraph(
        n,
        graph.reliable_edges(),
        all_edges,
        source=graph.source,
        name=name or f"{graph.name}+complete-G'",
    )


def directed_layered(
    layer_sizes: Sequence[int],
    complete_unreliable: bool = False,
    name: str = "",
) -> DualGraph:
    """A directed layered graph: edges point from layer ``k`` to ``k+1``.

    Useful for directed-model experiments where receivers cannot give
    feedback to senders (the situation exploited by the Theorem-11 bound).
    """
    if not layer_sizes or layer_sizes[0] != 1:
        raise ValueError("layer_sizes must start with a singleton source layer")
    boundaries = [0]
    for size in layer_sizes:
        boundaries.append(boundaries[-1] + size)
    n = boundaries[-1]
    layers = [
        list(range(boundaries[i], boundaries[i + 1]))
        for i in range(len(layer_sizes))
    ]
    reliable: List[Edge] = []
    for a, b in zip(layers, layers[1:]):
        reliable.extend(itertools.product(a, b))
    if complete_unreliable:
        all_edges: Optional[List[Edge]] = [
            (u, v) for u in range(n) for v in range(n) if u != v
        ]
    else:
        all_edges = None
    return DualGraph(
        n,
        reliable,
        all_edges,
        name=name or f"directed-layered(sizes={list(layer_sizes)})",
    )
