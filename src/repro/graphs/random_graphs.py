"""Random and geometric dual graph generators.

Two families:

* :func:`gnp_dual` — an Erdős–Rényi-style dual: a random connected reliable
  graph plus independently sampled extra unreliable edges.
* :func:`gray_zone` — a unit-disk-style geometric dual capturing the *gray
  zone* phenomenon the paper cites as motivation ([24] Lundgren et al.):
  nodes within a short radius share reliable links; nodes in an annulus
  beyond it share unreliable links that sometimes deliver and sometimes do
  not.  This is the "realistic" workload for our example applications.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import List, Optional, Tuple

from repro.graphs.dualgraph import DualGraph, DualGraphError, Edge


def _spanning_tree_edges(n: int, rng: random.Random) -> List[Edge]:
    """A random recursive spanning tree over ``0..n-1`` rooted at 0."""
    return [(rng.randrange(v), v) for v in range(1, n)]


def gnp_dual(
    n: int,
    p_reliable: float = 0.1,
    p_unreliable: float = 0.2,
    seed: int = 0,
    source: int = 0,
) -> DualGraph:
    """A random undirected dual graph.

    The reliable graph is a random spanning tree (guaranteeing the model's
    reachability requirement) plus each remaining pair independently with
    probability ``p_reliable``.  Every non-reliable pair independently
    becomes an unreliable edge with probability ``p_unreliable``.

    Args:
        n: Number of nodes.
        p_reliable: Density of extra reliable edges.
        p_unreliable: Density of unreliable (``G' \\ G``) edges.
        seed: PRNG seed; the construction is deterministic given the seed.
        source: The source node.
    """
    if n < 2:
        raise ValueError("gnp_dual needs n >= 2")
    if not (0.0 <= p_reliable <= 1.0 and 0.0 <= p_unreliable <= 1.0):
        raise ValueError("probabilities must lie in [0, 1]")
    rng = random.Random(seed)
    reliable = set()
    for u, v in _spanning_tree_edges(n, rng):
        reliable.add((min(u, v), max(u, v)))
    unreliable = set()
    for u, v in itertools.combinations(range(n), 2):
        if (u, v) in reliable:
            continue
        if rng.random() < p_reliable:
            reliable.add((u, v))
        elif rng.random() < p_unreliable:
            unreliable.add((u, v))
    all_edges = reliable | unreliable
    return DualGraph(
        n,
        reliable,
        all_edges,
        source=source,
        undirected=True,
        name=f"gnp-dual(n={n},pr={p_reliable},pu={p_unreliable},seed={seed})",
    )


def gray_zone(
    n: int,
    reliable_radius: float = 0.35,
    gray_radius: float = 0.7,
    seed: int = 0,
    area: float = 1.0,
    max_attempts: int = 200,
) -> Tuple[DualGraph, List[Tuple[float, float]]]:
    """A geometric gray-zone dual graph with node positions.

    Nodes are placed uniformly at random in an ``area × area`` square.
    Pairs within ``reliable_radius`` get a reliable edge; pairs within
    ``gray_radius`` (but beyond the reliable radius) get an unreliable edge
    — the gray zone where packets are received only sometimes.  Placement
    is retried (rotating the seed) until the reliable graph is connected,
    mirroring the paper's standing assumption.  The default radii are
    chosen so connectivity holds with decent probability down to ``n ≈
    16``; for larger ``n`` they can be reduced toward the connectivity
    threshold ``πr²n ≈ ln n``.

    Returns:
        ``(graph, positions)`` where ``positions[v]`` is node ``v``'s
        coordinate (handy for plotting and for distance-based adversaries).

    Raises:
        DualGraphError: If no connected placement is found within
            ``max_attempts`` retries; increase the radius or density.
    """
    if reliable_radius <= 0 or gray_radius < reliable_radius:
        raise ValueError("need 0 < reliable_radius <= gray_radius")
    last_error: Optional[Exception] = None
    for attempt in range(max_attempts):
        rng = random.Random(seed + attempt * 7919)
        positions = [
            (rng.uniform(0, area), rng.uniform(0, area)) for _ in range(n)
        ]
        reliable: List[Edge] = []
        unreliable: List[Edge] = []
        for u, v in itertools.combinations(range(n), 2):
            d = math.dist(positions[u], positions[v])
            if d <= reliable_radius:
                reliable.append((u, v))
            elif d <= gray_radius:
                unreliable.append((u, v))
        try:
            graph = DualGraph(
                n,
                reliable,
                reliable + unreliable,
                undirected=True,
                name=(
                    f"gray-zone(n={n},r={reliable_radius},"
                    f"R={gray_radius},seed={seed + attempt * 7919})"
                ),
            )
            return graph, positions
        except DualGraphError as exc:
            last_error = exc
    raise DualGraphError(
        f"could not place a connected gray-zone network after "
        f"{max_attempts} attempts: {last_error}"
    )
