"""Paper-specific network constructions.

Three networks carry the paper's lower bounds:

* :func:`clique_bridge` — Theorem 2 / Theorem 4: an ``(n-1)``-clique
  containing the source and a *bridge* node, plus a lone *receiver* hanging
  off the bridge; ``G'`` is complete.  2-broadcastable, yet deterministic
  broadcast needs more than ``n - 3`` rounds.
* :func:`layered_pairs` — Theorem 12: a complete layered graph whose layers
  (after the source) contain exactly two nodes, with ``G'`` complete.
  Forces ``Ω(n log n)`` rounds.
* :func:`pivot_layers` — Theorem 11 (shape-equivalent stand-in for the
  Clementi–Monti–Silvestri dynamic-fault construction): a directed
  ``√n``-broadcastable network in which each layer can only be exited
  reliably through an adversarially chosen hidden pivot, forcing
  ``Ω(n^{3/2})``-shaped running times.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.graphs.dualgraph import DualGraph, Edge


@dataclass(frozen=True)
class CliqueBridgeLayout:
    """Node roles in the Theorem-2 network.

    Attributes:
        graph: The dual graph itself.
        source: The source node (inside the clique).
        bridge: The unique clique node adjacent to the receiver.
        receiver: The node reachable only through the bridge.
        clique: All clique nodes (including source and bridge).
    """

    graph: DualGraph
    source: int
    bridge: int
    receiver: int
    clique: Tuple[int, ...]


def clique_bridge(n: int, bridge: int = 1) -> CliqueBridgeLayout:
    """Build the Theorem-2 network for ``n >= 3`` nodes.

    ``G`` consists of a clique over nodes ``0 .. n-2`` (source = 0) plus the
    edge ``{bridge, n-1}`` to the receiver node ``n-1``.  ``G'`` is the
    complete graph.  The network is 2-broadcastable: source sends, then the
    bridge sends.

    Args:
        n: Total number of nodes (``n - 1`` in the clique plus the receiver).
        bridge: Which clique node plays the bridge role (must not be the
            source; the proof places the adversarially chosen process there).
    """
    if n < 3:
        raise ValueError("clique_bridge needs n >= 3")
    if not 1 <= bridge <= n - 2:
        raise ValueError(f"bridge must be a non-source clique node, got {bridge}")
    receiver = n - 1
    clique_nodes = tuple(range(n - 1))
    reliable: List[Edge] = list(itertools.combinations(clique_nodes, 2))
    reliable.append((bridge, receiver))
    all_edges = list(itertools.combinations(range(n), 2))
    graph = DualGraph(
        n,
        reliable,
        all_edges,
        undirected=True,
        name=f"clique-bridge(n={n},bridge={bridge})",
    )
    return CliqueBridgeLayout(
        graph=graph,
        source=0,
        bridge=bridge,
        receiver=receiver,
        clique=clique_nodes,
    )


@dataclass(frozen=True)
class LayeredPairsLayout:
    """Node roles in the Theorem-12 network.

    Attributes:
        graph: The dual graph.
        layers: ``layers[0] == (0,)`` is the source layer; each subsequent
            layer is a pair ``(2k-1, 2k)``.
    """

    graph: DualGraph
    layers: Tuple[Tuple[int, ...], ...]

    @property
    def num_layers(self) -> int:
        """Number of layers including the source layer."""
        return len(self.layers)


def layered_pairs(n: int) -> LayeredPairsLayout:
    """Build the Theorem-12 network on ``n`` nodes (``n`` odd, ``n >= 5``).

    Nodes are ``{0, .., n-1}`` with node 0 the source.  Layers are
    ``L_0 = {0}`` and ``L_k = {2k-1, 2k}`` for ``k = 1 .. (n-1)/2``.  ``G``
    is the complete layered graph (edges within each layer and between
    consecutive layers); ``G'`` is the complete graph, so that a
    transmission from layer ``k`` can be pushed by the adversary to any
    superset of ``L_{k-1} ∪ L_{k+1}``.
    """
    if n < 5 or n % 2 == 0:
        raise ValueError("layered_pairs needs odd n >= 5")
    num_pair_layers = (n - 1) // 2
    layers: List[Tuple[int, ...]] = [(0,)]
    for k in range(1, num_pair_layers + 1):
        layers.append((2 * k - 1, 2 * k))

    reliable: List[Edge] = []
    for layer in layers:
        reliable.extend(itertools.combinations(layer, 2))
    for a, b in zip(layers, layers[1:]):
        reliable.extend(itertools.product(a, b))
    all_edges = list(itertools.combinations(range(n), 2))
    graph = DualGraph(
        n,
        reliable,
        all_edges,
        undirected=True,
        name=f"layered-pairs(n={n})",
    )
    return LayeredPairsLayout(graph=graph, layers=tuple(layers))


@dataclass(frozen=True)
class PivotLayersLayout:
    """Node roles in the Theorem-11-shaped directed network.

    Attributes:
        graph: The dual graph.
        layers: ``layers[0] == (0,)``; subsequent layers have ``width``
            nodes each.
        width: Nodes per non-source layer (``≈ √n``).
    """

    graph: DualGraph
    layers: Tuple[Tuple[int, ...], ...]
    width: int

    @property
    def num_layers(self) -> int:
        return len(self.layers)


def pivot_layers(num_layers: int, width: int) -> PivotLayersLayout:
    """Build the directed hard network used for the Theorem-11 experiment.

    Structure (all edges directed "forward"):

    * Layer 0 is the source; layers ``1 .. num_layers-1`` have ``width``
      nodes each, so ``n = 1 + (num_layers - 1) * width``.
    * **Reliable** edges leave each layer only through its *pivot* (the
      layer's first node): ``pivot_k → every node of layer k+1``.  Every
      node is still reachable from the source along the pivot chain.
    * **Unreliable** edges: every node of layer ``k`` → every node of every
      later layer (the adversary's blanket).

    Consequences: a lone non-pivot sender in the frontier layer informs
    nobody new (the adversary withholds its unreliable edges); a lone pivot
    sender reliably informs the whole next layer; when the pivot sends
    concurrently with anyone else, the companion
    :class:`~repro.adversaries.interferers.PivotAdversary` blankets the
    next layer to force collisions.  Since which *identity* sits at each
    pivot node is also adversarial (the ``proc`` mapping), a deterministic
    feedback-free algorithm must effectively isolate every identity in a
    layer before it can be sure of progress.  With
    ``num_layers ≈ width ≈ √n`` the measured broadcast time grows like
    ``n^{3/2}`` (up to polylog), matching the shape of the Theorem-11
    bound.
    """
    if num_layers < 2 or width < 1:
        raise ValueError("need num_layers >= 2 and width >= 1")
    layers: List[Tuple[int, ...]] = [(0,)]
    next_node = 1
    for _ in range(1, num_layers):
        layers.append(tuple(range(next_node, next_node + width)))
        next_node += width
    n = next_node

    reliable: List[Edge] = []
    for a, b in zip(layers, layers[1:]):
        pivot = a[0]
        reliable.extend((pivot, v) for v in b)

    all_edges: List[Edge] = list(reliable)
    for i, layer in enumerate(layers):
        for later in layers[i + 1 :]:
            for u in layer:
                for v in later:
                    all_edges.append((u, v))

    graph = DualGraph(
        n,
        reliable,
        all_edges,
        name=f"pivot-layers(L={num_layers},w={width})",
    )
    return PivotLayersLayout(graph=graph, layers=tuple(layers), width=width)


def pivot_layers_for_n(n: int) -> PivotLayersLayout:
    """Build a pivot-layer network with ``≈ √n`` layers of ``≈ √n`` nodes."""
    width = max(1, int(math.isqrt(n)))
    num_layers = max(2, (n - 1 + width - 1) // width + 1)
    return pivot_layers(num_layers, width)
