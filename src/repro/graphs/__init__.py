"""Dual graph networks and topology generators."""

from repro.graphs.constructions import (
    CliqueBridgeLayout,
    LayeredPairsLayout,
    PivotLayersLayout,
    clique_bridge,
    layered_pairs,
    pivot_layers,
    pivot_layers_for_n,
)
from repro.graphs.broadcastability import (
    broadcast_number,
    greedy_broadcast_schedule,
    guaranteed_informed,
    is_k_broadcastable,
)
from repro.graphs.dualgraph import DualGraph, DualGraphError
from repro.graphs.extra_generators import (
    caterpillar,
    complete_binary_tree,
    hypercube,
    noisy_dual,
    random_regular,
)
from repro.graphs.generators import (
    clique,
    directed_layered,
    grid,
    layered,
    line,
    random_tree,
    ring,
    star,
    with_complete_unreliable,
)
from repro.graphs.random_graphs import gnp_dual, gray_zone

__all__ = [
    "CliqueBridgeLayout",
    "DualGraph",
    "DualGraphError",
    "broadcast_number",
    "caterpillar",
    "complete_binary_tree",
    "greedy_broadcast_schedule",
    "guaranteed_informed",
    "hypercube",
    "is_k_broadcastable",
    "noisy_dual",
    "random_regular",
    "LayeredPairsLayout",
    "PivotLayersLayout",
    "clique",
    "clique_bridge",
    "directed_layered",
    "gnp_dual",
    "gray_zone",
    "grid",
    "layered",
    "layered_pairs",
    "line",
    "pivot_layers",
    "pivot_layers_for_n",
    "random_tree",
    "ring",
    "star",
    "with_complete_unreliable",
]
