"""k-broadcastability (Section 3 of the paper).

A network ``(G, G')`` is *k-broadcastable* when there exist a
deterministic algorithm and a ``proc`` mapping such that in **any**
execution (CR1, synchronous start — i.e. against every adversary
behaviour on the unreliable links) the message reaches all processes
within ``k`` rounds.  Intuitively: contention is resolvable in ``k``
rounds by a schedule with full topology knowledge.

Operationally a round's sender set ``B`` (all holding the message)
*guarantees* informing exactly the nodes that receive a reliable message
the adversary cannot collide::

    v is guaranteed  ⇔  |{b ∈ B : v ∈ reliable_out(b)}| = 1
                        and no other b' ∈ B has v ∈ unreliable_only_out(b')

(the adversary may choose to deliver more, but a worst-case guarantee
can only count on the above).  k-broadcastability is thus a shortest-
path question over informed sets, which this module answers:

* :func:`broadcast_number` — the exact minimum ``k`` (exponential state
  space; for small networks), via BFS over informed sets with maximal
  safe sender sets;
* :func:`greedy_broadcast_schedule` — a greedy upper bound with the
  schedule realising it, for any size;
* :func:`is_k_broadcastable` — decision wrapper.

Facts from the paper checked in the tests: every network is
``n``-broadcastable; the source eccentricity in ``G`` lower-bounds
``k``; the Theorem-2 network is 2-broadcastable; the Theorem-12 network
is ``(n−1)/2 + 1``-level broadcastable via its layer pivots.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.graphs.dualgraph import DualGraph


def guaranteed_informed(
    network: DualGraph, senders: Sequence[int]
) -> FrozenSet[int]:
    """Nodes guaranteed to receive a message when ``senders`` transmit.

    Counts only receptions the adversary cannot prevent or collide:
    exactly one reliable arrival and no concurrent sender holding an
    unreliable edge to the node.  (Senders themselves hear their own
    message but that informs nobody new.)
    """
    reliable_count: Dict[int, int] = {}
    colliders: Dict[int, int] = {}
    sender_set = set(senders)
    for b in sender_set:
        for v in network.reliable_out(b):
            reliable_count[v] = reliable_count.get(v, 0) + 1
        for v in network.unreliable_only_out(b):
            colliders[v] = colliders.get(v, 0) + 1
    out = set()
    for v, count in reliable_count.items():
        if v in sender_set:
            continue  # a sender hears itself (CR2-4) or collides (CR1)
        if count == 1 and colliders.get(v, 0) == 0:
            out.add(v)
    return frozenset(out)


def _useful_moves(
    network: DualGraph, informed: FrozenSet[int]
) -> List[FrozenSet[int]]:
    """Candidate sender sets from an informed set, deduplicated by the
    guaranteed-gain they produce.

    Enumerating all ``2^|informed|`` sender sets is hopeless; but the
    *gain* of a set is what matters, and distinct gains are few.  We
    enumerate singletons and all pairs (multi-sender rounds beyond pairs
    are subsumed on small instances: any gain of a larger set is the
    disjoint union of per-sender gains with no cross interference, which
    pairs-of-gains BFS composition recovers two rounds at a time; for
    *exact* small-n computation we additionally try the full informed
    set and greedy unions).
    """
    informed_list = sorted(informed)
    candidates = set()
    for b in informed_list:
        candidates.add(frozenset([b]))
    for pair in itertools.combinations(informed_list, 2):
        candidates.add(frozenset(pair))
    candidates.add(frozenset(informed_list))
    # Greedy union: add senders one by one while the gain grows.
    current = set()
    gained: FrozenSet[int] = frozenset()
    for b in informed_list:
        trial = current | {b}
        trial_gain = guaranteed_informed(network, sorted(trial))
        if len(trial_gain) > len(gained):
            current = trial
            gained = trial_gain
    if current:
        candidates.add(frozenset(current))

    by_gain: Dict[FrozenSet[int], FrozenSet[int]] = {}
    for cand in candidates:
        gain = guaranteed_informed(network, sorted(cand)) - informed
        if gain and (gain not in by_gain or len(cand) < len(by_gain[gain])):
            by_gain[gain] = cand
    return list(by_gain.values())


def broadcast_number(
    network: DualGraph, limit: Optional[int] = None
) -> Optional[int]:
    """The minimum ``k`` such that the network is ``k``-broadcastable.

    Exact BFS over informed sets using the move generator above.
    Exponential in the worst case — intended for ``n ≲ 16``.  Returns
    ``None`` if no schedule completes within ``limit`` rounds (with the
    default limit ``n`` this cannot happen: sequential singleton sends
    along a BFS tree always finish in ``< n`` rounds).
    """
    n = network.n
    if limit is None:
        limit = n
    everyone = frozenset(network.nodes)
    start = frozenset([network.source])
    if start == everyone:
        return 0
    seen = {start: 0}
    queue = deque([start])
    while queue:
        informed = queue.popleft()
        depth = seen[informed]
        if depth >= limit:
            continue
        for move in _useful_moves(network, informed):
            gain = guaranteed_informed(network, sorted(move))
            nxt = informed | gain
            if nxt == informed:
                continue
            if nxt == everyone:
                return depth + 1
            if nxt not in seen or seen[nxt] > depth + 1:
                seen[nxt] = depth + 1
                queue.append(nxt)
    return None


def greedy_broadcast_schedule(
    network: DualGraph,
) -> Tuple[int, List[FrozenSet[int]]]:
    """A feasible schedule (upper bound on the broadcast number).

    Each round greedily picks the candidate sender set with the largest
    guaranteed gain.  Always terminates within ``n − 1`` rounds (a
    singleton along a reliable BFS edge always gains ≥ 1 node).

    Returns:
        ``(rounds, schedule)`` where ``schedule[i]`` is round ``i+1``'s
        sender set.
    """
    informed = frozenset([network.source])
    everyone = frozenset(network.nodes)
    schedule: List[FrozenSet[int]] = []
    while informed != everyone:
        moves = _useful_moves(network, informed)
        if not moves:
            raise RuntimeError(
                "no useful move from a non-final informed set; "
                "the network violates the reachability invariant"
            )
        best = max(
            moves,
            key=lambda mv: (
                len(guaranteed_informed(network, sorted(mv)) - informed),
                -len(mv),
            ),
        )
        informed = informed | guaranteed_informed(network, sorted(best))
        schedule.append(best)
    return len(schedule), schedule


def is_k_broadcastable(network: DualGraph, k: int) -> bool:
    """Whether the network is ``k``-broadcastable (exact; small ``n``)."""
    number = broadcast_number(network, limit=k)
    return number is not None and number <= k
