"""Additional topology families used by the wider experiment suite.

Beyond the basics in :mod:`repro.graphs.generators`, these cover the
structures commonly exercised in radio broadcast papers: hypercubes
(dense, logarithmic diameter), complete binary trees (hierarchical),
caterpillars (worst-ish case for pipelining), random regular graphs
(expander-flavoured), and "noisy" duals derived from any base graph by
sampling extra unreliable edges.
"""

from __future__ import annotations

import itertools
import random
from typing import List

from repro.graphs.dualgraph import DualGraph, Edge


def hypercube(dimension: int) -> DualGraph:
    """The ``2^d``-node hypercube (classical).

    Diameter ``d``; the canonical dense low-diameter testbed.
    """
    if dimension < 1:
        raise ValueError("need dimension >= 1")
    n = 1 << dimension
    reliable: List[Edge] = []
    for v in range(n):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if v < u:
                reliable.append((v, u))
    return DualGraph(
        n, reliable, undirected=True, name=f"hypercube(d={dimension})"
    )


def complete_binary_tree(depth: int) -> DualGraph:
    """A complete binary tree of the given depth, rooted at the source."""
    if depth < 0:
        raise ValueError("need depth >= 0")
    n = (1 << (depth + 1)) - 1
    reliable = [
        (parent, child)
        for parent in range(n)
        for child in (2 * parent + 1, 2 * parent + 2)
        if child < n
    ]
    return DualGraph(
        n, reliable, undirected=True,
        name=f"binary-tree(depth={depth})",
    )


def caterpillar(spine: int, legs_per_node: int) -> DualGraph:
    """A caterpillar: a spine path with pendant leaves on every node.

    High-degree bottlenecks along a path — the classic stress case for
    pipelined broadcast schedules.
    """
    if spine < 1 or legs_per_node < 0:
        raise ValueError("need spine >= 1 and legs_per_node >= 0")
    n = spine * (1 + legs_per_node)
    reliable: List[Edge] = []
    for i in range(spine - 1):
        reliable.append((i, i + 1))
    leaf = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            reliable.append((i, leaf))
            leaf += 1
    return DualGraph(
        n, reliable, undirected=True,
        name=f"caterpillar(spine={spine},legs={legs_per_node})",
    )


def random_regular(
    n: int, degree: int, seed: int = 0, max_attempts: int = 200
) -> DualGraph:
    """A random ``degree``-regular graph via the configuration model.

    Resamples until the pairing is simple (no loops or doubled edges) and
    connected; practical for the moderate sizes the simulator targets.

    Raises:
        ValueError: When ``n * degree`` is odd or ``degree >= n``.
        RuntimeError: When no valid pairing is found within
            ``max_attempts`` (raise the degree or the attempts).
    """
    if degree >= n or degree < 1:
        raise ValueError("need 1 <= degree < n")
    if (n * degree) % 2:
        raise ValueError("n * degree must be even")
    for attempt in range(max_attempts):
        rng = random.Random(f"regular:{seed}:{attempt}")
        stubs = [v for v in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for u, v in zip(stubs[::2], stubs[1::2]):
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if not ok:
            continue
        try:
            return DualGraph(
                n, edges, undirected=True,
                name=f"random-regular(n={n},d={degree},seed={seed})",
            )
        except Exception:
            continue  # disconnected sample: retry
    raise RuntimeError(
        f"no simple connected {degree}-regular pairing found in "
        f"{max_attempts} attempts"
    )


def noisy_dual(
    base: DualGraph,
    extra_edge_fraction: float = 0.5,
    seed: int = 0,
) -> DualGraph:
    """Derive a dual from any classical graph by sampling noise edges.

    Adds ``extra_edge_fraction × |E|`` unreliable edges drawn uniformly
    from the non-edges, modelling a deployment whose site survey found
    ``G`` and whose radios occasionally reach further.
    """
    if extra_edge_fraction < 0:
        raise ValueError("extra_edge_fraction must be non-negative")
    rng = random.Random(f"noisy:{seed}")
    n = base.n
    reliable = base.reliable_edges()
    undirected_reliable = {(min(u, v), max(u, v)) for u, v in reliable}
    non_edges = [
        (u, v)
        for u, v in itertools.combinations(range(n), 2)
        if (u, v) not in undirected_reliable
    ]
    rng.shuffle(non_edges)
    want = int(len(undirected_reliable) * extra_edge_fraction)
    extra = non_edges[:want]
    all_edges = set(reliable)
    for u, v in extra:
        all_edges.add((u, v))
        all_edges.add((v, u))
    return DualGraph(
        n,
        reliable,
        all_edges,
        source=base.source,
        name=f"{base.name}+noise({extra_edge_fraction},seed={seed})",
    )
