"""The sweep executor: fan a task grid out over worker processes.

:func:`execute_task` is the per-task unit of work — a module-level
function taking and returning picklable values, so a ``multiprocessing``
pool can run it anywhere.  :class:`SweepRunner` expands one or more
:class:`~repro.experiments.spec.ExperimentSpec`\\ s, skips tasks whose
records already sit in the results file (resume-by-key), and streams the
remaining tasks through ``imap_unordered`` with a derived chunk size so
per-task IPC overhead stays low on large grids.

Invariants:

* **Determinism** — each task's engine seed is derived from its science
  key, and the final record list is key-sorted, so the same spec
  produces the identical
  :class:`~repro.experiments.results.SweepResult` records for any
  worker count, chunking, engine choice, or resume history.
* **Durable resume** — with ``results_path`` set, each record is
  appended (and flushed) as a JSON line the moment its task finishes,
  so an interrupted sweep leaves a valid prefix.  The persistence layer
  (:mod:`repro.experiments.persist`) heals a torn final line — the
  signature of a hard kill mid-write — by skipping what does not parse
  on load and starting the next append on a fresh line, so resuming
  re-runs exactly the tasks whose records are missing.
* **Transparent fast path** — a task whose spec requests
  ``engine="fast"`` runs on the bitmask engine only when
  :func:`repro.sim.fast_engine.fast_engine_eligible` approves its
  collision-rule/adversary combination, and silently downgrades to the
  reference engine otherwise; either way the trace, and therefore the
  record, is the same (the engines are proven trace-equivalent).
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.runner import make_processes, suggested_round_limit
from repro.experiments.persist import (
    append_record,
    load_records,
    open_for_append,
)
from repro.experiments.registry import build_adversary, build_graph
from repro.experiments.results import RunResult, SweepResult
from repro.experiments.spec import ExperimentSpec, RunTask
from repro.sim.collision import CollisionRule
from repro.sim.engine import EngineConfig, StartMode, build_engine
from repro.sim.fast_engine import fast_engine_eligible

#: Called after each finished task with (result, done_count, total).
ProgressCallback = Callable[[RunResult, int, int], None]


def execute_task(task: RunTask) -> RunResult:
    """Run one grid cell and return its deterministic record."""
    graph = build_graph(
        task.graph_kind, task.n, seed=task.seed, **dict(task.graph_params)
    )
    adversary = build_adversary(
        task.adversary_kind,
        seed=task.derived_seed,
        **dict(task.adversary_params),
    )
    processes = make_processes(
        task.algorithm, graph.n, **dict(task.algorithm_params)
    )
    max_rounds = task.max_rounds
    if max_rounds is None:
        max_rounds = suggested_round_limit(task.algorithm, graph)
    rule = CollisionRule[task.collision_rule]
    engine_name = task.engine
    if engine_name == "fast" and not fast_engine_eligible(rule, adversary):
        engine_name = "reference"  # transparent: traces are identical
    config = EngineConfig(
        collision_rule=rule,
        start_mode=StartMode(task.start_mode),
        max_rounds=max_rounds,
        seed=task.derived_seed,
        engine=engine_name,
    )
    engine = build_engine(graph, processes, adversary, config)
    trace = engine.run()
    return RunResult(
        key=task.key,
        sweep=task.sweep,
        algorithm=task.algorithm,
        graph_kind=task.graph_kind,
        n=task.n,
        graph_n=graph.n,
        adversary_kind=task.adversary_kind,
        collision_rule=task.collision_rule,
        start_mode=task.start_mode,
        seed=task.seed,
        completed=trace.completed,
        completion_round=trace.completion_round,
        rounds=trace.num_rounds,
        total_transmissions=sum(trace.sender_counts()),
        engine=engine_name,
    )


class SweepRunner:
    """Run one or several specs as a single fanned-out sweep.

    Args:
        specs: One :class:`ExperimentSpec` or a sequence of them (their
            task keys must be disjoint; spec names namespace the keys).
        workers: Worker process count.  ``1`` runs in-process (no pool),
            which is also the fallback when only one task is pending.
        results_path: Optional JSON-lines file.  Existing records are
            loaded and their tasks skipped; new records are appended as
            they finish, so interrupting and re-running resumes where
            the sweep stopped.
        chunksize: Tasks per worker dispatch (default: derived so each
            worker sees several chunks, balancing IPC overhead against
            stragglers).
    """

    def __init__(
        self,
        specs: Union[ExperimentSpec, Sequence[ExperimentSpec]],
        workers: int = 1,
        results_path: Optional[str] = None,
        chunksize: Optional[int] = None,
    ) -> None:
        if isinstance(specs, ExperimentSpec):
            specs = [specs]
        self.specs: List[ExperimentSpec] = list(specs)
        if not self.specs:
            raise ValueError("need at least one spec")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.results_path = results_path
        self.chunksize = chunksize

    def tasks(self) -> List[RunTask]:
        """The combined, ordered task list of all specs."""
        out: List[RunTask] = []
        seen: Dict[str, str] = {}
        for spec in self.specs:
            for task in spec.tasks():
                if task.key in seen:
                    raise ValueError(
                        f"duplicate task key {task.key!r} "
                        f"(specs {seen[task.key]!r} and {spec.name!r})"
                    )
                seen[task.key] = spec.name
                out.append(task)
        return out

    def run(
        self, progress: Optional[ProgressCallback] = None
    ) -> SweepResult:
        """Execute all pending tasks and return the aggregated result."""
        started = time.perf_counter()
        tasks = self.tasks()
        done: Dict[str, RunResult] = {}
        if self.results_path:
            on_disk = load_records(self.results_path)
            done = {
                t.key: on_disk[t.key] for t in tasks if t.key in on_disk
            }
        pending = [t for t in tasks if t.key not in done]

        sink = (
            open_for_append(self.results_path)
            if self.results_path and pending
            else None
        )
        records = dict(done)
        total = len(tasks)
        try:
            for result in self._execute(pending):
                records[result.key] = result
                if sink is not None:
                    append_record(sink, result)
                if progress is not None:
                    progress(result, len(records), total)
        finally:
            if sink is not None:
                sink.close()

        return SweepResult(
            records=list(records.values()),
            executed=len(pending),
            resumed=len(done),
            elapsed=time.perf_counter() - started,
        )

    def _execute(self, pending: Sequence[RunTask]):
        if self.workers == 1 or len(pending) <= 1:
            for task in pending:
                yield execute_task(task)
            return
        chunksize = self.chunksize
        if chunksize is None:
            # Aim for ~8 chunks per worker: large enough to amortise
            # pickling, small enough to keep stragglers short.
            chunksize = max(1, len(pending) // (self.workers * 8))
        # Prefer fork so runtime register_graph/register_adversary
        # entries reach the workers; spawn platforms (macOS, Windows)
        # re-import the registries and only see module-level entries.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with ctx.Pool(self.workers) as pool:
            yield from pool.imap_unordered(
                execute_task, pending, chunksize=chunksize
            )


def run_sweep(
    specs: Union[ExperimentSpec, Sequence[ExperimentSpec]],
    workers: int = 1,
    results_path: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        specs, workers=workers, results_path=results_path
    ).run(progress=progress)
