"""The sweep executor: fan a task grid out over worker processes.

:func:`execute_task` is the per-task unit of work and
:func:`execute_batch` the per-cell unit — module-level functions taking
and returning picklable values, so a ``multiprocessing`` pool can run
them anywhere.  :class:`SweepRunner` expands one or more
:class:`~repro.experiments.spec.ExperimentSpec`\\ s, skips tasks whose
records already sit in the results file (resume-by-key), and streams the
remaining work through ``imap_unordered``.  By default pending tasks are
grouped into one :class:`~repro.experiments.spec.CellBatch` per science
cell (every axis except the seed), so each worker builds the cell's
graph, derives its round cap and compiles its engine topology
(:class:`~repro.sim.fast_engine.CompiledTopology`) once, then runs the
cell's seeds in a tight loop — amortising setup that otherwise dominates
seeds-heavy cells (``benchmarks/bench_sweep.py`` measures the win).

Invariants:

* **Determinism** — each task's engine seed is derived from its science
  key, and the final record list is key-sorted, so the same spec
  produces the identical
  :class:`~repro.experiments.results.SweepResult` records for any
  worker count, chunking, engine choice, batching mode, or resume
  history.
* **Batching is pure scheduling** — batched and per-task execution emit
  byte-identical records: the per-seed loop inside a batch runs exactly
  the :func:`execute_task` pipeline, with only graph/cap/topology
  construction hoisted (and only when the cell's graph kind is
  seed-independent per
  :func:`~repro.experiments.registry.graph_seed_dependent`; ``gnp``-like
  kinds rebuild per seed).  ``tests/test_batching.py`` asserts this.
* **Durable resume** — with ``results_path`` set, each record is
  appended to the sweep's result store (:mod:`repro.store`: a single
  JSON-lines file by default, a sharded or columnar campaign directory
  on request) the moment its result reaches the parent process, so an
  interrupted sweep leaves a valid prefix.  Durability cadence is the
  store's explicit ``flush_every`` policy (the default JSONL backend
  flushes every record, the historical behaviour).
  *Resume* granularity stays per task under batching: pending tasks
  are filtered by key before batches are planned, so whatever a kill
  left on disk, re-running executes exactly the missing seeds.
  *Durability* granularity is the dispatch unit — a batch's records
  reach the parent together when the batch finishes, so a hard kill
  forfeits (and the resume re-runs) the in-flight batches' completed
  seeds, bounded by the batch-splitting cap in ``_plan_units``.  The
  storage layer (:mod:`repro.store`) heals a torn final line — the
  signature of a hard kill mid-write — by skipping (and counting)
  what does not parse on load and starting the next append on a
  fresh line.
* **Transparent fast paths** — the shared eligibility truth table
  (:func:`repro.sim.fast_engine.mask_engine_eligible`) is all-yes:
  every collision-rule/adversary combination, CR4 real resolvers
  included, runs on the engine the spec requests.  The one remaining
  downgrade is ``engine="vector"`` without NumPy, which silently uses
  the reference engine; either way the trace, and therefore the
  record, is the same (the engines are proven trace-equivalent).
  Vector cells run their whole seed list through one
  :func:`repro.sim.vector_engine.run_lockstep` call instead of a
  per-seed loop — seed-independent cells share one graph and reach
  matrix, seed-dependent kinds (``gnp``, ``gray-zone``) hand lockstep
  one graph per lane — pure scheduling, same records.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.core.runner import make_processes, suggested_round_limit
from repro.obs.telemetry import Stopwatch, Telemetry, current, set_telemetry
from repro.experiments.registry import (
    build_adversary,
    build_churn,
    build_graph,
    graph_seed_dependent,
)
from repro.experiments.results import RunResult, SweepResult
from repro.experiments.spec import (
    CellBatch,
    ExperimentSpec,
    RunTask,
    plan_batches,
)
from repro.graphs.dualgraph import DualGraph
from repro.sim.collision import CollisionRule
from repro.sim.engine import EngineConfig, StartMode, build_engine
from repro.sim.fast_engine import (
    CompiledTopology,
    compile_topology,
    fast_engine_eligible,
)
from repro.sim.trace import ExecutionTrace
from repro.store import ResultStore, StoreHealth, open_store

# repro.sim.vector_engine is imported lazily inside the functions that
# need it: importing it pulls in NumPy, which reference/fast-only
# sweeps (and every pool worker they spawn) should never pay for.

#: Called after each finished task with (result, done_count, total).
ProgressCallback = Callable[[RunResult, int, int], None]

#: Max lanes per :func:`repro.sim.vector_engine.run_lockstep` call in
#: the batched vector path (see `_execute_batch_lockstep`).
_LOCKSTEP_LANES = 32


class _WorkerStats:
    """Per-process heartbeat state: a clock and a cumulative tally."""

    __slots__ = ("watch", "tasks_done")

    def __init__(self) -> None:
        self.watch = Stopwatch()
        self.tasks_done = 0


#: pid → heartbeat state; cleared on the first heartbeat after a fork
#: so a child never reports the parent's clock or tally as its own.
_WORKER_STATS: Dict[int, _WorkerStats] = {}


def _heartbeat(telemetry: Telemetry, tasks_done: int) -> None:
    """Emit one worker heartbeat (pid, cumulative tasks, tasks/s).

    Called from the worker side after each finished dispatch unit.  The
    trailing ``flush()`` also pushes the engine-counter deltas
    accumulated since the last heartbeat into the sink as a ``stats``
    event, so perf panels can sum per-worker contributions.  A no-op
    without an enabled sink.
    """
    if not telemetry.enabled:
        return
    pid = os.getpid()
    stats = _WORKER_STATS.get(pid)
    if stats is None:
        _WORKER_STATS.clear()  # drop state inherited through fork
        stats = _WORKER_STATS[pid] = _WorkerStats()
    stats.tasks_done += tasks_done
    elapsed = stats.watch.elapsed()
    rate = stats.tasks_done / elapsed if elapsed > 0.0 else 0.0
    telemetry.event(
        "heartbeat", tasks_done=stats.tasks_done, rate=rate
    )
    telemetry.flush()


def _init_worker_telemetry(target: Optional[str]) -> None:
    """Pool initializer: ensure workers have a telemetry sink.

    Fork-started workers inherit the parent's sink (whose pid check
    diverts their writes to a sibling stream, see
    :mod:`repro.obs.jsonl`), so they need nothing here; spawn-started
    workers start with the null default and install their own
    ``worker=True`` sink against the campaign's stream path.
    """
    if target is not None and not current().enabled:
        from repro.obs.jsonl import JsonlTelemetry

        set_telemetry(JsonlTelemetry(target, worker=True))


class _ProgressEmitter:
    """Rate-limited ``progress`` events for the live campaign stream.

    At most ~2 events per second, except that the terminal state
    (``done == total``) always emits — a finished campaign's stream
    must end on the true count.
    """

    _MIN_INTERVAL = 0.5

    def __init__(self, telemetry: Telemetry, total: int) -> None:
        self._telemetry = telemetry
        self._total = total
        self._watch = Stopwatch()
        self._last = -self._MIN_INTERVAL

    def update(self, done: int) -> None:
        """Emit ``done``/total if the rate limit (or the end) allows."""
        if not self._telemetry.enabled:
            return
        now = self._watch.elapsed()
        if done < self._total and now - self._last < self._MIN_INTERVAL:
            return
        self._last = now
        self._telemetry.event(
            "progress", done=done, total=self._total
        )


def _execute_on(
    task: RunTask,
    graph: DualGraph,
    topology: Optional[CompiledTopology] = None,
    default_cap: Optional[int] = None,
) -> RunResult:
    """Run one task against an already-built graph.

    The shared tail of :func:`execute_task` and :func:`execute_batch`:
    everything downstream of graph construction.  ``topology`` and
    ``default_cap`` (the cell's derived round limit, used when the task
    carries no explicit ``max_rounds``) are per-cell reusables the
    batched path hands in; both default to per-task derivation.
    """
    adversary = build_adversary(
        task.adversary_kind,
        seed=task.derived_seed,
        **dict(task.adversary_params),
    )
    processes = make_processes(
        task.algorithm, graph.n, **dict(task.algorithm_params)
    )
    max_rounds = task.max_rounds
    if max_rounds is None:
        max_rounds = (
            default_cap
            if default_cap is not None
            else suggested_round_limit(task.algorithm, graph)
        )
    rule = CollisionRule[task.collision_rule]
    engine_name = _route_engine(task.engine, rule, adversary)
    # The churn schedule is built from the task's key-derived seed and
    # its *resolved* round cap, so rate-based schedules cover the whole
    # horizon and are reproducible from the spec alone.
    churn = build_churn(
        task.churn_kind,
        n=graph.n,
        rounds=max_rounds,
        seed=task.derived_seed,
        **dict(task.churn_params),
    )
    config = EngineConfig(
        collision_rule=rule,
        start_mode=StartMode(task.start_mode),
        max_rounds=max_rounds,
        seed=task.derived_seed,
        engine=engine_name,
        churn=churn,
    )
    engine = build_engine(
        graph, processes, adversary, config, topology=topology
    )
    with current().span("engine_run"):
        trace = engine.run()
    return _result_from(task, graph, trace, engine_name)


def _route_engine(engine_name: str, rule, adversary) -> str:
    """Downgrade ineligible mask-engine requests to the reference engine.

    Transparent by construction: the engines are proven
    trace-equivalent, so the record is the same either way (only its
    ``engine`` field tells which implementation ran).  Eligibility is
    the shared truth table of
    :func:`repro.sim.fast_engine.mask_engine_eligible` — all-yes since
    the CR4 consult paths closed the last gap — so the only downgrade
    left in practice is a vector request without NumPy.
    """
    if engine_name == "fast" and not fast_engine_eligible(rule, adversary):
        return "reference"
    if engine_name == "vector":
        from repro.sim.vector_engine import vector_engine_eligible

        if not vector_engine_eligible(rule, adversary):
            return "reference"
    return engine_name


def _result_from(
    task: RunTask,
    graph: DualGraph,
    trace: ExecutionTrace,
    engine_name: str,
) -> RunResult:
    """Fold one finished trace into the task's deterministic record."""
    return RunResult(
        key=task.key,
        sweep=task.sweep,
        algorithm=task.algorithm,
        graph_kind=task.graph_kind,
        n=task.n,
        graph_n=graph.n,
        adversary_kind=task.adversary_kind,
        collision_rule=task.collision_rule,
        start_mode=task.start_mode,
        seed=task.seed,
        completed=trace.completed,
        completion_round=trace.completion_round,
        rounds=trace.num_rounds,
        total_transmissions=sum(trace.sender_counts()),
        engine=engine_name,
        churn_kind=task.churn_kind,
    )


def execute_task(task: RunTask) -> RunResult:
    """Run one grid cell seed and return its deterministic record."""
    telemetry = current()
    with telemetry.span("graph_build"):
        graph = build_graph(
            task.graph_kind,
            task.n,
            seed=task.seed,
            **dict(task.graph_params),
        )
    result = _execute_on(task, graph)
    _heartbeat(telemetry, 1)
    return result


def execute_batch(batch: CellBatch) -> List[RunResult]:
    """Run one science cell's pending seeds with shared setup.

    When the cell's graph kind is seed-independent
    (:func:`~repro.experiments.registry.graph_seed_dependent`), the
    graph is built, the round cap derived and the engine topology
    compiled exactly once for the whole batch; seed-dependent kinds
    (``gnp``, ``gray-zone``) rebuild all three per seed.  Cells that
    request ``engine="vector"`` run all seeds at once through the
    lockstep matrix path (:func:`repro.sim.vector_engine.run_lockstep`)
    — shared cells on one graph, seed-dependent cells with one graph
    per lane; every other cell runs each seed through the unchanged
    :func:`execute_task` pipeline.  Either way the returned records are
    byte-identical to per-task execution (the engines are proven
    trace-equivalent).
    """
    telemetry = current()
    share = not graph_seed_dependent(batch.tasks[0].graph_kind)
    if batch.tasks[0].engine == "vector":
        lockstep = _execute_batch_lockstep(batch, share)
        if lockstep is not None:
            _heartbeat(telemetry, len(lockstep))
            return lockstep
    graph: Optional[DualGraph] = None
    topology: Optional[CompiledTopology] = None
    default_cap: Optional[int] = None
    results: List[RunResult] = []
    for task in batch.tasks:
        if graph is None or not share:
            with telemetry.span("graph_build"):
                graph = build_graph(
                    task.graph_kind,
                    task.n,
                    seed=task.seed,
                    **dict(task.graph_params),
                )
            with telemetry.span("topology_compile"):
                topology = compile_topology(graph)
            default_cap = None
        if task.max_rounds is None and default_cap is None:
            default_cap = suggested_round_limit(task.algorithm, graph)
        results.append(_execute_on(task, graph, topology, default_cap))
    _heartbeat(telemetry, len(results))
    return results


def _execute_batch_lockstep(
    batch: CellBatch, share: bool
) -> Optional[List[RunResult]]:
    """Run a vector cell's whole seed list in one lockstep call.

    ``share`` says the cell's graph kind is seed-independent: one graph
    and one compiled topology then serve every lane.  Seed-dependent
    cells build one graph per task — exactly the graphs
    :func:`execute_task` would build — and hand lockstep the per-lane
    sequence, with each task's round cap derived from its own graph.

    Returns ``None`` when NumPy is missing (the caller then takes the
    per-task path, whose :func:`_route_engine` downgrade produces the
    identical records on the reference engine) or — defensively — when
    a seed-dependent kind yields differing node counts across seeds,
    which lockstep cannot interleave.  Per-seed adversaries, processes
    and engine seeds are built exactly as :func:`execute_task` would,
    so the lockstep records match per-task execution byte for byte.
    """
    from repro.sim.vector_engine import run_lockstep, vector_engine_eligible

    tasks = batch.tasks
    rule = CollisionRule[tasks[0].collision_rule]
    # Probe eligibility with the first task's adversary alone — the
    # table is shared cell-wide, so one instance decides for all and
    # an ineligible cell (NumPy missing) builds no throwaway objects.
    first_adversary = build_adversary(
        tasks[0].adversary_kind,
        seed=tasks[0].derived_seed,
        **dict(tasks[0].adversary_params),
    )
    if not vector_engine_eligible(rule, first_adversary):
        return None
    telemetry = current()
    if share:
        first = tasks[0]
        with telemetry.span("graph_build"):
            shared_graph = build_graph(
                first.graph_kind,
                first.n,
                seed=first.seed,
                **dict(first.graph_params),
            )
        graphs = [shared_graph] * len(tasks)
        with telemetry.span("topology_compile"):
            topologies = [compile_topology(shared_graph)] * len(tasks)
    else:
        with telemetry.span("graph_build"):
            graphs = [
                build_graph(
                    task.graph_kind,
                    task.n,
                    seed=task.seed,
                    **dict(task.graph_params),
                )
                for task in tasks
            ]
        if len({graph.n for graph in graphs}) != 1:
            return None  # lanes cannot interleave across node counts
        with telemetry.span("topology_compile"):
            topologies = [compile_topology(graph) for graph in graphs]
    adversaries = [first_adversary] + [
        build_adversary(
            task.adversary_kind,
            seed=task.derived_seed,
            **dict(task.adversary_params),
        )
        for task in tasks[1:]
    ]
    default_cap: Optional[int] = None
    process_lists = []
    configs = []
    for task, graph in zip(tasks, graphs):
        process_lists.append(
            make_processes(
                task.algorithm, graph.n, **dict(task.algorithm_params)
            )
        )
        max_rounds = task.max_rounds
        if max_rounds is None:
            if share:
                if default_cap is None:
                    default_cap = suggested_round_limit(
                        task.algorithm, graph
                    )
                max_rounds = default_cap
            else:
                # Per-task graphs derive per-task caps, matching the
                # per-task pipeline's derivation from each seed's graph.
                max_rounds = suggested_round_limit(task.algorithm, graph)
        configs.append(
            EngineConfig(
                collision_rule=rule,
                start_mode=StartMode(task.start_mode),
                max_rounds=max_rounds,
                seed=task.derived_seed,
                engine="vector",
                # Per-lane schedules: lockstep shares only the rule,
                # start mode and recording flag across lanes, so each
                # lane carries exactly the schedule the per-task
                # pipeline would build for it.
                churn=build_churn(
                    task.churn_kind,
                    n=graph.n,
                    rounds=max_rounds,
                    seed=task.derived_seed,
                    **dict(task.churn_params),
                ),
            )
        )
    # Bounded lane blocks: one lockstep call interleaves every lane's
    # processes and RNG states each round, so very wide cells would
    # trade all cache locality for matrix width.  Blocks are pure
    # scheduling — each lane's trace is independent.
    traces = []
    with telemetry.span("engine_run"):
        for lo in range(0, len(tasks), _LOCKSTEP_LANES):
            hi = lo + _LOCKSTEP_LANES
            traces.extend(
                run_lockstep(
                    graphs[lo:hi],
                    process_lists[lo:hi],
                    adversaries[lo:hi],
                    configs[lo:hi],
                    topology=topologies[lo:hi],
                )
            )
    return [
        _result_from(task, graph, trace, "vector")
        for task, graph, trace in zip(tasks, graphs, traces)
    ]


class SweepRunner:
    """Run one or several specs as a single fanned-out sweep.

    Args:
        specs: One :class:`ExperimentSpec` or a sequence of them (their
            task keys must be disjoint; spec names namespace the keys).
        workers: Worker process count.  ``1`` runs in-process (no pool),
            which is also the fallback when only one dispatch unit is
            pending.
        results_path: Optional results location — a JSON-lines file
            (default backend) or a campaign directory (sharded or
            columnar backend).  Existing records are loaded and their
            tasks skipped; new records are appended as they finish, so
            interrupting and re-running resumes where the sweep
            stopped.
        store: Result-store backend name (``"jsonl"``, ``"sharded"``,
            ``"columnar"``); ``None``/``"auto"`` detects from the
            path (see :func:`repro.store.detect_backend`).  A
            pre-built :class:`~repro.store.base.ResultStore` instance
            is also accepted and used as-is (``results_path`` then
            being ignored for opening).
        flush_every: Explicit durability policy forwarded to the
            store; ``None`` keeps each backend's documented default
            (jsonl flushes every record, exactly the historical
            behaviour).
        chunksize: Upper bound on dispatch units (tasks, or batches in
            batched mode) per worker dispatch.  Default: derived so
            each worker sees several chunks, balancing IPC overhead
            against stragglers; always capped at the per-worker fair
            share so a resumed sweep with few pending units spreads
            across all workers instead of serialising into one chunk.
        batch: Group pending tasks into one
            :class:`~repro.experiments.spec.CellBatch` per science cell
            (default), so workers amortise graph construction, round-cap
            derivation and engine-topology compilation across the
            cell's seeds.  ``False`` restores per-task dispatch; the
            records are identical either way.
    """

    def __init__(
        self,
        specs: Union[ExperimentSpec, Sequence[ExperimentSpec]],
        workers: int = 1,
        results_path: Optional[str] = None,
        chunksize: Optional[int] = None,
        batch: bool = True,
        store: Union[ResultStore, str, None] = None,
        flush_every: Optional[int] = None,
    ) -> None:
        """Validate the configuration and store it (see class docs)."""
        if isinstance(specs, ExperimentSpec):
            specs = [specs]
        self.specs: List[ExperimentSpec] = list(specs)
        if not self.specs:
            raise ValueError("need at least one spec")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        if flush_every is not None and flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self.workers = workers
        self.results_path = results_path
        self.chunksize = chunksize
        self.batch = batch
        self.store = store
        self.flush_every = flush_every

    def tasks(self) -> List[RunTask]:
        """The combined, ordered task list of all specs."""
        out: List[RunTask] = []
        seen: Dict[str, str] = {}
        for spec in self.specs:
            for task in spec.tasks():
                if task.key in seen:
                    raise ValueError(
                        f"duplicate task key {task.key!r} "
                        f"(specs {seen[task.key]!r} and {spec.name!r})"
                    )
                seen[task.key] = spec.name
                out.append(task)
        return out

    def fingerprint(self, tasks: Optional[List[RunTask]] = None) -> str:
        """A stable campaign fingerprint: hash of the sorted task keys.

        Written into manifest-carrying store backends so a campaign
        directory refuses records from a *different* spec instead of
        silently interleaving two campaigns.  Stable across worker
        counts, batching modes and resume histories by construction.
        """
        if tasks is None:
            tasks = self.tasks()
        keys = sorted(t.key for t in tasks)
        # A fingerprint over non-unique keys would hash colliding tasks
        # into one campaign identity; refuse before any worker runs
        # (externally-assembled task lists bypass the spec-level and
        # ``tasks()`` duplicate checks, so this is the last gate).
        dupes = sorted(
            {k for k, nxt in zip(keys, keys[1:]) if k == nxt}
        )
        if dupes:
            raise ValueError(
                f"non-unique task keys {dupes[:5]}: colliding tasks "
                "would overwrite each other's resume records"
            )
        digest = hashlib.sha256("\n".join(keys).encode("utf-8"))
        return digest.hexdigest()[:16]

    def open_store(
        self, tasks: Optional[List[RunTask]] = None
    ) -> Optional[ResultStore]:
        """The result store behind ``results_path`` (``None`` if unset).

        A pre-built store instance passed as ``store=`` is returned
        as-is; a backend name (or ``None`` for auto-detection) opens
        the path through :func:`repro.store.open_store` with this
        sweep's spec fingerprint.
        """
        if isinstance(self.store, ResultStore):
            return self.store
        if not self.results_path:
            return None
        return open_store(
            self.results_path,
            parse=RunResult.from_dict,
            backend=self.store,
            flush_every=self.flush_every,
            fingerprint=self.fingerprint(tasks),
        )

    def run(
        self, progress: Optional[ProgressCallback] = None
    ) -> SweepResult:
        """Execute all pending tasks and return the aggregated result."""
        watch = Stopwatch()
        telemetry = current()
        tasks = self.tasks()
        done: Dict[str, RunResult] = {}
        store = self.open_store(tasks)
        if store is not None:
            with telemetry.span("resume_scan"):
                on_disk = store.claim_keys()
            done = {
                t.key: on_disk[t.key] for t in tasks if t.key in on_disk
            }
        pending = [t for t in tasks if t.key not in done]

        records = dict(done)
        total = len(tasks)
        if telemetry.enabled:
            telemetry.event(
                "campaign_start",
                name=self.specs[0].name,
                total=total,
                resumed=len(done),
                workers=self.workers,
            )
        emitter = _ProgressEmitter(telemetry, total)
        try:
            for result in self._execute(pending):
                records[result.key] = result
                if store is not None:
                    with telemetry.span("store_append"):
                        store.append(result)
                if progress is not None:
                    progress(result, len(records), total)
                emitter.update(len(records))
        finally:
            if store is not None:
                with telemetry.span("store_flush"):
                    store.close()

        elapsed = watch.elapsed()
        if telemetry.enabled:
            telemetry.event(
                "campaign_end",
                done=len(records),
                total=total,
                elapsed=elapsed,
            )
            telemetry.flush()
        health = store.health if store is not None else StoreHealth()
        return SweepResult(
            records=list(records.values()),
            executed=len(pending),
            resumed=len(done),
            elapsed=elapsed,
            skipped_lines=health.skipped_lines,
            health=health,
        )

    def _dispatch_chunksize(self, n_units: int) -> int:
        """Dispatch units (tasks or batches) per pool chunk.

        Derived to give each worker several chunks — large enough to
        amortise pickling, small enough to keep stragglers short.  Both
        the derived value and an explicit ``chunksize`` are capped at
        the per-worker fair share, so a resumed sweep with only a few
        pending units (e.g. 9 pending on 2 workers) still spreads
        across every worker instead of collapsing into one oversized
        chunk and serialising.
        """
        fair_share = max(1, n_units // self.workers)
        if self.chunksize is not None:
            return min(self.chunksize, fair_share)
        return min(
            max(1, n_units // (self.workers * 8)), fair_share
        )

    def _plan_units(self, pending: Sequence[RunTask]) -> List[CellBatch]:
        """Plan the batched dispatch units for the pending tasks.

        One batch per science cell, except that with a pool in play
        oversized cells are split so the sweep always yields at least
        ~2 dispatch units per worker: a single-cell hundred-seed sweep
        must occupy every worker, not serialise into one batch.  Each
        sub-batch re-runs the cell setup once, so amortisation is
        preserved within sub-batches.
        """
        batches = plan_batches(pending)
        if self.workers <= 1 or not pending:
            return batches
        # ceil-divide: the largest batch size that still yields at
        # least workers * 2 units when cells alone are too few.
        max_size = -(-len(pending) // (self.workers * 2))
        return [
            sub for batch in batches for sub in batch.split(max_size)
        ]

    def _execute(self, pending: Sequence[RunTask]):
        """Yield one :class:`RunResult` per pending task.

        Results stream back in completion order (batched mode keeps a
        sub-batch's seeds contiguous); :meth:`run` re-establishes the
        canonical key order, so scheduling never leaks into results.
        """
        if self.batch:
            units: Sequence = self._plan_units(pending)
            run_unit = execute_batch
        else:
            units = list(pending)
            run_unit = execute_task
        if self.workers == 1 or len(units) <= 1:
            for unit in units:
                out = run_unit(unit)
                yield from out if self.batch else (out,)
            return
        chunksize = self._dispatch_chunksize(len(units))
        # Prefer fork so runtime register_graph/register_adversary
        # entries reach the workers; spawn platforms (macOS, Windows)
        # re-import the registries and only see module-level entries.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        # Spawn-started workers re-import everything and would lose the
        # campaign's sink; the initializer hands them its stream path
        # (fork workers inherit the sink and the initializer no-ops).
        sink_path = getattr(current(), "path", None)
        with ctx.Pool(
            self.workers,
            initializer=_init_worker_telemetry,
            initargs=(
                str(sink_path) if sink_path is not None else None,
            ),
        ) as pool:
            for out in pool.imap_unordered(
                run_unit, units, chunksize=chunksize
            ):
                yield from out if self.batch else (out,)


def run_sweep(
    specs: Union[ExperimentSpec, Sequence[ExperimentSpec]],
    workers: int = 1,
    results_path: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    batch: bool = True,
    store: Union[ResultStore, str, None] = None,
    flush_every: Optional[int] = None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        specs,
        workers=workers,
        results_path=results_path,
        batch=batch,
        store=store,
        flush_every=flush_every,
    ).run(progress=progress)
