"""JSON-lines persistence for sweep results.

One line per :class:`~repro.experiments.results.RunResult`, appended as
each task finishes, so an interrupted sweep leaves a valid prefix on
disk.  :func:`load_records` tolerates a torn final line (the signature
of a hard kill mid-write) by skipping anything that does not parse —
resuming then re-runs exactly the tasks whose records are missing.
"""

from __future__ import annotations

import json
import os
from typing import Dict, TextIO

from repro.experiments.results import RunResult


def load_records(path: str) -> Dict[str, RunResult]:
    """Read a results file into a ``key → RunResult`` map.

    Missing files yield an empty map; unparsable or incomplete lines are
    skipped (an interrupted run's final line may be torn).  When a key
    appears twice the later record wins.
    """
    records: Dict[str, RunResult] = {}
    if not os.path.exists(path):
        return records
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = RunResult.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError):
                continue  # torn or foreign line — re-run that task
            records[record.key] = record
    return records


def open_for_append(path: str) -> TextIO:
    """Open a results file for appending, creating parent directories.

    If the file ends mid-line (a previous run was killed mid-write), a
    newline is inserted first so the next record does not concatenate
    onto the torn line and get lost with it.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    torn_tail = False
    if os.path.exists(path) and os.path.getsize(path) > 0:
        with open(path, "rb") as existing:
            existing.seek(-1, os.SEEK_END)
            torn_tail = existing.read(1) != b"\n"
    f = open(path, "a", encoding="utf-8")
    if torn_tail:
        f.write("\n")
    return f


def append_record(f: TextIO, record: RunResult) -> None:
    """Write one record as a JSON line and flush it to disk."""
    f.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
    f.flush()
