"""Sweep-facing shims over the :mod:`repro.store` persistence layer.

Historically this module *was* the persistence implementation; the
keyed-line loader, torn-tail healing and per-record appender now live
once in :mod:`repro.store.jsonl` (shared by sweeps, searches and every
campaign backend), and this module keeps the old names working:

* :func:`load_records` / :class:`RecordMap` — the sweep resume loader.
* :func:`load_keyed_lines` — the generic keyed loader (delegates to
  :func:`repro.store.jsonl.scan_jsonl`).
* :func:`open_for_append` / :func:`append_record` — the historical
  heal-and-flush appender pair.

New code should open a :class:`repro.store.JsonlStore` (or
:func:`repro.store.open_store`) instead; these shims exist so existing
imports, result files and muscle memory keep working unchanged.
"""

from __future__ import annotations

from typing import Dict, TextIO

from repro.experiments.results import RunResult
from repro.store.base import StoreHealth
from repro.store.jsonl import (
    append_jsonl_line,
    open_for_append,
    scan_jsonl,
)

__all__ = [
    "RecordMap",
    "append_record",
    "load_keyed_lines",
    "load_records",
    "open_for_append",
]


class RecordMap(Dict[str, RunResult]):
    """A ``key → RunResult`` map that also reports load-time damage.

    Behaves exactly like the plain dict :func:`load_records` used to
    return (equality with plain dicts included), plus:

    Attributes:
        skipped: Number of non-empty lines that did not parse as
            records — torn final lines from a hard kill mid-write, or
            foreign/corrupt content — and were therefore dropped.
            Their tasks will simply be re-run, but the count is
            surfaced on :class:`~repro.experiments.results.SweepResult`
            (and logged by the CLI) instead of being swallowed.
    """

    __slots__ = ("skipped",)

    def __init__(self, *args, **kwargs) -> None:
        """Build the map; ``skipped`` starts at 0."""
        super().__init__(*args, **kwargs)
        self.skipped = 0


def load_keyed_lines(path: str, parse, records):
    """Fill a keyed record map from a JSON-lines file, counting damage.

    Thin shim over :func:`repro.store.jsonl.scan_jsonl` preserving the
    historical signature: ``records`` carries a ``.skipped`` counter
    that absorbs the scan's damage count.  Returns ``records``.
    """
    health = StoreHealth()
    scan_jsonl(path, parse, records, health)
    records.skipped += health.skipped_lines
    return records


def load_records(path: str) -> RecordMap:
    """Read a results file into a ``key → RunResult`` map.

    See :func:`repro.store.jsonl.scan_jsonl` for the damage-tolerance
    semantics (torn or foreign lines are skipped and counted; later
    duplicate keys win).
    """
    return load_keyed_lines(path, RunResult.from_dict, RecordMap())


def append_record(f: TextIO, record) -> None:
    """Write one record as a JSON line and flush it to disk.

    Works for any record exposing ``to_dict()`` (sweep results, search
    candidates).  Shim over
    :func:`repro.store.jsonl.append_jsonl_line`; stores with an
    explicit ``flush_every`` policy supersede this pair.
    """
    append_jsonl_line(f, record)
