"""JSON-lines persistence for sweep results.

One line per :class:`~repro.experiments.results.RunResult`, appended as
each task finishes, so an interrupted sweep leaves a valid prefix on
disk.  :func:`load_records` tolerates a torn final line (the signature
of a hard kill mid-write) by skipping anything that does not parse —
resuming then re-runs exactly the tasks whose records are missing.
Skipped lines are counted (:class:`RecordMap.skipped <RecordMap>`), not
silently dropped, so damaged results files are visible to callers.
"""

from __future__ import annotations

import json
import os
from typing import Dict, TextIO

from repro.experiments.results import RunResult


class RecordMap(Dict[str, RunResult]):
    """A ``key → RunResult`` map that also reports load-time damage.

    Behaves exactly like the plain dict :func:`load_records` used to
    return (equality with plain dicts included), plus:

    Attributes:
        skipped: Number of non-empty lines that did not parse as
            records — torn final lines from a hard kill mid-write, or
            foreign/corrupt content — and were therefore dropped.
            Their tasks will simply be re-run, but the count is
            surfaced on :class:`~repro.experiments.results.SweepResult`
            (and logged by the CLI) instead of being swallowed.
    """

    __slots__ = ("skipped",)

    def __init__(self, *args, **kwargs) -> None:
        """Build the map; ``skipped`` starts at 0."""
        super().__init__(*args, **kwargs)
        self.skipped = 0


def load_keyed_lines(path: str, parse, records):
    """Fill a keyed record map from a JSON-lines file, counting damage.

    The generic loop behind :func:`load_records` (and the search
    subsystem's candidate loader): ``parse`` turns one decoded JSON
    document into a record carrying a ``.key``; unparsable or
    incomplete lines — an interrupted run's final line may be torn —
    bump ``records.skipped`` instead of raising, and when a key appears
    twice the later record wins.  Missing files leave ``records``
    empty.  Returns ``records``.
    """
    if not os.path.exists(path):
        return records
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = parse(json.loads(line))
            except (ValueError, KeyError, TypeError):
                records.skipped += 1
                continue  # torn or foreign line — re-run its task
            records[record.key] = record
    return records


def load_records(path: str) -> RecordMap:
    """Read a results file into a ``key → RunResult`` map.

    See :func:`load_keyed_lines` for the damage-tolerance semantics.
    """
    return load_keyed_lines(path, RunResult.from_dict, RecordMap())


def open_for_append(path: str) -> TextIO:
    """Open a results file for appending, creating parent directories.

    If the file ends mid-line (a previous run was killed mid-write), a
    newline is inserted first so the next record does not concatenate
    onto the torn line and get lost with it.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    torn_tail = False
    if os.path.exists(path) and os.path.getsize(path) > 0:
        with open(path, "rb") as existing:
            existing.seek(-1, os.SEEK_END)
            torn_tail = existing.read(1) != b"\n"
    f = open(path, "a", encoding="utf-8")
    if torn_tail:
        f.write("\n")
    return f


def append_record(f: TextIO, record) -> None:
    """Write one record as a JSON line and flush it to disk.

    Works for any record exposing ``to_dict()`` (sweep results, search
    candidates).
    """
    f.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
    f.flush()
