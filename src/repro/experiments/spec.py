"""Declarative experiment grids.

An :class:`ExperimentSpec` names every axis of a sweep — algorithms,
graph families with sizes, adversaries, collision rules, start modes,
engines and seeds — and expands to the cross product as a deterministic,
ordered list of :class:`RunTask`\\ s.  Tasks are frozen tuples of
primitives, so they pickle cheaply across ``multiprocessing`` workers.

Invariants the rest of the subsystem builds on:

* **Stable keys** — :attr:`RunTask.key` names every input that can
  change the outcome; it is the resume-by-key handle (the same spec
  always yields the same keys in the same order), so a results file
  written by one run is a valid resume point for any later run of the
  same spec.
* **Key-derived seeds** — each task's engine seed is
  ``crc32(science_key)``: derived, not assigned, so no two grid cells
  share an RNG stream even when they share a sweep seed, and the
  derivation is independent of worker count, chunking and resume
  history (``zlib.crc32`` is stable across processes and Python
  versions, unlike ``hash``).
* **Engine neutrality** — the ``engine`` axis selects an
  *implementation* (reference or bitmask fast path), not an experiment
  input.  It is part of :attr:`RunTask.key` (records of different
  engines never collide in a results file) but excluded from
  :attr:`RunTask.science_key`, which seeds the run — so the same grid
  cell produces the identical trace under either engine, a property
  ``tests/test_fast_engine_equivalence.py`` asserts.

* **Cell grouping** — :attr:`RunTask.cell_key` names every axis
  *except* the seed.  :func:`plan_batches` groups an ordered task list
  into one :class:`CellBatch` per cell so the runner's batched path can
  build each cell's graph and compiled engine topology once and run
  all of its seeds against them; batching is pure scheduling and never
  changes keys, seeds or records.

Specs serialise to/from JSON (``to_dict`` / ``from_dict`` /
:func:`load_specs`) so sweeps are reproducible from a committed file and
shell history alone; the format is documented field by field in
``docs/SWEEP_SPECS.md``.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.sim.collision import CollisionRule
from repro.sim.engine import ENGINE_NAMES, StartMode

Params = Tuple[Tuple[str, Any], ...]


def _freeze_params(params: Optional[Union[dict, Params]]) -> Params:
    if not params:
        return ()
    if isinstance(params, tuple):
        return params
    return tuple(sorted(params.items()))


def _fmt_params(params: Params) -> str:
    if not params:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in params)
    return f"({inner})"


@dataclass(frozen=True)
class AlgorithmSpec:
    """One algorithm axis entry: a registered name plus factory params."""

    name: str
    params: Params = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_params(self.params))

    @property
    def label(self) -> str:
        """Human-readable axis label, e.g. ``harmonic(T=4)``."""
        return f"{self.name}{_fmt_params(self.params)}"


@dataclass(frozen=True)
class GraphSpec:
    """One graph axis entry: a registered kind, a size and params."""

    kind: str
    n: int
    params: Params = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_params(self.params))

    @property
    def label(self) -> str:
        """Human-readable axis label, e.g. ``line:n16``."""
        return f"{self.kind}:n{self.n}{_fmt_params(self.params)}"


@dataclass(frozen=True)
class AdversarySpec:
    """One adversary axis entry: a registered kind plus params."""

    kind: str = "none"
    params: Params = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_params(self.params))

    @property
    def label(self) -> str:
        """Human-readable axis label, e.g. ``random(p=0.5)``."""
        return f"{self.kind}{_fmt_params(self.params)}"


@dataclass(frozen=True)
class ChurnSpec:
    """One fault-injection axis entry: a registered kind plus params.

    ``kind="none"`` (the default) is the failure-free run; other kinds
    are resolved by :mod:`repro.experiments.registry` into a
    :class:`~repro.sim.faults.ChurnSchedule` built from the task's
    derived seed, so the schedule is reproducible from the spec alone.
    """

    kind: str = "none"
    params: Params = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_params(self.params))

    @property
    def label(self) -> str:
        """Human-readable axis label, e.g. ``rate(crash_rate=0.02)``."""
        return f"{self.kind}{_fmt_params(self.params)}"


@dataclass(frozen=True)
class RunTask:
    """One fully-specified execution: a single cell of the sweep grid.

    Everything is a primitive (or tuple of primitives), so tasks pickle
    across process boundaries without dragging live objects along.
    """

    sweep: str
    algorithm: str
    algorithm_params: Params
    graph_kind: str
    n: int
    graph_params: Params
    adversary_kind: str
    adversary_params: Params
    collision_rule: str
    start_mode: str
    seed: int
    max_rounds: Optional[int] = None
    engine: str = "reference"
    churn_kind: str = "none"
    churn_params: Params = ()

    def _key_parts(self, with_seed: bool) -> List[str]:
        """The shared key-segment list behind every key flavour.

        One builder keeps :attr:`science_key`, :attr:`key` and
        :attr:`cell_key` from drifting apart when a grid axis is added:
        a new axis lands in all of them (or in none) by construction.
        """
        parts = [
            self.sweep,
            f"{self.algorithm}{_fmt_params(self.algorithm_params)}",
            f"{self.graph_kind}:n{self.n}"
            f"{_fmt_params(self.graph_params)}",
            f"{self.adversary_kind}"
            f"{_fmt_params(self.adversary_params)}",
            f"{self.collision_rule}-{self.start_mode}",
        ]
        # The churn segment appears only for fault-injected tasks, so
        # every key of every pre-churn sweep is unchanged and old
        # results files remain valid resume points.
        if self.churn_kind != "none":
            parts.append(
                f"churn-{self.churn_kind}"
                f"{_fmt_params(self.churn_params)}"
            )
        if with_seed:
            parts.append(f"s{self.seed}")
        if self.max_rounds is not None:
            parts.append(f"cap{self.max_rounds}")
        return parts

    @property
    def science_key(self) -> str:
        """The key of the *experiment inputs* only — engine excluded.

        Two tasks differing only in ``engine`` share a science key and
        therefore a derived seed: the engine is an implementation
        choice, proven trace-equivalent, and must not change results.
        """
        return "/".join(self._key_parts(with_seed=True))

    @property
    def key(self) -> str:
        """Stable identifier used for persistence and resume.

        Every input that can change the outcome is part of the key —
        including an explicit round cap, so editing ``max_rounds`` in a
        spec invalidates old records instead of silently resuming them.
        The engine is appended only when it is not the reference engine,
        keeping keys (and results files) from older sweeps valid.
        """
        key = self.science_key
        if self.engine != "reference":
            key = f"{key}/eng-{self.engine}"
        return key

    @property
    def cell_key(self) -> str:
        """The task's *science cell*: every key input except the seed.

        Tasks sharing a cell key differ only in their sweep seed, so a
        worker can build the cell's graph, round cap and compiled
        engine topology once and run all of the cell's seeds against
        them (:func:`plan_batches` /
        :func:`repro.experiments.runner.execute_batch`).  This is a
        grouping handle only — persistence and resume stay keyed by
        the per-seed :attr:`key`.
        """
        parts = self._key_parts(with_seed=False)
        if self.engine != "reference":
            parts.append(f"eng-{self.engine}")
        return "/".join(parts)

    @property
    def derived_seed(self) -> int:
        """Engine seed derived from the task's science key.

        ``zlib.crc32`` is stable across processes and Python versions
        (unlike ``hash``), so the derivation is reproducible no matter
        how the grid is partitioned over workers.  Deriving from
        :attr:`science_key` rather than :attr:`key` makes the seed —
        and hence the run — independent of the engine choice.
        """
        return zlib.crc32(self.science_key.encode("utf-8"))


@dataclass(frozen=True)
class CellBatch:
    """All pending tasks of one science cell, dispatched as one unit.

    The tasks share every grid axis except the seed (validated at
    construction), in their original spec order.  A batch is a frozen
    tuple of primitives like the tasks themselves, so it pickles
    cheaply to ``multiprocessing`` workers, where
    :func:`repro.experiments.runner.execute_batch` builds the cell's
    shared setup once and runs the seed loop against it.
    """

    tasks: Tuple[RunTask, ...]

    def __post_init__(self) -> None:
        """Freeze the task tuple and reject mixed-cell batches."""
        object.__setattr__(self, "tasks", tuple(self.tasks))
        if not self.tasks:
            raise ValueError("a batch needs at least one task")
        cells = {t.cell_key for t in self.tasks}
        if len(cells) != 1:
            raise ValueError(
                f"batch mixes science cells: {sorted(cells)}"
            )

    @property
    def cell_key(self) -> str:
        """The science cell shared by every task in the batch."""
        return self.tasks[0].cell_key

    def split(self, max_size: int) -> List["CellBatch"]:
        """Chop the batch into sub-batches of at most ``max_size`` tasks.

        A sweep with fewer cells than workers would otherwise collapse
        onto too few dispatch units and serialise; sub-batches trade a
        few repeated per-cell setups for full worker occupancy (each
        sub-batch still amortises setup over its own seeds).  Task
        order is preserved across the returned batches.
        """
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        return [
            CellBatch(self.tasks[i:i + max_size])
            for i in range(0, len(self.tasks), max_size)
        ]

    def __len__(self) -> int:
        return len(self.tasks)


def plan_batches(tasks: Sequence[RunTask]) -> List[CellBatch]:
    """Group an ordered task list into one :class:`CellBatch` per cell.

    Batches appear in the order their cells first appear in ``tasks``,
    and each batch keeps its tasks in input order — so for a freshly
    expanded spec every batch is the cell's seed axis in seed order,
    while a resumed sweep yields batches holding only the missing
    seeds.
    """
    groups: Dict[str, List[RunTask]] = {}
    seen_keys: set = set()
    for task in tasks:
        # A key collision here means two tasks would overwrite each
        # other's records and silently satisfy each other's resume
        # check — fail loudly before any work is dispatched.
        if task.key in seen_keys:
            raise ValueError(
                f"duplicate task key {task.key!r}: two tasks would "
                "share one resume-by-key record"
            )
        seen_keys.add(task.key)
        groups.setdefault(task.cell_key, []).append(task)
    return [CellBatch(tuple(group)) for group in groups.values()]


def _coerce_algorithm(entry) -> AlgorithmSpec:
    if isinstance(entry, AlgorithmSpec):
        return entry
    if isinstance(entry, str):
        return AlgorithmSpec(entry)
    if isinstance(entry, (tuple, list)) and len(entry) == 2:
        return AlgorithmSpec(entry[0], _freeze_params(entry[1]))
    if isinstance(entry, dict):
        return AlgorithmSpec(
            entry["name"], _freeze_params(entry.get("params"))
        )
    raise TypeError(f"cannot interpret algorithm entry {entry!r}")


def _coerce_graph(entry) -> List[GraphSpec]:
    if isinstance(entry, GraphSpec):
        return [entry]
    if isinstance(entry, (tuple, list)) and len(entry) in (2, 3):
        kind, n = entry[0], entry[1]
        params = _freeze_params(entry[2] if len(entry) == 3 else None)
        return [GraphSpec(kind, int(n), params)]
    if isinstance(entry, dict):
        params = _freeze_params(entry.get("params"))
        sizes = entry.get("sizes", [entry["n"]] if "n" in entry else None)
        if sizes is None:
            raise ValueError(
                f"graph entry {entry!r} needs 'n' or 'sizes'"
            )
        return [GraphSpec(entry["kind"], int(n), params) for n in sizes]
    raise TypeError(f"cannot interpret graph entry {entry!r}")


def _coerce_adversary(entry) -> AdversarySpec:
    if isinstance(entry, AdversarySpec):
        return entry
    if isinstance(entry, str):
        return AdversarySpec(entry)
    if isinstance(entry, (tuple, list)) and len(entry) == 2:
        return AdversarySpec(entry[0], _freeze_params(entry[1]))
    if isinstance(entry, dict):
        return AdversarySpec(
            entry["kind"], _freeze_params(entry.get("params"))
        )
    raise TypeError(f"cannot interpret adversary entry {entry!r}")


def _coerce_churn(entry) -> ChurnSpec:
    if isinstance(entry, ChurnSpec):
        return entry
    if isinstance(entry, str):
        return ChurnSpec(entry)
    if isinstance(entry, (tuple, list)) and len(entry) == 2:
        return ChurnSpec(entry[0], _freeze_params(entry[1]))
    if isinstance(entry, dict):
        return ChurnSpec(
            entry["kind"], _freeze_params(entry.get("params"))
        )
    raise TypeError(f"cannot interpret churn entry {entry!r}")


def _coerce_rule(entry) -> str:
    if isinstance(entry, CollisionRule):
        return entry.name
    name = str(entry).upper()
    if name not in CollisionRule.__members__:
        raise ValueError(
            f"unknown collision rule {entry!r}; "
            f"known: {list(CollisionRule.__members__)}"
        )
    return name


def _coerce_mode(entry) -> str:
    if isinstance(entry, StartMode):
        return entry.value
    value = str(entry).lower()
    StartMode(value)  # raises ValueError on unknown modes
    return value


def _coerce_engine(entry) -> str:
    value = str(entry).lower()
    if value not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {entry!r}; known: {list(ENGINE_NAMES)}"
        )
    return value


def _coerce_seeds(entry) -> Tuple[int, ...]:
    if isinstance(entry, dict):
        start = int(entry.get("start", 0))
        count = int(entry["count"])
        return tuple(range(start, start + count))
    if isinstance(entry, int):
        return (entry,)
    return tuple(int(s) for s in entry)


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative sweep grid.

    The task list is the cross product
    ``algorithms × graphs × adversaries × collision_rules × start_modes
    × engines × churns × seeds`` in that (deterministic) nesting order.

    Axis entries accept light-weight shorthands::

        ExperimentSpec(
            name="demo",
            algorithms=["round_robin", ("harmonic", {"T": 4})],
            graphs=[("clique-bridge", n) for n in (9, 17, 33)],
            adversaries=["greedy"],
            seeds=range(5),
        )

    ``max_rounds=None`` lets each task fall back to the algorithm's
    proven-bound limit (:func:`repro.core.runner.suggested_round_limit`).

    ``engines`` selects the execution engine implementation per task:
    ``"reference"`` or ``"fast"`` (the bitmask engine, used when the
    task's collision-rule/adversary combination is eligible and silently
    downgraded to the reference engine otherwise — results are identical
    either way).
    """

    name: str
    algorithms: Tuple[AlgorithmSpec, ...]
    graphs: Tuple[GraphSpec, ...]
    adversaries: Tuple[AdversarySpec, ...] = (AdversarySpec("none"),)
    collision_rules: Tuple[str, ...] = ("CR4",)
    start_modes: Tuple[str, ...] = ("asynchronous",)
    engines: Tuple[str, ...] = ("reference",)
    churns: Tuple[ChurnSpec, ...] = (ChurnSpec("none"),)
    seeds: Tuple[int, ...] = (0,)
    max_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "algorithms",
            tuple(_coerce_algorithm(a) for a in self.algorithms),
        )
        graphs: List[GraphSpec] = []
        for entry in self.graphs:
            graphs.extend(_coerce_graph(entry))
        object.__setattr__(self, "graphs", tuple(graphs))
        object.__setattr__(
            self,
            "adversaries",
            tuple(_coerce_adversary(a) for a in self.adversaries),
        )
        object.__setattr__(
            self,
            "collision_rules",
            tuple(_coerce_rule(r) for r in self.collision_rules),
        )
        object.__setattr__(
            self,
            "start_modes",
            tuple(_coerce_mode(m) for m in self.start_modes),
        )
        object.__setattr__(
            self,
            "engines",
            tuple(_coerce_engine(e) for e in self.engines),
        )
        object.__setattr__(
            self,
            "churns",
            tuple(_coerce_churn(c) for c in self.churns),
        )
        object.__setattr__(self, "seeds", _coerce_seeds(self.seeds))
        if not (
            self.algorithms
            and self.graphs
            and self.adversaries
            and self.collision_rules
            and self.start_modes
            and self.engines
            and self.churns
            and self.seeds
        ):
            raise ValueError(
                "spec needs at least one entry on every axis "
                "(algorithms, graphs, adversaries, collision_rules, "
                "start_modes, engines, churns, seeds)"
            )
        # Repeated axis entries expand to tasks with identical keys, so
        # they would overwrite each other's records and make a resumed
        # sweep report completion after running only the unique cells.
        # Reject them at construction with the offending entries named.
        self._reject_duplicates("seeds", self.seeds, str)
        self._reject_duplicates(
            "algorithms", self.algorithms, lambda a: a.label
        )
        self._reject_duplicates(
            "graphs", self.graphs, lambda g: g.label
        )
        self._reject_duplicates(
            "adversaries", self.adversaries, lambda a: a.label
        )
        self._reject_duplicates(
            "collision_rules", self.collision_rules, str
        )
        self._reject_duplicates("start_modes", self.start_modes, str)
        self._reject_duplicates("engines", self.engines, str)
        self._reject_duplicates(
            "churns", self.churns, lambda c: c.label
        )

    def _reject_duplicates(self, axis, entries, label) -> None:
        """Raise if an axis repeats an entry (keys would collide)."""
        seen: set = set()
        dupes: List[str] = []
        for entry in entries:
            if entry in seen:
                dupes.append(label(entry))
            seen.add(entry)
        if dupes:
            raise ValueError(
                f"spec {self.name!r}: duplicate {axis} "
                f"entries {dupes} — repeated entries collapse onto "
                "one resume key and silently shrink the sweep"
            )

    # ------------------------------------------------------------------
    # Grid expansion
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of tasks the grid expands to."""
        return (
            len(self.algorithms)
            * len(self.graphs)
            * len(self.adversaries)
            * len(self.collision_rules)
            * len(self.start_modes)
            * len(self.engines)
            * len(self.churns)
            * len(self.seeds)
        )

    def tasks(self) -> List[RunTask]:
        """Expand the grid to its ordered task list."""
        out: List[RunTask] = []
        for alg in self.algorithms:
            for graph in self.graphs:
                for adv in self.adversaries:
                    for rule in self.collision_rules:
                        for mode in self.start_modes:
                            for engine in self.engines:
                                for churn in self.churns:
                                    for seed in self.seeds:
                                        out.append(
                                            RunTask(
                                                sweep=self.name,
                                                algorithm=alg.name,
                                                algorithm_params=(
                                                    alg.params
                                                ),
                                                graph_kind=graph.kind,
                                                n=graph.n,
                                                graph_params=(
                                                    graph.params
                                                ),
                                                adversary_kind=adv.kind,
                                                adversary_params=(
                                                    adv.params
                                                ),
                                                collision_rule=rule,
                                                start_mode=mode,
                                                seed=seed,
                                                max_rounds=(
                                                    self.max_rounds
                                                ),
                                                engine=engine,
                                                churn_kind=churn.kind,
                                                churn_params=(
                                                    churn.params
                                                ),
                                            )
                                        )
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The spec as a JSON-serialisable document (see ``from_dict``)."""
        return {
            "name": self.name,
            "algorithms": [
                {"name": a.name, "params": dict(a.params)}
                for a in self.algorithms
            ],
            "graphs": [
                {"kind": g.kind, "n": g.n, "params": dict(g.params)}
                for g in self.graphs
            ],
            "adversaries": [
                {"kind": a.kind, "params": dict(a.params)}
                for a in self.adversaries
            ],
            "collision_rules": list(self.collision_rules),
            "start_modes": list(self.start_modes),
            "engines": list(self.engines),
            "churns": [
                {"kind": c.kind, "params": dict(c.params)}
                for c in self.churns
            ],
            "seeds": list(self.seeds),
            "max_rounds": self.max_rounds,
        }

    _FIELDS = (
        "name",
        "algorithms",
        "graphs",
        "adversaries",
        "collision_rules",
        "start_modes",
        "engines",
        "churns",
        "seeds",
        "max_rounds",
    )

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ExperimentSpec":
        """Build a spec from a JSON document, rejecting unknown fields."""
        unknown = sorted(set(doc) - set(cls._FIELDS))
        if unknown:
            raise ValueError(
                f"unknown spec field(s) {unknown}; known: "
                f"{list(cls._FIELDS)}"
            )
        return cls(
            name=doc["name"],
            algorithms=doc["algorithms"],
            graphs=doc["graphs"],
            adversaries=doc.get("adversaries", ["none"]),
            collision_rules=doc.get("collision_rules", ["CR4"]),
            start_modes=doc.get("start_modes", ["asynchronous"]),
            engines=doc.get("engines", ["reference"]),
            churns=doc.get("churns", ["none"]),
            seeds=doc.get("seeds", [0]),
            max_rounds=doc.get("max_rounds"),
        )


def load_specs(path: str) -> List[ExperimentSpec]:
    """Load one spec or a list of specs from a JSON file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        doc = [doc]
    return [ExperimentSpec.from_dict(d) for d in doc]
