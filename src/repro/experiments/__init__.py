"""Declarative parallel experiment sweeps.

The subsystem turns the paper's ensemble claims — statements over grids
of (graph × algorithm × adversary × seed) configurations — into a
first-class workload::

    from repro.experiments import ExperimentSpec, run_sweep

    spec = ExperimentSpec(
        name="demo",
        algorithms=[("harmonic", {"T": 4}), "round_robin"],
        graphs=[("clique-bridge", n) for n in (9, 17, 33)],
        adversaries=["greedy"],
        seeds=range(5),
    )
    result = run_sweep(spec, workers=4, results_path="results/demo.jsonl")
    print(result.summarize_by("n"))

Sweeps fan out over ``multiprocessing``, persist each finished run as a
JSON line, and resume by key after interruption.  Records are
deterministic: the same spec yields identical results for any worker
count.
"""

from repro.experiments.registry import (
    adversary_descriptions,
    adversary_kinds,
    build_adversary,
    build_churn,
    build_graph,
    churn_descriptions,
    churn_kinds,
    graph_descriptions,
    graph_kinds,
    graph_seed_dependent,
    register_adversary,
    register_churn,
    register_graph,
)
from repro.experiments.results import RunResult, SweepResult
from repro.experiments.runner import (
    SweepRunner,
    execute_batch,
    execute_task,
    run_sweep,
)
from repro.experiments.spec import (
    AdversarySpec,
    AlgorithmSpec,
    CellBatch,
    ChurnSpec,
    ExperimentSpec,
    GraphSpec,
    RunTask,
    load_specs,
    plan_batches,
)

__all__ = [
    "AdversarySpec",
    "AlgorithmSpec",
    "CellBatch",
    "ChurnSpec",
    "ExperimentSpec",
    "GraphSpec",
    "RunResult",
    "RunTask",
    "SweepResult",
    "SweepRunner",
    "adversary_descriptions",
    "adversary_kinds",
    "build_adversary",
    "build_churn",
    "build_graph",
    "churn_descriptions",
    "churn_kinds",
    "execute_batch",
    "execute_task",
    "graph_descriptions",
    "graph_kinds",
    "graph_seed_dependent",
    "load_specs",
    "plan_batches",
    "register_adversary",
    "register_churn",
    "register_graph",
    "run_sweep",
]
