"""Typed results of sweep runs and their aggregation queries.

A :class:`RunResult` is the deterministic outcome of one
:class:`~repro.experiments.spec.RunTask` — it deliberately carries no
wall-clock timing, so the same task always produces the *identical*
record no matter which worker ran it or whether it was resumed from
disk.  :class:`SweepResult` holds the ordered record list plus run
bookkeeping (how many tasks executed vs. were resumed) and the
aggregation queries the benches and the CLI render from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.stats import Summary, quantile, summarize
from repro.store.base import StoreHealth


@dataclass(frozen=True)
class RunResult:
    """The outcome of one sweep task.

    Attributes:
        key: The task's stable identifier (resume-by-key handle).
        sweep: Name of the spec the task came from.
        algorithm: Registered algorithm name.
        graph_kind: Registered graph kind.
        n: Requested network size (the factory may round it up; ``graph_n``
            is the size actually built).
        graph_n: Number of nodes in the instantiated network.
        adversary_kind: Registered adversary kind.
        collision_rule: ``"CR1"`` … ``"CR4"``.
        start_mode: ``"synchronous"`` or ``"asynchronous"``.
        seed: The sweep seed of the task (the engine runs on a seed
            derived from the task key).
        completed: Whether broadcast finished within the round cap.
        completion_round: Round by which all processes were informed
            (``None`` if the cap was hit first).
        rounds: Rounds executed.
        total_transmissions: Sum of per-round sender counts.
        engine: The engine that actually executed the task
            (``"reference"`` or ``"fast"``) — informational only, since
            the engines are trace-equivalent; a task requesting the fast
            engine records ``"reference"`` when its combination was
            ineligible and fell back.
        churn_kind: The fault-injection kind the task ran under
            (``"none"`` for failure-free runs).  A science axis, not
            bookkeeping: reports keep churn records out of the
            failure-free tables and render them separately.
    """

    key: str
    sweep: str
    algorithm: str
    graph_kind: str
    n: int
    graph_n: int
    adversary_kind: str
    collision_rule: str
    start_mode: str
    seed: int
    completed: bool
    completion_round: Optional[int]
    rounds: int
    total_transmissions: int
    engine: str = "reference"
    churn_kind: str = "none"

    def to_dict(self) -> Dict[str, Any]:
        """The record as one JSON-lines document (see ``from_dict``)."""
        return {
            "key": self.key,
            "sweep": self.sweep,
            "algorithm": self.algorithm,
            "graph_kind": self.graph_kind,
            "n": self.n,
            "graph_n": self.graph_n,
            "adversary_kind": self.adversary_kind,
            "collision_rule": self.collision_rule,
            "start_mode": self.start_mode,
            "seed": self.seed,
            "completed": self.completed,
            "completion_round": self.completion_round,
            "rounds": self.rounds,
            "total_transmissions": self.total_transmissions,
            "engine": self.engine,
            "churn_kind": self.churn_kind,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "RunResult":
        """Rebuild a record from its JSON-lines document."""
        return cls(
            key=doc["key"],
            sweep=doc["sweep"],
            algorithm=doc["algorithm"],
            graph_kind=doc["graph_kind"],
            n=int(doc["n"]),
            graph_n=int(doc["graph_n"]),
            adversary_kind=doc["adversary_kind"],
            collision_rule=doc["collision_rule"],
            start_mode=doc["start_mode"],
            seed=int(doc["seed"]),
            completed=bool(doc["completed"]),
            completion_round=(
                None
                if doc["completion_round"] is None
                else int(doc["completion_round"])
            ),
            rounds=int(doc["rounds"]),
            total_transmissions=int(doc["total_transmissions"]),
            engine=doc.get("engine", "reference"),
            churn_kind=doc.get("churn_kind", "none"),
        )


@dataclass
class SweepResult:
    """All records of one sweep invocation, key-sorted.

    Attributes:
        records: One :class:`RunResult` per task, sorted by key — the
            order is independent of worker count and resume history.
        executed: Tasks actually run by this invocation.
        resumed: Tasks whose records were loaded from a results file.
        elapsed: Wall-clock seconds of this invocation (excluded from
            equality: two runs of the same spec compare equal).
        skipped_lines: Torn or foreign lines the results file held that
            did not parse as records and were dropped on load (their
            tasks were re-run).  Bookkeeping like ``elapsed``, excluded
            from equality; the CLI logs it so damaged results files
            are visible instead of silently healed.  Kept as a plain
            int for backward compatibility — it mirrors
            ``health.skipped_lines``.
        health: The result store's full
            :class:`~repro.store.base.StoreHealth` damage report
            (skipped lines plus validator-rejected records), uniform
            across every backend.
    """

    records: List[RunResult]
    executed: int = 0
    resumed: int = 0
    elapsed: float = field(default=0.0, compare=False)
    skipped_lines: int = field(default=0, compare=False)
    health: StoreHealth = field(
        default_factory=StoreHealth, compare=False
    )

    def __post_init__(self) -> None:
        self.records = sorted(self.records, key=lambda r: r.key)
        # Keep the legacy counter and the health report coherent no
        # matter which one the caller supplied.
        if self.skipped_lines and not self.health.skipped_lines:
            self.health.skipped_lines = self.skipped_lines
        elif self.health.skipped_lines and not self.skipped_lines:
            self.skipped_lines = self.health.skipped_lines

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def filter(self, **attrs) -> "SweepResult":
        """Records whose attributes equal every given value.

        Example: ``result.filter(sweep="dual", algorithm="harmonic")``.
        """
        kept = [
            r
            for r in self.records
            if all(getattr(r, k) == v for k, v in attrs.items())
        ]
        return SweepResult(kept, elapsed=self.elapsed)

    def group_by(
        self, attr: str
    ) -> Dict[Any, "SweepResult"]:
        """Partition the records by one attribute, in sorted key order."""
        groups: Dict[Any, List[RunResult]] = {}
        for r in self.records:
            groups.setdefault(getattr(r, attr), []).append(r)
        return {
            value: SweepResult(records)
            for value, records in sorted(groups.items())
        }

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    @property
    def failures(self) -> List[RunResult]:
        """Records whose execution hit the round cap."""
        return [r for r in self.records if not r.completed]

    @property
    def failure_count(self) -> int:
        """Number of records that hit the round cap."""
        return len(self.failures)

    def completion_rounds(self) -> List[int]:
        """Completion rounds of the completed records."""
        return [
            r.completion_round
            for r in self.records
            if r.completed and r.completion_round is not None
        ]

    def summarize_completion(self) -> Summary:
        """Five-number summary of the completion rounds."""
        return summarize(self.completion_rounds())

    def completion_quantile(self, q: float) -> float:
        """The ``q``-quantile of the completion rounds."""
        return quantile(self.completion_rounds(), q)

    def summarize_by(self, attr: str) -> Dict[Any, Summary]:
        """Per-group completion summaries, e.g. ``summarize_by("n")``."""
        return {
            value: group.summarize_completion()
            for value, group in self.group_by(attr).items()
            if group.completion_rounds()
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def table_rows(self) -> List[List[Any]]:
        """Rows for the standard sweep table: one per
        (sweep, algorithm, graph, n) group, with completion summary and
        failure count."""
        groups: Dict[tuple, List[RunResult]] = {}
        for r in self.records:
            groups.setdefault(
                (r.sweep, r.algorithm, r.graph_kind, r.n), []
            ).append(r)
        rows: List[List[Any]] = []
        for (sweep, alg, graph, n), recs in sorted(groups.items()):
            sub = SweepResult(recs)
            rounds = sub.completion_rounds()
            rows.append(
                [
                    sweep,
                    alg,
                    graph,
                    n,
                    summarize(rounds).format() if rounds else "—",
                    sub.failure_count,
                ]
            )
        return rows

    TABLE_HEADER = [
        "sweep",
        "algorithm",
        "graph",
        "n",
        "completion rounds",
        "capped",
    ]
