"""Name-based factories for the pieces of a sweep grid.

Sweep tasks cross process boundaries (``multiprocessing`` workers), so an
:class:`~repro.experiments.spec.ExperimentSpec` cannot hold live graph or
adversary objects — it names them.  Workers resolve the names through the
registries below, which therefore define the vocabulary of spec files.

Graph factories take ``(n, seed, **params)`` and return a
:class:`~repro.graphs.dualgraph.DualGraph`; adversary factories take
``(seed, **params)`` and return an
:class:`~repro.adversaries.base.Adversary`; churn factories take
``(n, rounds, seed, **params)`` and return a
:class:`~repro.sim.faults.ChurnSchedule` (or ``None`` for the
failure-free ``"none"`` kind).  All registries are extensible via
:func:`register_graph` / :func:`register_adversary` /
:func:`register_churn`.
Runtime registrations reach sweep workers on platforms with the
``fork`` start method (Linux, which the runner prefers); on
spawn-only platforms (Windows) workers re-import this module, so
custom kinds must be registered at import time of a module the
workers also import — or run with ``workers=1``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.adversaries import (
    Adversary,
    FullDeliveryAdversary,
    GreedyInterferer,
    NoDeliveryAdversary,
    PivotAdversary,
    RandomDeliveryAdversary,
)
from repro.graphs import (
    clique_bridge,
    gnp_dual,
    gray_zone,
    grid,
    layered_pairs,
    line,
    pivot_layers_for_n,
    ring,
    with_complete_unreliable,
)
from repro.graphs.dualgraph import DualGraph
from repro.sim.faults import ChurnSchedule, generate_churn, window_churn

GraphFactory = Callable[..., DualGraph]
AdversaryFactory = Callable[..., Adversary]
ChurnFactory = Callable[..., Optional[ChurnSchedule]]

_GRAPHS: Dict[str, GraphFactory] = {
    "gnp": lambda n, seed, **kw: gnp_dual(n, seed=seed, **kw),
    "line": lambda n, seed, **kw: line(n),
    "hard-line": lambda n, seed, **kw: with_complete_unreliable(line(n)),
    "ring": lambda n, seed, **kw: ring(max(3, n)),
    "grid": lambda n, seed, **kw: grid(
        max(2, int(n**0.5)), max(2, int(n**0.5))
    ),
    "gray-zone": lambda n, seed, **kw: gray_zone(n, seed=seed, **kw)[0],
    "clique-bridge": lambda n, seed, **kw: clique_bridge(max(3, n)).graph,
    "clique-bridge-classical": lambda n, seed, **kw: clique_bridge(
        max(3, n)
    ).graph.classical_projection(),
    "layered-pairs": lambda n, seed, **kw: layered_pairs(
        n if n % 2 else n + 1
    ).graph,
    "pivot-layers": lambda n, seed, **kw: pivot_layers_for_n(n).graph,
}

#: Graph kinds whose factory output depends on the ``seed`` argument.
#: Cells over these kinds cannot share one graph across their seeds, so
#: the batched sweep path rebuilds per seed — the vector cell still
#: runs lockstep, with one graph (and compiled topology) per lane
#: (every other built-in kind ignores the seed and is safely shared).
_SEED_DEPENDENT_GRAPHS = {"gnp", "gray-zone"}

_ADVERSARIES: Dict[str, AdversaryFactory] = {
    "none": lambda seed, **kw: NoDeliveryAdversary(),
    "full": lambda seed, **kw: FullDeliveryAdversary(),
    "random": lambda seed, p=0.5, **kw: RandomDeliveryAdversary(
        p, seed=seed
    ),
    "greedy": lambda seed, **kw: GreedyInterferer(),
    "pivot": lambda seed, n, **kw: PivotAdversary(
        pivot_layers_for_n(int(n))
    ),
}

#: One-line descriptions rendered by ``repro list`` (and any other
#: discoverability surface).  Registered custom kinds may supply their
#: own via ``register_graph`` / ``register_adversary``.
_GRAPH_DESCRIPTIONS: Dict[str, str] = {
    "gnp": "Erdős–Rényi dual graph (seed-dependent)",
    "line": "path graph, reliable edges only",
    "hard-line": "path graph with complete unreliable overlay",
    "ring": "cycle graph, reliable edges only",
    "grid": "~sqrt(n) x sqrt(n) grid, reliable edges only",
    "gray-zone": "geometric graph with unreliable gray zone (seeded)",
    "clique-bridge": "Theorem 2 network: clique + bridge + receiver",
    "clique-bridge-classical": "clique-bridge projected to G = G'",
    "layered-pairs": "Theorem 12 network: source + width-2 layers",
    "pivot-layers": "Theorem 11 stand-in: hidden-pivot layer chain",
}

_ADVERSARY_DESCRIPTIONS: Dict[str, str] = {
    "none": "never delivers on unreliable links",
    "full": "always delivers on every unreliable link",
    "random": "delivers each unreliable edge with probability p",
    "greedy": "GreedyInterferer: collides lone reliable receptions",
    "pivot": "PivotAdversary: blankets the next pivot layer (needs n)",
}

#: Churn factories take ``(n, rounds, seed, **params)``.  ``rounds`` is
#: the task's *resolved* round cap, so rate-based schedules cover the
#: whole horizon a run can reach; the seed is the task's key-derived
#: seed, making every schedule reproducible from the spec alone.
_CHURNS: Dict[str, ChurnFactory] = {
    "none": lambda n, rounds, seed, **kw: None,
    "rate": lambda n, rounds, seed, **kw: generate_churn(
        n, rounds, seed=seed, **kw
    ),
    "window": lambda n, rounds, seed, **kw: window_churn(n, **kw),
}

_CHURN_DESCRIPTIONS: Dict[str, str] = {
    "none": "failure-free run (no fault injection)",
    "rate": "per-round crash/recover coin flips (crash_rate, "
    "recover_rate, rejoin)",
    "window": "count nodes down from round start for length rounds "
    "(count, start, length, rejoin)",
}


def graph_kinds() -> List[str]:
    """The registered graph-kind names."""
    return sorted(_GRAPHS)


def adversary_kinds() -> List[str]:
    """The registered adversary-kind names."""
    return sorted(_ADVERSARIES)


def churn_kinds() -> List[str]:
    """The registered churn-kind names."""
    return sorted(_CHURNS)


def graph_descriptions() -> Dict[str, str]:
    """One-line description per registered graph kind (may be empty)."""
    return {
        kind: _GRAPH_DESCRIPTIONS.get(kind, "") for kind in graph_kinds()
    }


def adversary_descriptions() -> Dict[str, str]:
    """One-line description per registered adversary kind."""
    return {
        kind: _ADVERSARY_DESCRIPTIONS.get(kind, "")
        for kind in adversary_kinds()
    }


def churn_descriptions() -> Dict[str, str]:
    """One-line description per registered churn kind."""
    return {
        kind: _CHURN_DESCRIPTIONS.get(kind, "")
        for kind in churn_kinds()
    }


def register_graph(
    kind: str,
    factory: GraphFactory,
    seed_dependent: bool = True,
    description: str = "",
) -> None:
    """Register a graph factory ``factory(n, seed, **params)``.

    ``seed_dependent`` declares whether the factory's output varies
    with the ``seed`` argument.  It defaults to ``True`` — the safe
    choice, which makes batched sweeps rebuild the graph per seed —
    and should be passed as ``False`` only for factories that ignore
    the seed, unlocking per-cell graph/topology reuse.  ``description``
    is the one-liner ``repro list`` prints for the kind.
    """
    if kind in _GRAPHS:
        raise ValueError(f"graph kind {kind!r} already registered")
    _GRAPHS[kind] = factory
    if seed_dependent:
        _SEED_DEPENDENT_GRAPHS.add(kind)
    if description:
        _GRAPH_DESCRIPTIONS[kind] = description


def graph_seed_dependent(kind: str) -> bool:
    """Whether a graph kind's factory output depends on the task seed.

    Unknown kinds report ``True`` (the safe answer; building them
    fails loudly elsewhere).
    """
    return kind in _SEED_DEPENDENT_GRAPHS or kind not in _GRAPHS


def register_adversary(
    kind: str, factory: AdversaryFactory, description: str = ""
) -> None:
    """Register an adversary factory ``factory(seed, **params)``.

    ``description`` is the one-liner ``repro list`` prints for the
    kind.
    """
    if kind in _ADVERSARIES:
        raise ValueError(f"adversary kind {kind!r} already registered")
    _ADVERSARIES[kind] = factory
    if description:
        _ADVERSARY_DESCRIPTIONS[kind] = description


def build_graph(kind: str, n: int, seed: int = 0, **params) -> DualGraph:
    """Instantiate a registered graph kind."""
    try:
        factory = _GRAPHS[kind]
    except KeyError:
        raise ValueError(
            f"unknown graph kind {kind!r}; known: {graph_kinds()}"
        ) from None
    return factory(n, seed, **params)


def build_adversary(kind: str, seed: int = 0, **params) -> Adversary:
    """Instantiate a registered adversary kind."""
    try:
        factory = _ADVERSARIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown adversary kind {kind!r}; known: {adversary_kinds()}"
        ) from None
    return factory(seed, **params)


def register_churn(
    kind: str, factory: ChurnFactory, description: str = ""
) -> None:
    """Register a churn factory ``factory(n, rounds, seed, **params)``.

    The factory returns a :class:`~repro.sim.faults.ChurnSchedule` (or
    ``None`` for no fault injection).  ``description`` is the one-liner
    ``repro list`` prints for the kind.
    """
    if kind in _CHURNS:
        raise ValueError(f"churn kind {kind!r} already registered")
    _CHURNS[kind] = factory
    if description:
        _CHURN_DESCRIPTIONS[kind] = description


def build_churn(
    kind: str, n: int, rounds: int, seed: int = 0, **params
) -> Optional[ChurnSchedule]:
    """Instantiate a registered churn kind for one run's horizon."""
    try:
        factory = _CHURNS[kind]
    except KeyError:
        raise ValueError(
            f"unknown churn kind {kind!r}; known: {churn_kinds()}"
        ) from None
    return factory(n, rounds, seed, **params)
