"""The per-file walker and multi-file driver behind ``repro check``.

One AST traversal per file: the engine maintains the positional state
rules need (enclosing function/class names, ``try``/``except
ImportError`` depth, tracked-module alias table) on a shared
:class:`~repro.check.rules.FileContext` and dispatches each node to
the rules that declared interest in its class.  Findings then pass
through the suppression filter (``# repro: noqa(RPR0xx): why`` on the
finding's line) and, in :func:`check_paths`, the optional baseline.

Everything is deterministic by construction: files are visited in
sorted order, rules in code order, and findings are sorted before
reporting — the checker obeys the iteration-order contract it
enforces.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.check.baseline import Baseline
from repro.check.findings import (
    INVALID_SUPPRESSION,
    PARSE_ERROR,
    Finding,
    Suppression,
    scan_suppressions,
    suppressions_by_line,
)
from repro.check.rules import (
    TRACKED_MODULES,
    FileContext,
    Rule,
    all_rules,
    known_codes,
)


def scope_of(path: pathlib.Path) -> Optional[str]:
    """The first ``repro`` subpackage ``path`` lives in, if any.

    ``src/repro/sim/engine.py`` → ``"sim"``; ``src/repro/cli.py`` →
    ``"cli"``; paths outside a ``repro`` package → ``None`` (which
    makes every rule apply — the fixture-corpus convention).
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i + 1 < len(parts):
            nxt = parts[i + 1]
            return nxt[:-3] if nxt.endswith(".py") else nxt
    return None


def _is_import_guard(node: ast.Try) -> bool:
    """Whether a ``try`` body is the import-gating idiom.

    True when any handler catches ``ImportError`` (or its alias
    ``ModuleNotFoundError``), ``Exception``, or everything.
    """
    gate_names = {"ImportError", "ModuleNotFoundError", "Exception"}
    for handler in node.handlers:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for t in types:
            name = t.attr if isinstance(t, ast.Attribute) else (
                t.id if isinstance(t, ast.Name) else None
            )
            if name in gate_names:
                return True
    return False


class _Walker:
    """Single-pass dispatcher: one AST walk feeds every rule."""

    def __init__(self, ctx: FileContext, rules: Sequence[Rule]) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._interest: Dict[type, List[Rule]] = {}
        for rule in rules:
            for node_type in rule.interests:
                self._interest.setdefault(node_type, []).append(rule)

    def _record_imports(self, node: ast.AST) -> None:
        """Track local aliases of the modules rules resolve against."""
        aliases = self.ctx.aliases
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root in TRACKED_MODULES:
                    aliases[alias.asname or root] = alias.name
        elif isinstance(node, ast.ImportFrom) and not node.level:
            module = node.module or ""
            if module.split(".", 1)[0] in TRACKED_MODULES:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    aliases[alias.asname or alias.name] = (
                        f"{module}.{alias.name}"
                    )

    def _dispatch(self, node: ast.AST) -> None:
        for rule in self._interest.get(type(node), ()):
            self.findings.extend(rule.inspect(node, self.ctx))

    def walk(self, node: ast.AST) -> None:
        """Visit ``node`` and its children in document order."""
        ctx = self.ctx
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            # Rules see the import before the alias lands so RPR002
            # reports the import statement itself; calls resolved
            # later in document order see the alias.
            self._dispatch(node)
            self._record_imports(node)
            return

        self._dispatch(node)

        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ctx.function_stack.append(node.name)
            for child in ast.iter_child_nodes(node):
                self.walk(child)
            ctx.function_stack.pop()
        elif isinstance(node, ast.Lambda):
            ctx.function_stack.append("<lambda>")
            for child in ast.iter_child_nodes(node):
                self.walk(child)
            ctx.function_stack.pop()
        elif isinstance(node, ast.ClassDef):
            ctx.class_stack.append(node.name)
            for child in ast.iter_child_nodes(node):
                self.walk(child)
            ctx.class_stack.pop()
        elif isinstance(node, ast.Try) and _is_import_guard(node):
            ctx.guarded_import_depth += 1
            for stmt in node.body:
                self.walk(stmt)
            ctx.guarded_import_depth -= 1
            for part in (*node.handlers, *node.orelse, *node.finalbody):
                self.walk(part)
        else:
            for child in ast.iter_child_nodes(node):
                self.walk(child)


def _apply_suppressions(
    findings: List[Finding],
    suppressions: List[Suppression],
    path: str,
) -> Tuple[List[Finding], int]:
    """Drop findings covered by valid suppressions; flag invalid ones.

    Returns the kept findings plus the number suppressed.  A
    suppression must carry a justification and name only known codes
    to take effect; otherwise it is inert and reported as RPR000.
    """
    codes = known_codes()
    by_line = suppressions_by_line(suppressions)
    kept: List[Finding] = []
    suppressed = 0
    for sup in suppressions:
        unknown = sorted(set(sup.codes) - codes)
        if not sup.valid:
            kept.append(
                Finding(
                    path=path,
                    line=sup.line,
                    col=1,
                    code=INVALID_SUPPRESSION,
                    message=(
                        "suppression has no justification text "
                        "(write `# repro: noqa(CODE): reason`); it "
                        "suppresses nothing"
                    ),
                )
            )
        elif unknown:
            kept.append(
                Finding(
                    path=path,
                    line=sup.line,
                    col=1,
                    code=INVALID_SUPPRESSION,
                    message=(
                        "suppression names unknown rule code(s) "
                        f"{', '.join(unknown)}; it suppresses nothing"
                    ),
                )
            )
    for finding in findings:
        covered = any(
            sup.valid
            and not (set(sup.codes) - codes)
            and finding.code in sup.codes
            for sup in by_line.get(finding.line, [])
        )
        if covered:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def check_source(
    source: str,
    path: str,
    scope: Optional[str],
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], int]:
    """Check one in-memory source; returns (findings, suppressed).

    The unit the fixture tests drive directly; :func:`check_file`
    adds I/O and scope detection on top.
    """
    selected = [
        rule
        for rule in (all_rules() if rules is None else rules)
        if rule.applies_to(scope)
    ]
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return (
            [
                Finding(
                    path=path,
                    line=line,
                    col=1,
                    code=PARSE_ERROR,
                    message=f"file does not parse: {exc}",
                )
            ],
            0,
        )
    ctx = FileContext(
        path=path, scope=scope, lines=source.splitlines()
    )
    walker = _Walker(ctx, selected)
    walker.walk(tree)
    return _apply_suppressions(
        walker.findings, scan_suppressions(source), path
    )


def check_file(
    path: pathlib.Path, rules: Optional[Sequence[Rule]] = None
) -> Tuple[List[Finding], int]:
    """Check one file on disk; returns (findings, suppressed)."""
    display = path.as_posix()
    source = path.read_text(encoding="utf-8")
    return check_source(source, display, scope_of(path), rules)


@dataclasses.dataclass(frozen=True)
class CheckReport:
    """The outcome of one ``repro check`` invocation.

    Attributes:
        findings: Surviving findings, sorted by (path, line, col,
            code).
        files_checked: Number of Python files visited.
        suppressed: Findings silenced by valid justified noqa
            comments.
        grandfathered: Findings silenced by the baseline file.
    """

    findings: Tuple[Finding, ...]
    files_checked: int
    suppressed: int
    grandfathered: int

    @property
    def clean(self) -> bool:
        """Whether no finding survived suppression + baseline."""
        return not self.findings

    def counts(self) -> Dict[str, int]:
        """Surviving findings per rule code."""
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return out


def iter_python_files(
    paths: Iterable[pathlib.Path],
) -> List[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Bytecode caches are skipped; a named path that does not exist
    raises ``FileNotFoundError`` (silently checking nothing would
    make a typo look clean).
    """
    out: List[pathlib.Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            out.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(out))


def check_paths(
    paths: Sequence[pathlib.Path],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> CheckReport:
    """Run the rule pack over ``paths`` (files and/or directories)."""
    findings: List[Finding] = []
    suppressed = 0
    files = iter_python_files(paths)
    for file_path in files:
        file_findings, file_suppressed = check_file(file_path, rules)
        findings.extend(file_findings)
        suppressed += file_suppressed
    grandfathered = 0
    if baseline is not None:
        findings, grandfathered = baseline.filter(findings)
    return CheckReport(
        findings=tuple(sorted(findings)),
        files_checked=len(files),
        suppressed=suppressed,
        grandfathered=grandfathered,
    )
