"""Human and JSON renderers for :class:`~repro.check.engine.CheckReport`.

The human form is one ``path:line:col: CODE message`` line per finding
plus a summary; the JSON form is a versioned, sorted-key document
(schema below) so CI and editor integrations can consume findings
without scraping text.

JSON schema (``"version": 1``)::

    {
      "version": 1,
      "files_checked": <int>,
      "clean": <bool>,
      "findings": [
        {"path": str, "line": int, "col": int,
         "code": str, "message": str},
        ...
      ],
      "counts": {"RPR001": <int>, ...},
      "suppressed": <int>,
      "grandfathered": <int>
    }
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.check.engine import CheckReport
from repro.check.rules import rule_catalogue

#: The JSON report schema version.
REPORT_VERSION = 1


def render_human(report: CheckReport) -> str:
    """The terminal form: findings, then a one-line summary."""
    lines: List[str] = [f.render() for f in report.findings]
    silenced = []
    if report.suppressed:
        silenced.append(f"{report.suppressed} suppressed")
    if report.grandfathered:
        silenced.append(f"{report.grandfathered} grandfathered")
    tail = f" ({', '.join(silenced)})" if silenced else ""
    if report.clean:
        lines.append(
            f"repro check: {report.files_checked} file(s) clean{tail}"
        )
    else:
        lines.append(
            f"repro check: {len(report.findings)} finding(s) in "
            f"{report.files_checked} file(s){tail}"
        )
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """The machine form (stable, versioned, sorted keys)."""
    doc: Dict[str, object] = {
        "version": REPORT_VERSION,
        "files_checked": report.files_checked,
        "clean": report.clean,
        "findings": [f.to_dict() for f in report.findings],
        "counts": report.counts(),
        "suppressed": report.suppressed,
        "grandfathered": report.grandfathered,
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` catalogue, one block per code."""
    blocks: List[str] = []
    for code, info in rule_catalogue().items():
        header = f"{code} [{info['name']}]  scope: {info['scopes']}"
        blocks.append(header)
        blocks.append(f"  contract: {info['contract']}")
        if info["fix"]:
            blocks.append(f"  fix: {info['fix']}")
    return "\n".join(blocks)
