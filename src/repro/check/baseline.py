"""Baseline files: grandfathered findings for incremental adoption.

A baseline is a JSON snapshot of known findings.  ``repro check
--write-baseline`` records the current state; later runs with
``--baseline`` subtract it, so a tree with historical debt can still
gate *new* violations at diff time.  Matching is by ``(path, code,
message)`` with per-key counts — line numbers are excluded so
unrelated edits that shift a grandfathered finding do not resurface
it, and fixing one of N identical findings shrinks the allowance by
one rather than hiding the rest.

The repository's own policy is an **empty baseline** (see
docs/CHECKS.md): the file format exists for downstream forks and for
staging large refactors, not as a parking lot.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Tuple

from repro.check.findings import Finding

#: Schema version stamped into baseline files.
BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


@dataclasses.dataclass
class Baseline:
    """A count-map of grandfathered findings.

    Attributes:
        entries: ``(path, code, message) → allowed count``.
    """

    entries: Dict[_Key, int] = dataclasses.field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        """Snapshot ``findings`` into a baseline."""
        entries: Dict[_Key, int] = {}
        for finding in findings:
            key = finding.baseline_key()
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        """Read a baseline file.

        Raises:
            ValueError: On an unreadable or wrong-version document.
        """
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"cannot read baseline {path}: {exc}")
        if (
            not isinstance(doc, dict)
            or doc.get("version") != BASELINE_VERSION
            or not isinstance(doc.get("entries"), list)
        ):
            raise ValueError(
                f"baseline {path} is not a version-"
                f"{BASELINE_VERSION} repro-check baseline"
            )
        entries: Dict[_Key, int] = {}
        for entry in doc["entries"]:
            key = (
                str(entry["path"]),
                str(entry["code"]),
                str(entry["message"]),
            )
            entries[key] = entries.get(key, 0) + int(
                entry.get("count", 1)
            )
        return cls(entries=entries)

    def save(self, path: pathlib.Path) -> None:
        """Write the baseline, key-sorted for diffable output."""
        doc = {
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "path": p,
                    "code": code,
                    "message": message,
                    "count": count,
                }
                for (p, code, message), count in sorted(
                    self.entries.items()
                )
            ],
        }
        path.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def filter(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], int]:
        """Subtract grandfathered findings.

        Returns the surviving findings and the number absorbed.  Each
        baseline entry absorbs at most its recorded count, in
        source-order, so *new* duplicates of an old finding still
        fail.
        """
        budget = dict(self.entries)
        kept: List[Finding] = []
        absorbed = 0
        for finding in sorted(findings):
            key = finding.baseline_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                absorbed += 1
            else:
                kept.append(finding)
        return kept, absorbed
