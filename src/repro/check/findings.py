"""Finding and suppression data model for the ``repro check`` engine.

A :class:`Finding` is one rule violation at one source location.  A
:class:`Suppression` is one ``# repro: noqa(RPR0xx): why`` comment; the
justification text after the colon is **required** — a suppression
without it does not suppress anything and is itself reported (as
``RPR000``), so every grandfather note in the tree says why the
contract does not apply at that site.

Suppression comments are discovered with :mod:`tokenize`, so the
marker is only recognised in real comments, never inside string
literals.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
from typing import Dict, List, Tuple

#: ``# repro: noqa(RPR001)`` or ``# repro: noqa(RPR001, RPR003): why``.
#: The justification group is everything after the closing paren's
#: colon; suppressions whose group is empty are invalid.
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*noqa\s*"
    r"\((?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\)"
    r"(?:\s*:\s*(?P<why>\S.*?))?\s*$"
)

#: Meta code reported for malformed suppressions (missing
#: justification or a code no registered rule owns).  It cannot itself
#: be suppressed.
INVALID_SUPPRESSION = "RPR000"

#: Meta code reported when a checked file does not parse as Python.
PARSE_ERROR = "RPR900"


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: Display path of the offending file (as given to the
            checker, normalised to POSIX separators).
        line: 1-based source line.
        col: 1-based source column.
        code: The rule code (``RPR001`` … or a meta code).
        message: Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The one-line ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def baseline_key(self) -> Tuple[str, str, str]:
        """The identity used by baseline matching.

        Line and column are deliberately excluded so unrelated edits
        that shift a grandfathered finding do not un-grandfather it;
        multiple identical findings are handled count-wise by
        :class:`repro.check.baseline.Baseline`.
        """
        return (self.path, self.code, self.message)

    def to_dict(self) -> Dict[str, object]:
        """The JSON-report form (schema in docs/CHECKS.md)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa(...)`` comment.

    Attributes:
        line: 1-based line the comment sits on; it suppresses findings
            reported for that line only.
        codes: The rule codes listed inside the parentheses.
        justification: The required free-text reason after the colon;
            empty means the suppression is invalid and inert.
    """

    line: int
    codes: Tuple[str, ...]
    justification: str

    @property
    def valid(self) -> bool:
        """Whether the suppression carries a justification."""
        return bool(self.justification)


def scan_suppressions(source: str) -> List[Suppression]:
    """Extract every suppression comment from ``source``.

    Uses the tokenizer so only genuine comments count.  A source that
    fails to tokenize yields no suppressions — the parse error is
    reported separately by the engine.
    """
    out: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = SUPPRESSION_RE.search(tok.string)
        if match is None:
            continue
        codes = tuple(
            code.strip() for code in match.group("codes").split(",")
        )
        out.append(
            Suppression(
                line=tok.start[0],
                codes=codes,
                justification=(match.group("why") or "").strip(),
            )
        )
    return out


def suppressions_by_line(
    suppressions: List[Suppression],
) -> Dict[int, List[Suppression]]:
    """Index suppressions by the line they apply to."""
    by_line: Dict[int, List[Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.line, []).append(sup)
    return by_line
