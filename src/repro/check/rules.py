"""The rule interface and registry behind ``repro check``.

A *rule* encodes one statically-checkable repository contract (see
docs/CHECKS.md for the catalogue).  Rules are objects satisfying the
:class:`Rule` protocol: they carry a unique ``RPR0xx`` code, the
contract text they enforce, the documented fix, an optional scope (the
first-level ``repro`` subpackages they apply to), and a tuple of
:mod:`ast` node classes they want to see.  The engine walks each file's
AST exactly once and dispatches every node to the rules interested in
its class — adding a rule never adds a traversal.

Rules never mutate the tree and never see files outside their scope;
everything position-dependent they need (enclosing function/class,
import-guard depth, alias table) is maintained by the engine on the
shared :class:`FileContext`.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
    TypeVar,
)

from repro.check.findings import Finding

#: Modules whose names/aliases the engine tracks on
#: :attr:`FileContext.aliases` — the vocabulary rules resolve calls
#: against.  Everything else stays out of the table.
TRACKED_MODULES = (
    "random",
    "time",
    "datetime",
    "os",
    "uuid",
    "secrets",
    "numpy",
    "scipy",
)


@dataclasses.dataclass
class FileContext:
    """Per-file state the engine maintains while walking the AST.

    Attributes:
        path: Display path used in findings.
        scope: First ``repro`` subpackage the file lives in (``"sim"``,
            ``"core"`` …), or ``None`` when the file is outside a
            ``repro`` package — in which case *every* rule applies
            (this is how the test fixture corpus exercises scoped
            rules).
        lines: The file's source lines (1-based access via
            ``lines[line - 1]``).
        function_stack: Names of enclosing ``def``/``lambda`` scopes,
            outermost first.
        class_stack: Names of enclosing classes, outermost first.
        guarded_import_depth: Number of enclosing ``try:`` bodies whose
            handlers catch ``ImportError`` — the import-gating idiom.
        aliases: Local name → dotted origin for tracked modules, e.g.
            ``{"np": "numpy", "datetime": "datetime.datetime"}``.
    """

    path: str
    scope: Optional[str]
    lines: List[str]
    function_stack: List[str] = dataclasses.field(default_factory=list)
    class_stack: List[str] = dataclasses.field(default_factory=list)
    guarded_import_depth: int = 0
    aliases: Dict[str, str] = dataclasses.field(default_factory=dict)

    @property
    def at_module_level(self) -> bool:
        """Whether the current node is outside any function."""
        return not self.function_stack

    def in_function(self, name: str) -> bool:
        """Whether any enclosing function is called ``name``."""
        return name in self.function_stack

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The dotted name of an expression, aliases expanded.

        ``np.polyfit`` resolves to ``"numpy.polyfit"`` when ``np`` is
        a tracked alias; plain names resolve to their origin or
        themselves (so builtin calls like ``set(...)`` resolve to
        ``"set"``).  Returns ``None`` for expressions that are not
        name/attribute chains (subscripts, calls, literals).
        """
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(self.aliases.get(cur.id, cur.id))
        return ".".join(reversed(parts))


class Rule(Protocol):
    """The contract every registered rule satisfies.

    Attributes:
        code: Unique ``RPR0xx`` identifier.
        name: Short kebab-ish rule name for reports.
        contract: The repository contract the rule enforces (rendered
            in ``repro check --list-rules`` and docs/CHECKS.md).
        fix: The documented way to bring violating code into
            compliance.
        scopes: First-level ``repro`` subpackages the rule applies to,
            or ``None`` for the whole tree.
        interests: The :mod:`ast` node classes the rule inspects.
    """

    code: str
    name: str
    contract: str
    fix: str
    scopes: Optional[Tuple[str, ...]]
    interests: Tuple[type, ...]

    def inspect(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        """Yield findings for one dispatched node."""
        ...  # pragma: no cover - protocol signature


class ContractRule:
    """Convenience base carrying the static rule metadata.

    Subclasses set the class attributes and implement
    :meth:`inspect`; :meth:`finding` builds a correctly-located
    :class:`Finding` from an AST node.
    """

    code: str = "RPR???"
    name: str = ""
    contract: str = ""
    fix: str = ""
    scopes: Optional[Tuple[str, ...]] = None
    interests: Tuple[type, ...] = ()

    def applies_to(self, scope: Optional[str]) -> bool:
        """Whether the rule runs on a file in ``scope``.

        Files outside any ``repro`` package (``scope is None``) get
        the full rule pack so fixtures and ad-hoc targets exercise
        every rule.
        """
        if self.scopes is None or scope is None:
            return True
        return scope in self.scopes

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """A finding at ``node``'s location in ``ctx``'s file."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )

    def inspect(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        """Yield findings for one dispatched node (default: none)."""
        return iter(())


_RULES: Dict[str, Rule] = {}

#: Meta codes the engine itself reports; they appear in the catalogue
#: but have no Rule object and cannot be suppressed.
META_CODES: Dict[str, str] = {
    "RPR000": "suppression comment without a justification, or naming "
    "a code no registered rule owns (the suppression is inert)",
    "RPR900": "file does not parse as Python (nothing else was checked)",
}


_R = TypeVar("_R", bound="ContractRule")


def register_rule(rule_cls: type[_R]) -> type[_R]:
    """Register an instance of ``rule_cls`` under its code.

    Used as a class decorator on :class:`ContractRule` subclasses;
    duplicate codes are an error so every finding maps to exactly one
    documented contract.
    """
    rule = rule_cls()
    if rule.code in _RULES or rule.code in META_CODES:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _RULES[rule.code] = rule
    return rule_cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, code-sorted (deterministic dispatch)."""
    return tuple(_RULES[code] for code in sorted(_RULES))


def rule_codes() -> Tuple[str, ...]:
    """The sorted registered codes (meta codes excluded)."""
    return tuple(sorted(_RULES))


def known_codes() -> Set[str]:
    """Registered plus meta codes — the vocabulary suppressions may use."""
    return set(_RULES) | set(META_CODES)


def get_rule(code: str) -> Rule:
    """The rule registered under ``code``.

    Raises:
        KeyError: When no rule owns ``code``.
    """
    return _RULES[code]


def rule_catalogue() -> Dict[str, Dict[str, str]]:
    """``code → {name, contract, fix, scopes}`` for reports and docs."""
    catalogue: Dict[str, Dict[str, str]] = {}
    for code in sorted(_RULES):
        rule = _RULES[code]
        scopes = (
            "repro (all packages)"
            if rule.scopes is None
            else ", ".join(rule.scopes)
        )
        catalogue[code] = {
            "name": rule.name,
            "contract": rule.contract,
            "fix": rule.fix,
            "scopes": scopes,
        }
    for code, text in sorted(META_CODES.items()):
        catalogue[code] = {
            "name": "meta",
            "contract": text,
            "fix": "",
            "scopes": "reported by the engine itself",
        }
    return catalogue
