"""The first-party rule pack: the repository's trace contracts as AST rules.

Each rule here turns one invariant the differential/fuzz suites can
only probe dynamically into a diff-time static check:

* **RPR001** — randomness must flow through key-derived
  ``random.Random(seed)`` streams, never the ambient module-level
  generator or a seedless ``Random()``.
* **RPR002** — the runtime package is stdlib-only; NumPy/SciPy imports
  must be function-local or ``try``-gated with an ``ImportError``
  handler.
* **RPR003** — engine/search/store paths must not read wall clocks or
  OS entropy (``time.time``, ``datetime.now``, ``os.urandom``,
  ``uuid``, ``secrets`` …); elapsed-time measurement is RPR008's
  domain.
* **RPR004** — iterating a set where order can reach trace state must
  go through an explicit ``sorted(...)``.
* **RPR005** — trace-critical modules never compare floats with
  ``==``/``!=`` against float literals.
* **RPR006** — frozen-dataclass fields are only mutated via
  ``object.__setattr__`` inside ``__post_init__``.
* **RPR007** — fault-injection modules never seed their streams with
  bare constants: a literal seed makes every churn schedule identical
  across runs, silently collapsing a sweep's fault axis.
* **RPR008** — wall-clock timing (``time.perf_counter``/``monotonic``)
  is confined to ``repro.obs`` (and the out-of-package ``benchmarks/``
  tree); every other layer measures through
  :class:`repro.obs.Stopwatch` or a telemetry span.

The catalogue with the full contract text and fixes is rendered by
``repro check --list-rules`` and mirrored in docs/CHECKS.md.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.check.findings import Finding
from repro.check.rules import ContractRule, FileContext, register_rule

#: ``random`` module-level functions that tap the shared ambient
#: generator (its state is process-global, so call order anywhere in
#: the process perturbs every stream that touches it).
_AMBIENT_RANDOM_FNS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


@register_rule
class AmbientRandomness(ContractRule):
    """RPR001: all randomness must be key-derived ``random.Random``."""

    code = "RPR001"
    name = "ambient-randomness"
    contract = (
        "Trace-affecting randomness flows through per-entity "
        'key-derived streams (random.Random(f"{seed}:{uid}")). '
        "Module-level random.* calls share one process-global "
        "generator, and random.Random() without a seed argument taps "
        "OS entropy — both break seed-for-seed reproducibility."
    )
    fix = (
        "Build random.Random(<key-derived seed>) and call methods on "
        "the instance."
    )
    scopes: Optional[Tuple[str, ...]] = ("sim", "core", "search")
    interests: Tuple[type, ...] = (ast.Call,)

    def inspect(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        if resolved == "random.Random" and not node.args:
            seed_kwargs = [
                kw for kw in node.keywords if kw.arg is not None
            ]
            if not seed_kwargs:
                yield self.finding(
                    ctx,
                    node,
                    "random.Random() without a seed argument seeds "
                    "from OS entropy; derive the seed from the run "
                    "key instead",
                )
            return
        if (
            resolved.startswith("random.")
            and resolved.split(".", 1)[1] in _AMBIENT_RANDOM_FNS
        ):
            yield self.finding(
                ctx,
                node,
                f"{resolved}() uses the ambient process-global "
                "generator; use a key-derived random.Random instance",
            )


@register_rule
class UngatedScientificImport(ContractRule):
    """RPR002: NumPy/SciPy imports must be local or ``try``-gated."""

    code = "RPR002"
    name = "ungated-scientific-import"
    contract = (
        "The runtime package is stdlib-only: importing repro must "
        "succeed on a bare CPython. NumPy/SciPy power optional fast "
        "paths only, so their imports must be function-local or sit "
        "in a try: block whose handler catches ImportError."
    )
    fix = (
        "Move the import into the function that needs it, or wrap it "
        "in try/except ImportError with a None/stdlib fallback."
    )
    scopes = None
    interests: Tuple[type, ...] = (ast.Import, ast.ImportFrom)

    def inspect(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        assert isinstance(node, (ast.Import, ast.ImportFrom))
        if not ctx.at_module_level or ctx.guarded_import_depth:
            return
        if isinstance(node, ast.Import):
            roots = [alias.name.split(".", 1)[0] for alias in node.names]
        else:
            if node.level or node.module is None:
                return
            roots = [node.module.split(".", 1)[0]]
        for root in roots:
            if root in ("numpy", "scipy"):
                yield self.finding(
                    ctx,
                    node,
                    f"module-level import of {root} makes the "
                    "stdlib-only runtime require it; gate it behind "
                    "try/except ImportError or import inside the "
                    "function",
                )


#: Exact dotted call names that read a wall clock or entropy source.
_ENTROPY_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "random.SystemRandom",
    }
)

#: Dotted prefixes banned wholesale: every public callable in these
#: modules exists to be unpredictable.
_ENTROPY_PREFIXES = ("uuid.", "secrets.")


@register_rule
class WallClockEntropy(ContractRule):
    """RPR003: no wall clocks or OS entropy in hot paths."""

    code = "RPR003"
    name = "wall-clock-entropy"
    contract = (
        "Engine, search and store paths derive every byte they "
        "persist from (spec, seed) keys. Wall-clock reads "
        "(time.time, datetime.now) and entropy sources (os.urandom, "
        "uuid, secrets, random.SystemRandom) would leak "
        "run-to-run-varying values into records. Elapsed-time "
        "measurement goes through repro.obs (Stopwatch, spans), whose "
        "perf_counter use RPR008 polices."
    )
    fix = (
        "Derive identifiers and decisions from the task key; keep "
        "timing to perf_counter-based elapsed fields."
    )
    scopes: Optional[Tuple[str, ...]] = ("sim", "search", "store")
    interests: Tuple[type, ...] = (ast.Call,)

    def inspect(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        if resolved in _ENTROPY_CALLS or resolved.startswith(
            _ENTROPY_PREFIXES
        ):
            yield self.finding(
                ctx,
                node,
                f"{resolved}() reads a wall clock or entropy source; "
                "hot-path values must derive from the run key",
            )


#: Set-producing method names; calling one yields unordered contents
#: regardless of the receiver's own type.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


def _is_unordered_expr(node: ast.AST, ctx: FileContext) -> Optional[str]:
    """Describe ``node`` if it evaluates to a set, else ``None``."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        resolved = ctx.resolve(node.func)
        if resolved in ("set", "frozenset"):
            return f"{resolved}(...)"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
        ):
            return f".{node.func.attr}(...)"
    return None


@register_rule
class UnorderedIteration(ContractRule):
    """RPR004: set iteration feeding trace state must be sorted."""

    code = "RPR004"
    name = "unordered-iteration"
    contract = (
        "Iteration order over sets is hash-dependent (and "
        "PYTHONHASHSEED-dependent for strings), so a set feeding any "
        "trace-affecting loop must be materialised through "
        "sorted(...). Dicts are insertion-ordered in CPython >= 3.7 "
        "and are not flagged; the hazard is sets."
    )
    fix = "Wrap the iterable in sorted(...) (with a key if needed)."
    scopes: Optional[Tuple[str, ...]] = ("sim", "search")
    interests: Tuple[type, ...] = (
        ast.For,
        ast.AsyncFor,
        ast.comprehension,
    )

    def inspect(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        iterable: ast.AST
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterable = node.iter
        else:
            assert isinstance(node, ast.comprehension)
            iterable = node.iter
        described = _is_unordered_expr(iterable, ctx)
        if described is not None:
            yield self.finding(
                ctx,
                iterable,
                f"iterating {described} directly is "
                "hash-order-dependent; wrap it in sorted(...)",
            )


def _is_float_operand(node: ast.AST) -> bool:
    """Whether ``node`` is statically a float expression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return _is_float_operand(node.operand)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    return False


@register_rule
class FloatEquality(ContractRule):
    """RPR005: no ``==``/``!=`` against float values in trace code."""

    code = "RPR005"
    name = "float-equality"
    contract = (
        "Trace-critical modules must stay byte-identical across "
        "engines and platforms; exact float equality silently "
        "depends on accumulation order, so comparisons against float "
        "literals (or float(...) results) are banned where they "
        "could steer a trace."
    )
    fix = (
        "Compare integers/rationals, or use math.isclose with an "
        "explicit tolerance."
    )
    scopes: Optional[Tuple[str, ...]] = ("sim", "core", "search")
    interests: Tuple[type, ...] = (ast.Compare,)

    def inspect(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_operand(operands[i]) or _is_float_operand(
                operands[i + 1]
            ):
                sym = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    ctx,
                    node,
                    f"float {sym} comparison in a trace-critical "
                    "module; use math.isclose or exact "
                    "integer/rational arithmetic",
                )
                return


@register_rule
class FrozenMutation(ContractRule):
    """RPR006: ``object.__setattr__`` only inside ``__post_init__``."""

    code = "RPR006"
    name = "frozen-mutation"
    contract = (
        "Frozen dataclasses are the repository's immutability "
        "boundary (specs, genomes, topologies are shared across "
        "workers by identity). object.__setattr__ is the documented "
        "escape hatch for canonicalising fields during "
        "__post_init__ and nowhere else — a mutation after "
        "construction invalidates cached fingerprints and "
        "cross-process sharing."
    )
    fix = (
        "Canonicalise in __post_init__, or build a new instance with "
        "dataclasses.replace(...)."
    )
    scopes = None
    interests: Tuple[type, ...] = (ast.Call,)

    def inspect(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if ctx.resolve(node.func) != "object.__setattr__":
            return
        if ctx.in_function("__post_init__"):
            return
        yield self.finding(
            ctx,
            node,
            "object.__setattr__ outside __post_init__ mutates a "
            "frozen dataclass after construction; use "
            "dataclasses.replace",
        )


def _is_constant_seed(node: ast.AST) -> bool:
    """Whether ``node`` is a bare literal (ints, strings, unary-signed
    ints) — f-strings are ``JoinedStr`` nodes, so namespaced seeds like
    ``f"churn:{seed}"`` pass."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return _is_constant_seed(node.operand)
    return False


@register_rule
class ConstantFaultSeed(ContractRule):
    """RPR007: fault streams must derive their seeds from the run."""

    code = "RPR007"
    name = "constant-fault-seed"
    contract = (
        "Fault-injection modules (repro/sim/faults.py) generate churn "
        "schedules that are a sweep axis: the stream behind a schedule "
        "must be seeded from the run's own seed, namespaced "
        '(random.Random(f"churn:{seed}")). A bare literal seed makes '
        "every run draw the identical schedule, silently collapsing "
        "the fault axis of a sweep to one sample."
    )
    fix = (
        "Thread the run seed into the generator and seed the stream "
        'with a namespaced derivation, e.g. '
        'random.Random(f"churn:{seed}").'
    )
    scopes: Optional[Tuple[str, ...]] = ("sim",)
    interests: Tuple[type, ...] = (ast.Call,)

    def inspect(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        # Within the sim scope only fault-injection modules are held
        # to this contract; scope-None files (the fixture corpus and
        # ad-hoc targets) get it like every rule.
        if ctx.scope is not None and not ctx.path.endswith("faults.py"):
            return
        if ctx.resolve(node.func) != "random.Random":
            return
        seeds = list(node.args) + [
            kw.value for kw in node.keywords if kw.arg is not None
        ]
        for seed in seeds:
            if _is_constant_seed(seed):
                yield self.finding(
                    ctx,
                    node,
                    "random.Random with a literal seed pins the fault "
                    "schedule: every run draws identical churn; "
                    "derive the seed from the run "
                    '(random.Random(f"churn:{seed}"))',
                )
                return


#: Wall-clock timer reads confined to the observability layer.
_WALL_TIMERS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
    }
)


@register_rule
class UncontainedTimer(ContractRule):
    """RPR008: wall-clock timing lives in repro.obs (and benchmarks)."""

    code = "RPR008"
    name = "uncontained-timer"
    contract = (
        "Elapsed-time measurement (time.perf_counter/monotonic and "
        "their _ns forms) is confined to the observability layer "
        "(repro.obs) and the benchmarks/ tree, so the determinism "
        "audit has exactly one in-package surface where clocks are "
        "read. Every other layer measures through repro.obs.Stopwatch "
        "or a telemetry span()."
    )
    fix = (
        "Replace the perf_counter pair with repro.obs.Stopwatch "
        "(watch = Stopwatch(); watch.elapsed()) or wrap the phase in "
        "a telemetry span."
    )
    scopes: Optional[Tuple[str, ...]] = None
    interests: Tuple[type, ...] = (ast.Call,)

    def applies_to(self, scope: Optional[str]) -> bool:
        """Every scope except the observability layer itself."""
        return scope != "obs"

    def inspect(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:
        """Flag direct wall-clock timer calls outside ``repro.obs``."""
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved in _WALL_TIMERS:
            yield self.finding(
                ctx,
                node,
                f"{resolved}() outside repro.obs scatters the "
                "timing surface; measure through "
                "repro.obs.Stopwatch or a telemetry span",
            )
