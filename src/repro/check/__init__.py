"""``repro.check`` — the repository's AST invariant checker.

The test suite can only probe the repo's correctness contracts
dynamically (trace byte-equality across engines, key-derived RNG
streams, the stdlib-only runtime, iteration-order determinism); this
package rejects violations *statically*, at diff time, with an
extensible rule engine:

* :mod:`repro.check.rules` — the :class:`Rule` protocol, the
  per-code registry, and the shared :class:`FileContext`.
* :mod:`repro.check.rulepack` — the first-party rules RPR001–RPR006
  (importing :mod:`repro.check` registers them).
* :mod:`repro.check.engine` — single-pass per-file dispatch,
  suppression handling, and the multi-file driver.
* :mod:`repro.check.baseline` — grandfathered-finding snapshots.
* :mod:`repro.check.findings` — the finding/suppression data model.
* :mod:`repro.check.report` — human and versioned-JSON renderers.

CLI: ``repro check [paths] [--json] [--baseline FILE]`` — see
docs/CHECKS.md for the rule catalogue and the suppression/baseline
policy.
"""

from repro.check import rulepack  # noqa: F401  (registers RPR001-006)
from repro.check.baseline import Baseline
from repro.check.engine import (
    CheckReport,
    check_file,
    check_paths,
    check_source,
    iter_python_files,
    scope_of,
)
from repro.check.findings import Finding, Suppression, scan_suppressions
from repro.check.report import (
    REPORT_VERSION,
    render_human,
    render_json,
    render_rule_list,
)
from repro.check.rules import (
    ContractRule,
    FileContext,
    Rule,
    all_rules,
    get_rule,
    known_codes,
    register_rule,
    rule_catalogue,
    rule_codes,
)

__all__ = [
    "Baseline",
    "CheckReport",
    "ContractRule",
    "FileContext",
    "Finding",
    "REPORT_VERSION",
    "Rule",
    "Suppression",
    "all_rules",
    "check_file",
    "check_paths",
    "check_source",
    "get_rule",
    "iter_python_files",
    "known_codes",
    "register_rule",
    "render_human",
    "render_json",
    "render_rule_list",
    "rule_catalogue",
    "rule_codes",
    "scan_suppressions",
    "scope_of",
]
