"""The synchronous-round execution engine (Section 2.1 semantics).

An execution of an algorithm on a network ``(G, G')`` proceeds in
synchronous rounds ``1, 2, …``.  Each round:

1. Every *active* process decides whether to transmit.
2. A transmission from node ``v`` reaches all of ``v``'s ``G``
   out-neighbours, an adversary-chosen subset of its ``G'``-only
   out-neighbours, and ``v`` itself.
3. Arrivals at each node are resolved into a single observation by the
   collision rule in force (CR1–CR4; CR4 consults the adversary).
4. Observations are delivered and processes update state.

Start rules: under *synchronous start* every process is active from round
1; under *asynchronous start* a process activates on its first actual
message reception (receiving ``⊥``/``⊤`` does not wake a sleeping
process, matching "activates each process the first time it receives a
message").

The broadcast payload is delivered to the source process before round 1.
By convention the payload must not be ``None``; a process that transmits
without holding the payload sends a ``None``-payload message (such
transmissions convey information and cause collisions but do not inform —
this is exactly the behaviour the Theorem 12 construction exploits).
"""

from __future__ import annotations

import enum
import random
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    TYPE_CHECKING,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.sim.fast_engine import CompiledTopology

from repro.adversaries.base import Adversary, AdversaryView, NoDeliveryAdversary
from repro.graphs.dualgraph import DualGraph
from repro.sim.collision import CollisionRule, resolve_reception
from repro.sim.faults import ChurnSchedule
from repro.obs.telemetry import current as _current_telemetry
from repro.sim.messages import Message, Reception, SILENCE
from repro.sim.process import Process, ProcessContext
from repro.sim.trace import ExecutionTrace, RoundRecord


class StartMode(enum.Enum):
    """When processes begin executing (Section 2.1)."""

    #: Every process begins in round 1.
    SYNCHRONOUS = "synchronous"
    #: A process is activated by its first message reception.
    ASYNCHRONOUS = "asynchronous"


#: Names accepted by :attr:`EngineConfig.engine` / :func:`build_engine`.
ENGINE_NAMES = ("reference", "fast", "vector")


@dataclass
class EngineConfig:
    """Execution parameters.

    Attributes:
        collision_rule: CR1–CR4 (default CR4, the weakest — the paper's
            upper bounds assume it).
        start_mode: Synchronous or asynchronous start (default
            asynchronous, again the weakest).
        max_rounds: Safety bound on execution length; the engine stops and
            marks the trace incomplete if broadcast has not finished.
        seed: Master seed; each process gets an independent deterministic
            PRNG derived from it.
        stop_when_informed: Stop as soon as every process holds the
            payload (the broadcast problem's success condition).
        record_receptions: Keep per-node observations in the trace
            (memory-heavy; intended for tests and small runs).
        engine: Which execution engine implementation to use:
            ``"reference"`` (this module's :class:`BroadcastEngine`, the
            semantic ground truth), ``"fast"`` (the bitmask engine in
            :mod:`repro.sim.fast_engine`) or ``"vector"`` (the NumPy
            lockstep engine in :mod:`repro.sim.vector_engine`, whose
            real payoff is running a cell's whole seed list at once via
            :func:`repro.sim.vector_engine.run_lockstep`).  All three
            produce bit-identical traces — see
            ``tests/test_fast_engine_equivalence.py`` and
            ``tests/test_engine_fuzz.py``.
        churn: Optional :class:`~repro.sim.faults.ChurnSchedule` of
            crash/recovery fault-injection events, applied identically
            by every engine at the top of each round (before send
            decisions).  ``None`` (the default) runs failure-free.
    """

    collision_rule: CollisionRule = CollisionRule.CR4
    start_mode: StartMode = StartMode.ASYNCHRONOUS
    max_rounds: int = 1_000_000
    seed: int = 0
    stop_when_informed: bool = True
    record_receptions: bool = False
    engine: str = "reference"
    churn: Optional[ChurnSchedule] = None


class BroadcastEngine:
    """Runs one algorithm on one network under one adversary.

    Args:
        network: The dual graph.
        processes: Exactly ``network.n`` process automata with distinct
            uids.  The adversary chooses which node each occupies.
        adversary: The adversary (default: never delivers on unreliable
            links).
        config: Execution parameters.
        payload: The broadcast content handed to the source before round 1
            (must not be ``None``).
        topology: Optional pre-compiled
            :class:`~repro.sim.fast_engine.CompiledTopology` for
            ``network``.  When given, the engine reuses its adjacency
            sequences (and, in the fast engine, its bitmasks) instead of
            re-deriving them — the batched sweep path compiles one
            topology per science cell and shares it across every seed.
            Must have been compiled from this exact ``network`` object.
    """

    def __init__(
        self,
        network: DualGraph,
        processes: Sequence[Process],
        adversary: Optional[Adversary] = None,
        config: Optional[EngineConfig] = None,
        payload: object = "broadcast-message",
        topology: Optional["CompiledTopology"] = None,
    ) -> None:
        if payload is None:
            raise ValueError("broadcast payload must not be None")
        if topology is not None and topology.graph is not network:
            raise ValueError(
                "topology was compiled for a different graph object"
            )
        uids = [p.uid for p in processes]
        if len(set(uids)) != len(uids):
            raise ValueError("process uids must be distinct")
        if len(processes) != network.n:
            raise ValueError(
                f"need exactly {network.n} processes, got {len(processes)}"
            )
        self.network = network
        self.adversary = adversary if adversary is not None else NoDeliveryAdversary()
        self.config = config if config is not None else EngineConfig()
        self.payload = payload
        # Telemetry is captured at construction (the process-wide sink
        # at that moment); it only observes — counters/events never
        # feed trace state, so enabling a sink cannot change a trace.
        self._telemetry = _current_telemetry()

        by_uid = {p.uid: p for p in processes}
        proc_map = self.adversary.assign_processes(network, uids)
        if sorted(proc_map) != list(network.nodes) or sorted(
            proc_map.values()
        ) != sorted(uids):
            raise ValueError("adversary returned an invalid proc mapping")
        #: node → process
        self.process_at: Dict[int, Process] = {
            node: by_uid[uid] for node, uid in proc_map.items()
        }
        #: node → process uid
        self.proc_map = dict(proc_map)

        self._contexts: Dict[int, ProcessContext] = {
            node: ProcessContext(
                round_number=0,
                rng=random.Random(f"{self.config.seed}:{p.uid}"),
                n=network.n,
            )
            for node, p in self.process_at.items()
        }
        self._active: set = set()
        self._round = 0
        self._started = False
        self.trace = ExecutionTrace(
            network_name=network.name,
            n=network.n,
            proc=dict(proc_map),
            informed_round={v: None for v in network.nodes},
        )

        # Hot-path precomputation: the per-round loops index these flat
        # sequences instead of going through DualGraph accessor calls.
        # A shared CompiledTopology already holds them (one derivation
        # per sweep cell instead of one per engine).
        self._topology = topology
        if topology is not None:
            self._reliable_out_seq: List[tuple] = topology.reliable_out_seq
            self._unreliable_only_seq: List[FrozenSet[int]] = (
                topology.unreliable_only_seq
            )
        else:
            self._reliable_out_seq = [
                tuple(sorted(network.reliable_out(v)))
                for v in network.nodes
            ]
            self._unreliable_only_seq = [
                network.unreliable_only_out(v) for v in network.nodes
            ]
        self._context_seq: List[ProcessContext] = [
            self._contexts[v] for v in network.nodes
        ]
        # Incrementally maintained views of the informed/active sets; the
        # frozenset snapshots handed to AdversaryView are rebuilt only in
        # rounds where the underlying set actually changed.
        self._informed_set: set = set()
        self._informed_view: FrozenSet[int] = frozenset()
        self._informed_dirty = False
        self._active_sorted: List[int] = []
        self._active_view: FrozenSet[int] = frozenset()
        self._active_dirty = False
        # Fault injection (config.churn): currently-crashed nodes plus
        # the was-it-active-at-crash memory the "informed" rejoin
        # policy needs to resume a node where it stopped.
        self._crashed: set = set()
        self._crashed_view: FrozenSet[int] = frozenset()
        self._crashed_dirty = False
        self._crash_was_active: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _insert_active(self, node: int) -> None:
        """Add ``node`` to the active set (bookkeeping only, no hook).

        Subclasses extend this (and :meth:`_deactivate`) to keep their
        own active-set representations — the fast engine's bitmask, the
        vector engine's boolean row — in sync with the base sets.
        """
        self._active.add(node)
        insort(self._active_sorted, node)
        self._active_dirty = True

    def _deactivate(self, node: int) -> None:
        """Remove ``node`` from the active set (no process hook runs)."""
        self._active.discard(node)
        idx = bisect_left(self._active_sorted, node)
        if idx < len(self._active_sorted) and (
            self._active_sorted[idx] == node
        ):
            del self._active_sorted[idx]
        self._active_dirty = True

    def _activate(self, node: int) -> None:
        if node in self._active:
            return
        self._insert_active(node)
        self.process_at[node].on_activate(self._contexts[node])

    def _mark_informed(self, node: int, round_number: int) -> None:
        self.trace.informed_round[node] = round_number
        self._informed_set.add(node)
        self._informed_dirty = True

    # ------------------------------------------------------------------
    # Fault injection (config.churn)
    # ------------------------------------------------------------------
    def _crash_node(self, node: int) -> None:
        """Take ``node`` down: no sends, no receptions, no progress.

        Under the ``"uninformed"`` rejoin policy the crash also wipes
        volatile state — payload custody is revoked (the trace's
        ``informed_round`` entry reverts to ``None``) so completion
        stays honest: a run only completes while every node actually
        holds the payload.
        """
        was_active = node in self._active
        self._crash_was_active[node] = was_active
        if was_active:
            self._deactivate(node)
        self._crashed.add(node)
        self._crashed_dirty = True
        churn = self.config.churn
        if churn is not None and churn.rejoin == "uninformed":
            if node in self._informed_set:
                self._informed_set.discard(node)
                self._informed_dirty = True
                self.trace.informed_round[node] = None
            self.process_at[node].on_crash()

    def _recover_node(self, node: int, rnd: int) -> None:
        """Bring ``node`` back up at the top of round ``rnd``.

        ``"informed"`` rejoin resumes a node that was active at crash
        time exactly where it stopped (no re-activation hook); every
        other case is a fresh join — activated immediately under
        synchronous start, or left asleep until a message wakes it
        under asynchronous start (the model's normal wake rule).
        """
        self._crashed.discard(node)
        self._crashed_dirty = True
        was_active = self._crash_was_active.pop(node, False)
        churn = self.config.churn
        if churn is not None and churn.rejoin == "informed" and was_active:
            self._insert_active(node)
        elif self.config.start_mode is StartMode.SYNCHRONOUS:
            # on_activate must observe the recovery round on every
            # engine; phase 1 has not advanced the contexts yet.
            self._contexts[node].round_number = rnd
            self._activate(node)

    def _apply_churn(self, rnd: int):
        """Apply round ``rnd``'s schedule events; returns the tuples
        recorded in the round's :class:`~repro.sim.trace.RoundRecord`
        (crashes before recoveries, matching schedule validation)."""
        churn = self.config.churn
        if churn is None:
            return (), ()
        crashed = churn.crashes.get(rnd, ())
        for node in crashed:
            self._crash_node(node)
        recovered = churn.recoveries.get(rnd, ())
        for node in recovered:
            self._recover_node(node, rnd)
        return crashed, recovered

    def _setup(self) -> None:
        churn = self.config.churn
        if churn is not None:
            churn.validate_for(self.network)
            for node in churn.initial_down:
                self._crash_node(node)
        source = self.network.source
        source_proc = self.process_at[source]
        source_proc.on_broadcast_input(
            Message(payload=self.payload, sender=source_proc.uid, round_sent=0)
        )
        self._mark_informed(source, 0)
        if self.config.start_mode is StartMode.SYNCHRONOUS:
            for node in self.network.nodes:
                if node not in self._crashed:
                    self._activate(node)
        else:
            # The environment input activates the source.
            self._activate(source)
        self.adversary.on_execution_start(self.network, self.proc_map)

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def _informed_nodes(self) -> FrozenSet[int]:
        if self._informed_dirty:
            self._informed_view = frozenset(self._informed_set)
            self._informed_dirty = False
        return self._informed_view

    def _active_nodes(self) -> FrozenSet[int]:
        if self._active_dirty:
            self._active_view = frozenset(self._active)
            self._active_dirty = False
        return self._active_view

    def _crashed_nodes(self) -> FrozenSet[int]:
        if self._crashed_dirty:
            self._crashed_view = frozenset(self._crashed)
            self._crashed_dirty = False
        return self._crashed_view

    def _decide_senders(self, rnd: int) -> Dict[int, Message]:
        """Phase 1: advance every context and collect the round's senders.

        Every context (sleeping ones included, so activation mid-round
        observes the right round) advances first.  The returned mapping's
        insertion order is ascending node order — the fast engine relies
        on this to reconstruct identical CR4 arrival lists.
        """
        for ctx in self._context_seq:
            ctx.round_number = rnd
        senders: Dict[int, Message] = {}
        for node in self._active_sorted:
            msg = self.process_at[node].decide_send(self._contexts[node])
            if msg is not None:
                senders[node] = msg
        return senders

    def _adversary_view(self, rnd: int, senders: Dict[int, Message]
                        ) -> AdversaryView:
        """Phase 2 (view): what the adversary observes this round.

        The view shares the engine's live mappings (adversaries must
        treat it as read-only); the informed/active snapshots come from
        the incrementally maintained caches.
        """
        return AdversaryView(
            round_number=rnd,
            network=self.network,
            senders=senders,
            informed=self._informed_nodes(),
            active=self._active_nodes(),
            proc=self.proc_map,
            crashed=self._crashed_nodes(),
        )

    def _validated_deliveries(
        self, view: AdversaryView, senders: Dict[int, Message]
    ) -> Dict[int, FrozenSet[int]]:
        """Phase 2 (choice): adversary-chosen unreliable deliveries.

        Every returned target is checked to be a legal unreliable-only
        out-neighbour of an actual sender.
        """
        raw = self.adversary.choose_deliveries(view)
        deliveries: Dict[int, FrozenSet[int]] = {}
        for sender, targets in raw.items():
            if sender not in senders:
                raise ValueError(
                    f"adversary delivered for non-sender node {sender}"
                )
            targets = frozenset(targets)
            illegal = targets - self._unreliable_only_seq[sender]
            if illegal:
                raise ValueError(
                    f"adversary chose illegal targets {sorted(illegal)} "
                    f"for sender {sender}"
                )
            deliveries[sender] = targets
        return deliveries

    def _step(self) -> RoundRecord:
        self._round += 1
        rnd = self._round
        network = self.network
        recording = self.config.record_receptions

        crashed_now, recovered_now = self._apply_churn(rnd)
        senders = self._decide_senders(rnd)
        view = self._adversary_view(rnd, senders)
        deliveries = self._validated_deliveries(view, senders)

        # Phase 3: arrivals (only nodes actually reached get a list).
        arrivals: Dict[int, List[Message]] = {}
        setdefault = arrivals.setdefault
        for sender, msg in senders.items():
            # A sender's message reaches itself.
            setdefault(sender, []).append(msg)
            for target in self._reliable_out_seq[sender]:
                setdefault(target, []).append(msg)
            for target in deliveries.get(sender, ()):
                setdefault(target, []).append(msg)

        # Phase 4: resolution and delivery.  Without reception recording
        # only nodes that are awake or reached need resolving (a sleeping
        # node with no arrivals observes nothing by definition); with
        # recording on, every node's observation goes into the record.
        def cr4(node: int, msgs: List[Message]) -> Optional[Message]:
            return self.adversary.resolve_cr4(view, node, msgs)

        # Observability: one hoisted boolean when disabled; when a sink
        # is installed the round tallies local ints and folds them into
        # counters once per round.  Pure observation — the resolver
        # wrapper delegates unchanged, so trace bytes cannot move.
        telemetry = self._telemetry
        obs_on = telemetry.enabled
        obs_delivered = obs_collisions = obs_silences = obs_drops = 0
        consults = [0]

        def counted_cr4(
            node: int, msgs: List[Message]
        ) -> Optional[Message]:
            consults[0] += 1
            return cr4(node, msgs)

        cr4_resolver = counted_cr4 if obs_on else cr4

        if recording:
            candidates: Sequence[int] = network.nodes
        elif len(self._active_sorted) == network.n:
            candidates = self._active_sorted
        else:
            touched = set(self._active_sorted)
            touched.update(arrivals)
            candidates = sorted(touched)

        no_arrivals: List[Message] = []
        newly_informed: List[int] = []
        newly_active: List[int] = []
        receptions: Optional[Dict[int, Reception]] = (
            {} if recording else None
        )
        informed_round = self.trace.informed_round
        rule = self.config.collision_rule
        crashed_set = self._crashed
        for node in candidates:
            if node in crashed_set:
                # A crashed radio hears nothing and is never consulted
                # for — arrivals at its position dissolve (recorded as
                # silence), and no message can wake it.
                if obs_on and node in arrivals:
                    obs_drops += 1
                if receptions is not None:
                    receptions[node] = SILENCE
                continue
            own_message = senders.get(node)
            node_arrivals = arrivals.get(node, no_arrivals)
            if own_message is None and not node_arrivals:
                # Fast path: a non-sender nothing reached hears silence
                # under every collision rule.
                reception = SILENCE
            else:
                reception = resolve_reception(
                    rule,
                    node,
                    own_message is not None,
                    own_message,
                    node_arrivals,
                    cr4_resolver=cr4_resolver,
                )
            if receptions is not None:
                receptions[node] = reception
            if obs_on:
                if reception.is_message:
                    obs_delivered += 1
                elif reception.is_collision:
                    obs_collisions += 1
                else:
                    obs_silences += 1
            if node not in self._active:
                if reception.is_message:
                    newly_active.append(node)
                    self._activate(node)
                else:
                    continue  # sleeping processes observe nothing
            process = self.process_at[node]
            was_informed = informed_round[node] is not None
            self._deliver(node, process, reception)
            if not was_informed and informed_round[node] is None:
                if process.has_message and self._carries_payload(reception):
                    self._mark_informed(node, rnd)
                    newly_informed.append(node)

        if obs_on:
            telemetry.count("engine.rounds")
            telemetry.count("engine.senders", len(senders))
            telemetry.count("engine.delivered", obs_delivered)
            telemetry.count("engine.collisions", obs_collisions)
            telemetry.count("engine.silences", obs_silences)
            telemetry.count("engine.crashed_drops", obs_drops)
            telemetry.count("engine.cr4_consults", consults[0])

        record = RoundRecord(
            round_number=rnd,
            senders=senders,
            unreliable_deliveries=deliveries,
            newly_informed=tuple(newly_informed),
            newly_active=tuple(newly_active),
            receptions=receptions,
            crashed=crashed_now,
            recovered=recovered_now,
        )
        self.trace.rounds.append(record)
        return record

    def _carries_payload(self, reception: Reception) -> bool:
        return (
            reception.is_message
            and reception.message is not None
            and reception.message.payload == self.payload
        )

    def _deliver(
        self, node: int, process: Process, reception: Reception
    ) -> None:
        # Custody of the broadcast payload is tracked by the trace, not by
        # Process.has_message alone, because processes may exchange
        # payload-free messages (their Process.deliver still runs).
        if reception.is_message and reception.message.payload != self.payload:
            # Deliver without transferring payload custody.
            process.on_reception(self._contexts[node], reception)
            return
        process.deliver(self._contexts[node], reception)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def round_number(self) -> int:
        """The number of rounds executed so far."""
        return self._round

    def step(self) -> RoundRecord:
        """Execute one round (setting up on the first call).

        Public stepping exists for protocols layered on broadcast (e.g.
        the gossip extension) that need their own termination logic.
        """
        if not self._started:
            self._setup()
            self._started = True
        return self._step()

    def run_until(self, predicate, max_rounds: Optional[int] = None
                  ) -> ExecutionTrace:
        """Execute rounds until ``predicate(engine)`` holds or a cap hits.

        Args:
            predicate: Called after every round with the engine; truthy
                return stops the run.
            max_rounds: Optional cap (default: the config's).
        """
        cap = max_rounds if max_rounds is not None else self.config.max_rounds
        while self._round < cap:
            self.step()
            if predicate(self):
                break
        self.trace.completed = self._all_informed()
        return self.trace

    def run(self) -> ExecutionTrace:
        """Execute until broadcast completes or ``max_rounds`` elapse."""
        if not self._started:
            self._setup()
            self._started = True
        while self._round < self.config.max_rounds:
            self._step()
            if self.config.stop_when_informed and self._all_informed():
                break
        self.trace.completed = self._all_informed()
        if self._telemetry.enabled:
            self._telemetry.event(
                "engine_run",
                engine=self.config.engine,
                n=self.network.n,
                rounds=self._round,
                completed=self.trace.completed,
            )
        return self.trace

    def _all_informed(self) -> bool:
        return len(self._informed_set) == self.network.n


def build_engine(
    network: DualGraph,
    processes: Sequence[Process],
    adversary: Optional[Adversary] = None,
    config: Optional[EngineConfig] = None,
    payload: object = "broadcast-message",
    topology: Optional["CompiledTopology"] = None,
) -> BroadcastEngine:
    """Instantiate the engine selected by ``config.engine``.

    ``"reference"`` yields :class:`BroadcastEngine`; ``"fast"`` yields
    :class:`repro.sim.fast_engine.FastBroadcastEngine`; ``"vector"``
    yields :class:`repro.sim.vector_engine.VectorBroadcastEngine` (both
    subclasses whose traces are bit-identical — the three are
    interchangeable wherever an engine is consumed).  ``topology``
    optionally shares one pre-compiled
    :class:`~repro.sim.fast_engine.CompiledTopology` across engines
    built on the same graph.
    """
    config = config if config is not None else EngineConfig()
    if config.engine == "reference":
        return BroadcastEngine(
            network, processes, adversary, config, payload,
            topology=topology,
        )
    if config.engine == "fast":
        from repro.sim.fast_engine import FastBroadcastEngine

        return FastBroadcastEngine(
            network, processes, adversary, config, payload,
            topology=topology,
        )
    if config.engine == "vector":
        from repro.sim.vector_engine import VectorBroadcastEngine

        return VectorBroadcastEngine(
            network, processes, adversary, config, payload,
            topology=topology,
        )
    raise ValueError(
        f"unknown engine {config.engine!r}; known: {list(ENGINE_NAMES)}"
    )


def run_broadcast(
    network: DualGraph,
    processes: Sequence[Process],
    adversary: Optional[Adversary] = None,
    **config_kwargs,
) -> ExecutionTrace:
    """One-call convenience wrapper: build an engine and run it.

    Keyword arguments are forwarded to :class:`EngineConfig`; pass
    ``engine="fast"`` to select the bitmask engine.
    """
    config = EngineConfig(**config_kwargs)
    engine = build_engine(network, processes, adversary, config)
    return engine.run()
