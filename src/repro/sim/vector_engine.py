"""NumPy lockstep engine: a whole seed population per matrix operation.

The paper's experiments are Monte-Carlo estimates over many seeds of one
*science cell* (graph × algorithm × collision rule); the batched sweep
path already hands each worker a :class:`~repro.experiments.spec.CellBatch`
of exactly those seeds.  This module adds the third engine backend,
which runs all of a cell's seeds in **lockstep**: per-seed/per-node
state lives in ``(seeds × nodes)`` NumPy boolean matrices, so delivery,
CR1–CR3 collision resolution and the reached-set algebra of one round
resolve as whole-matrix operations for every seed at once.

What stays per seed — and why traces stay bit-identical:

* **Decisions** — each seed keeps its own live processes with their own
  deterministic PRNG streams (``random.Random(f"{seed}:{uid}")``), so
  :meth:`~repro.sim.process.Process.decide_send` is called exactly as
  the reference engine would, in ascending node order, per seed.
* **Adversaries** — each seed has its own adversary object; its view,
  delivery choices and (in the fallback) CR4 consultations happen in
  the reference engine's order.
* **Delivery** — only positions whose reception can change process
  state are visited in Python; which positions those are is computed by
  the matrix algebra.  Receptions compare by value, so sharing one
  ``Reception`` per (seed, sender) is observationally identical to the
  reference engine's fresh instances.

The matrix algebra per round, for the live lanes (seeds still running):

* ``send`` — ``(L × n)`` boolean, bit set where that lane's node
  transmits this round.
* One integer matmul against the compiled topology's reach matrix
  yields the per-position **arrival count**; a second, sender-index
  weighted matmul yields, at positions with exactly one arrival, *which*
  sender reached them.  Adversary-chosen unreliable deliveries are added
  on top per lane.
* Boolean masks then classify every (seed, node) position into
  own-message / unique-message / collision / silence per the CR1–CR4
  observability matrix, and ``np.nonzero`` enumerates only the
  positions needing a Python-level delivery — collision/silence at
  non-observer processes is skipped entirely, in C, across all seeds.

CR4 consultation of a real adversary resolver is **batched**: all
consult positions of a round are collected from the int8 category
matrix at once and resolved lane by lane in ascending node order —
exactly the reference engine's consult order — *before* any delivery
runs.  Hoisting the consults ahead of delivery is safe because an
:class:`~repro.adversaries.base.AdversaryView` is an immutable snapshot
of the pre-delivery round state (frozen sender/informed/active sets):
deliveries cannot change what a consult observes, so only the per-lane
ordering matters, and ``np.nonzero``'s row-major output preserves it.
Payload-identity custody is the one remaining per-message reference
path.

Lanes may run **per-lane graphs**: :func:`run_lockstep` accepts one
shared network (one reach matrix, two BLAS matmuls per round) or a
sequence of per-lane networks over the same node count — the form
seed-dependent graph kinds (``gnp``, ``gray-zone``) need, where each
seed's lane carries its own compiled topology and the arrival algebra
runs per lane against that lane's reach rows.

The reach matrix itself has a dense and a ``scipy.sparse`` CSR form
(:meth:`repro.sim.fast_engine.CompiledTopology.reach_matrix`); the
engine auto-selects CSR for large graphs when SciPy is importable
(``sparse_reach`` overrides), keeping the per-round cost proportional
to the edges present instead of n².

The engines are interchangeable:
:func:`repro.sim.engine.build_engine` dispatches ``engine="vector"`` to
:class:`VectorBroadcastEngine` (a single-lane lockstep), and the
experiments layer runs vector cells through :func:`run_lockstep`
(``benchmarks/bench_vector_engine.py`` measures the seeds-throughput
win; ``tests/test_engine_fuzz.py`` and ``tests/test_vector_engine.py``
enforce trace equality).

NumPy is an optional dependency of this module alone: importing it
without NumPy works, :func:`vector_engine_eligible` then reports
``False`` and constructing the engine raises a clear error.  SciPy is
optional one level further — without it the dense reach matrix is
simply always used.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

try:  # pragma: no cover - exercised implicitly on numpy-less installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:  # pragma: no cover - exercised implicitly on scipy-less installs
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover
    _sp = None

from repro.adversaries.base import Adversary, AdversaryView
from repro.graphs.dualgraph import DualGraph
from repro.sim.collision import CollisionRule, resolve_reception
from repro.sim.engine import EngineConfig
from repro.sim.fast_engine import (
    CompiledTopology,
    FastBroadcastEngine,
    compile_topology,
    mask_engine_eligible,
)
from repro.sim.messages import (
    COLLISION,
    Message,
    Reception,
    SILENCE,
    received,
)
from repro.sim.process import Process
from repro.sim.trace import ExecutionTrace, RoundRecord


def have_numpy() -> bool:
    """Whether NumPy is importable (the vector engine's only dependency)."""
    return _np is not None


def have_scipy() -> bool:
    """Whether ``scipy.sparse`` is importable (sparse reach matrices)."""
    return _sp is not None


#: Auto-select the CSR reach matrix at or above this node count when
#: SciPy is importable: below it the dense matmul's BLAS throughput
#: wins, above it the dense matrix's O(n²) memory and per-round work
#: dominate (n=10⁴ dense float32 is already 400 MB).
_SPARSE_REACH_MIN_N = 2048


def _select_reach(topology: CompiledTopology, sparse: Optional[bool]):
    """The reach matrix a lane should run on: dense or CSR.

    ``sparse=None`` auto-selects (CSR iff SciPy is importable and the
    graph has at least :data:`_SPARSE_REACH_MIN_N` nodes); explicit
    ``True``/``False`` forces the form, raising when CSR is requested
    without SciPy.  Both forms produce exactly the same arrival counts
    and sender-index sums, so the choice never affects traces.
    """
    if sparse is None:
        sparse = _sp is not None and len(topology.bit) >= _SPARSE_REACH_MIN_N
    if sparse and _sp is None:
        raise RuntimeError(
            "sparse reach matrices require scipy; install it or pass "
            "sparse_reach=False"
        )
    return topology.reach_matrix(sparse=sparse)


#: Reception categories of the per-round classification matrix.  0 is
#: silence (also the skip default); the rest mark positions the Python
#: delivery loop must interpret.  Collision is deliberately last: a
#: collision is only deliverable to observers, so the default visit set
#: is ``0 < cat < _CAT_COLL``.
_CAT_OWN = 1  # a sender receiving its own message
_CAT_UNIQUE = 2  # a non-sender with exactly one arrival
_CAT_CONSULT = 3  # CR4 collision owned by a real adversary resolver
_CAT_COLL = 4  # collision notification (CR1/CR2)


def vector_engine_eligible(
    collision_rule: CollisionRule, adversary: Optional[Adversary] = None
) -> bool:
    """Whether the vector engine is the canonical choice for a combination.

    Shares the fast engine's eligibility truth table
    (:func:`repro.sim.fast_engine.mask_engine_eligible`), which is
    all-yes — every collision rule and adversary, CR4 real resolvers
    included (the batched consult path).  The only gate left is NumPy
    itself: without it this reports ``False`` so the sweep layer
    transparently falls back to the reference engine.
    """
    return _np is not None and mask_engine_eligible(
        collision_rule, adversary
    )


class VectorBroadcastEngine(FastBroadcastEngine):
    """NumPy drop-in for :class:`~repro.sim.engine.BroadcastEngine`.

    Constructor signature, public API, trace output, process-state
    evolution and adversary interaction are all identical to the
    reference engine; a standalone instance is a one-lane lockstep
    (see the module docstring for the algebra).  The multi-seed payoff
    comes from :func:`run_lockstep`, which steps many instances through
    shared matrix operations.
    """

    def __init__(
        self,
        *args: Any,
        sparse_reach: Optional[bool] = None,
        **kwargs: Any,
    ) -> None:
        if _np is None:
            raise RuntimeError(
                "the vector engine requires numpy; install it or use "
                "engine='fast' / engine='reference'"
            )
        super().__init__(*args, **kwargs)
        n = self.network.n
        topology = self._topology
        if topology is None:
            topology = compile_topology(self.network)
        self._np_reach = _select_reach(topology, sparse_reach)
        # Boolean row views of the incrementally maintained node sets;
        # the _insert_active/_deactivate and churn overrides keep the
        # rows current.
        self._active_row = _np.zeros(n, dtype=bool)
        self._crashed_row = _np.zeros(n, dtype=bool)
        observer_row = _np.zeros(n, dtype=bool)
        mask = self._observer_mask
        while mask:
            low = mask & -mask
            observer_row[low.bit_length() - 1] = True
            mask ^= low
        self._observer_row = observer_row

    def _insert_active(self, node: int) -> None:
        self._active_row[node] = True
        super()._insert_active(node)

    def _deactivate(self, node: int) -> None:
        self._active_row[node] = False
        super()._deactivate(node)

    def _crash_node(self, node: int) -> None:
        super()._crash_node(node)
        self._crashed_row[node] = True

    def _recover_node(self, node: int, rnd: int) -> None:
        super()._recover_node(node, rnd)
        self._crashed_row[node] = False

    def _step(self) -> RoundRecord:
        _lockstep_round([self])
        return self.trace.rounds[-1]


def _decide_lane_senders(
    lane: VectorBroadcastEngine, rnd: int
) -> Dict[int, Message]:
    """Phase 1 for one lane: ascending-node sender decisions.

    The same discipline as the fast engine: only active contexts advance
    here; a sleeping context's round counter is refreshed at wake-up.
    """
    senders: Dict[int, Message] = {}
    for node, process, ctx in lane._active_triples():
        ctx.round_number = rnd
        msg = process.decide_send(ctx)
        if msg is not None:
            senders[node] = msg
    return senders


def _lockstep_round(lanes: Sequence[VectorBroadcastEngine]) -> None:
    """Execute one synchronous round across all (live) lanes.

    Every lane must share the same node count, collision rule, start
    mode, recording flag and current round number — exactly what
    :func:`run_lockstep` guarantees (a standalone engine is a one-lane
    call).  Graphs may differ per lane: lanes sharing one reach matrix
    take the two-matmul fast path, per-lane graphs resolve their
    arrival algebra lane by lane.  Appends one
    :class:`~repro.sim.trace.RoundRecord` per lane.
    """
    np = _np
    first = lanes[0]
    n = first.network.n
    rule = first.config.collision_rule
    recording = first.config.record_receptions
    rnd = first._round + 1
    n_lanes = len(lanes)

    # Observability: lanes share one process (and in practice one
    # sink), so the first lane's captured telemetry tallies the whole
    # round; counters aggregate across lanes.  Pure observation —
    # nothing here feeds trace state.
    telemetry = first._telemetry
    obs_on = telemetry.enabled
    obs_delivered = obs_collisions = obs_silences = 0
    obs_consults = 0

    # Phase 1: per-lane decisions (per-seed RNG streams stay intact).
    # Sender positions are collected as flat (lane, node) coordinate
    # lists — proportional to the senders, never to ``lanes × n``.
    lane_senders: List[Dict[int, Message]] = []
    lane_churn: List[tuple] = []
    srows: List[int] = []
    snodes: List[int] = []
    for i, lane in enumerate(lanes):
        lane._round = rnd
        # Fault injection applies before any send decision, exactly as
        # in the scalar engines' _step.
        lane_churn.append(lane._apply_churn(rnd))
        senders = _decide_lane_senders(lane, rnd)
        lane_senders.append(senders)
        if senders:
            srows.extend([i] * len(senders))
            snodes.extend(senders)

    # Phase 2: per-lane adversary choices (validated the usual way).
    lane_views: List[AdversaryView] = []
    lane_deliveries: List[Dict] = []
    for i, lane in enumerate(lanes):
        view = lane._adversary_view(rnd, lane_senders[i])
        lane_views.append(view)
        lane_deliveries.append(
            lane._validated_deliveries(view, lane_senders[i])
        )

    # Phase 3: arrival algebra.
    # counts[l, u] = number of messages reaching node u in lane l;
    # wsum[l, u]   = sum of (sender node + 1) over those messages, so at
    # positions with exactly one arrival the sender is wsum - 1.
    # Lanes sharing one reach matrix (the shared-graph fast path, and
    # every standalone engine) resolve as two matmuls over the union of
    # sender columns; per-lane graphs fall back to one small
    # rows-gather + reduction per sending lane against that lane's own
    # reach matrix.  Either matrix may be dense or scipy.sparse CSR —
    # ``np.asarray`` normalises the product back to a plain ndarray.
    reach0 = first._np_reach
    homogeneous = all(lane._np_reach is reach0 for lane in lanes)
    if snodes:
        # float32 keeps the matmuls on BLAS; counts (≤ n) and the
        # sender-index sums the algebra reads (single-arrival positions,
        # ≤ n) stay far below 2²⁴, so the arithmetic is exact.
        snode_arr = np.asarray(snodes)
        if homogeneous:
            col_arr, col_inv = np.unique(snode_arr, return_inverse=True)
            sub = np.zeros((n_lanes, col_arr.size), dtype=np.float32)
            sub[srows, col_inv] = 1.0
            reach_rows = reach0[col_arr]
            counts = np.asarray(sub @ reach_rows)
            weights = (col_arr + 1).astype(np.float32)
            wsum = np.asarray((sub * weights) @ reach_rows)
        else:
            counts = np.zeros((n_lanes, n), dtype=np.float32)
            wsum = np.zeros((n_lanes, n), dtype=np.float32)
            for i, senders in enumerate(lane_senders):
                if not senders:
                    continue
                cols = np.fromiter(
                    senders, dtype=np.int64, count=len(senders)
                )
                rows = lanes[i]._np_reach[cols]
                counts[i] = np.asarray(rows.sum(axis=0)).ravel()
                weights = (cols + 1).astype(np.float32)
                wsum[i] = np.asarray(weights[None, :] @ rows).ravel()
    else:
        snode_arr = None
        counts = np.zeros((n_lanes, n), dtype=np.float32)
        wsum = np.zeros((n_lanes, n), dtype=np.float32)
    for i, deliveries in enumerate(lane_deliveries):
        for sender, targets in deliveries.items():
            if targets:
                ts = list(targets)
                counts[i, ts] += 1
                wsum[i, ts] += sender + 1

    # Classification per the CR1–CR4 observability matrix, encoded as
    # one int8 category per (lane, node) position.  Assignment order
    # makes the senders win: under CR2–CR4 a sender always hears its
    # own message, whatever else reached it.  Under CR1 a multiply
    # reached sender collides (no override), and a lone sender's one
    # arrival is its own message — _CAT_UNIQUE resolves it to exactly
    # that, so CR1 needs no sender category at all.
    multi = counts >= 2
    cat = np.zeros((n_lanes, n), dtype=np.int8)
    if multi.any():
        if rule.provides_collision_detection:  # CR1, CR2
            cat[multi] = _CAT_COLL
        elif rule is CollisionRule.CR4:
            # Per-lane: only adversaries with a real resolver are
            # consulted; base-default lanes resolve to silence (the
            # category default, like CR3).
            consulting = np.fromiter(
                (not lane._cr4_default_silence for lane in lanes),
                dtype=bool,
                count=n_lanes,
            )
            if consulting.any():
                cat[multi & consulting[:, None]] = _CAT_CONSULT
    cat[counts == 1] = _CAT_UNIQUE
    if snode_arr is not None and rule is not CollisionRule.CR1:
        cat[srows, snode_arr] = _CAT_OWN
    # Crashed radios hear nothing: zero their positions before the CR4
    # consult sweep so the adversary is never consulted for them
    # (reference parity — stateful resolvers must see identical call
    # sequences) and the phase-4 visit set skips them.
    for i, lane in enumerate(lanes):
        if lane._crashed:
            cat[i][lane._crashed_row] = 0

    # Phase 3b: batched CR4 consultation.  Every consult position left
    # in the category matrix (senders were just overridden to hear
    # themselves) is resolved here, before any delivery — safe because
    # the adversary view is an immutable snapshot of the pre-delivery
    # round state, so deliveries cannot change what a consult observes.
    # ``np.nonzero``'s row-major output visits each lane's positions in
    # ascending node order, exactly the reference engine's consult
    # order, so stateful resolvers (e.g. rng-driven ones) see the same
    # call sequence.  The reference engine consults even when the
    # chosen outcome ends up undelivered, and so does this phase: the
    # consult set is independent of the phase-4 visit set.
    lane_consults: List[Dict[int, Reception]] = [
        {} for _ in range(n_lanes)
    ]
    if rule is CollisionRule.CR4 and cat.any():
        crows, cnodes = np.nonzero(cat == _CAT_CONSULT)
        obs_consults = int(crows.size)
        for i, node in zip(crows.tolist(), cnodes.tolist()):
            lane = lanes[i]
            senders = lane_senders[i]
            deliveries = lane_deliveries[i]
            lreach = lane._np_reach
            # Rebuild the arrival list in reference order (ascending
            # sender node; `senders` preserves it by construction).
            arrivals = [
                msg
                for s, msg in senders.items()
                if lreach[s, node] or node in deliveries.get(s, ())
            ]
            adversary = lane.adversary
            view = lane_views[i]

            def cr4(
                node: int,
                msgs: List[Message],
                view: AdversaryView = view,
                adversary: Adversary = adversary,
            ) -> Optional[Message]:
                return adversary.resolve_cr4(view, node, msgs)

            lane_consults[i][node] = resolve_reception(
                rule, node, False, None, arrivals, cr4_resolver=cr4
            )

    # Phase 4: visit only positions whose delivery can matter.  Active
    # observers get every reception (including silence when unreached);
    # CR4 consultations always happen (the reference engine consults
    # even when the chosen outcome ends up undelivered).  Everything the
    # Python loop reads is gathered to plain lists first — per-element
    # numpy scalar indexing is what would otherwise dominate the round.
    lane_sender_rec: List[Dict[int, Reception]] = [
        {} for _ in range(n_lanes)
    ]
    lane_newly_informed: List[List[int]] = [[] for _ in range(n_lanes)]
    lane_newly_active: List[List[int]] = [[] for _ in range(n_lanes)]
    lane_receptions: List[Optional[Dict[int, Reception]]] = [
        {} if recording else None for _ in range(n_lanes)
    ]

    if recording:
        ls = np.repeat(np.arange(n_lanes), n)
        ns = np.tile(np.arange(n), n_lanes)
    else:
        # Collisions and silence deliver only to active observers, so
        # without observers the visit set is just the positions whose
        # reception carries (or may carry, for consults) a message.
        need = (cat > 0) & (cat < _CAT_COLL)
        if any(lane._observer_mask for lane in lanes):
            observer = np.stack(
                [lane._observer_row for lane in lanes]
            )
            active_mat = np.stack([lane._active_row for lane in lanes])
            need = need | (active_mat & observer)
        ls, ns = np.nonzero(need)

    # One hoisted-locals delivery loop per lane: nonzero's row-major
    # output keeps each lane's positions contiguous and node-ascending,
    # exactly the reference engine's candidate order.
    bounds = np.searchsorted(ls, np.arange(n_lanes + 1)).tolist()
    ns_list = ns.tolist()
    cats = cat[ls, ns].tolist()
    wsums = wsum[ls, ns].tolist()

    for i in range(n_lanes):
        lo, hi = bounds[i], bounds[i + 1]
        if lo == hi:
            continue
        lane = lanes[i]
        senders = lane_senders[i]
        active = lane._active
        contexts = lane._contexts
        process_at = lane.process_at
        informed_round = lane.trace.informed_round
        deliver = lane._deliver
        carries_payload = lane._carries_payload
        observer_mask = lane._observer_mask
        activate = lane._activate
        mark_informed = lane._mark_informed
        sender_rec = lane_sender_rec[i]
        consults = lane_consults[i]
        newly_informed = lane_newly_informed[i]
        newly_active = lane_newly_active[i]
        rec_map = lane_receptions[i]
        for node, category, weight in zip(
            ns_list[lo:hi], cats[lo:hi], wsums[lo:hi]
        ):
            if category == 0:
                reception = SILENCE
            elif category == _CAT_OWN:
                reception = sender_rec.get(node)
                if reception is None:
                    reception = received(senders[node])
                    sender_rec[node] = reception
            elif category == _CAT_UNIQUE:
                sender = int(weight) - 1
                reception = sender_rec.get(sender)
                if reception is None:
                    reception = received(senders[sender])
                    sender_rec[sender] = reception
            elif category == _CAT_COLL:
                reception = COLLISION
            else:  # _CAT_CONSULT — resolved by the batched phase 3b
                reception = consults[node]

            if rec_map is not None:
                rec_map[node] = reception
            if obs_on:
                if reception.message is not None:
                    obs_delivered += 1
                elif reception.is_collision:
                    obs_collisions += 1
                else:
                    obs_silences += 1
            is_message = reception.message is not None
            if node not in active:
                if is_message:
                    contexts[node].round_number = rnd  # wake mid-round
                    newly_active.append(node)
                    activate(node)
                else:
                    continue  # sleeping processes observe nothing
            elif not is_message and not (observer_mask >> node & 1):
                continue  # provably inert delivery
            process = process_at[node]
            was_informed = informed_round[node] is not None
            deliver(node, process, reception)
            if not was_informed and informed_round[node] is None:
                if process.has_message and carries_payload(reception):
                    mark_informed(node, rnd)
                    newly_informed.append(node)

    if obs_on:
        telemetry.count("engine.rounds", n_lanes)
        telemetry.count("engine.senders", len(snodes))
        telemetry.count("engine.delivered", obs_delivered)
        telemetry.count("engine.collisions", obs_collisions)
        telemetry.count("engine.silences", obs_silences)
        telemetry.count("engine.cr4_consults", obs_consults)
        obs_drops = 0
        for i, lane in enumerate(lanes):
            if lane._crashed:
                obs_drops += int(
                    (counts[i][lane._crashed_row] > 0).sum()
                )
        telemetry.count("engine.crashed_drops", obs_drops)

    for i, lane in enumerate(lanes):
        crashed_now, recovered_now = lane_churn[i]
        lane.trace.rounds.append(
            RoundRecord(
                round_number=rnd,
                senders=lane_senders[i],
                unreliable_deliveries=lane_deliveries[i],
                newly_informed=tuple(lane_newly_informed[i]),
                newly_active=tuple(lane_newly_active[i]),
                receptions=lane_receptions[i],
                crashed=crashed_now,
                recovered=recovered_now,
            )
        )


def run_lockstep(
    network: Union[DualGraph, Sequence[DualGraph]],
    process_lists: Sequence[Sequence[Process]],
    adversaries: Sequence[Optional[Adversary]],
    configs: Sequence[EngineConfig],
    payload: object = "broadcast-message",
    topology: Union[
        CompiledTopology, Sequence[CompiledTopology], None
    ] = None,
    sparse_reach: Optional[bool] = None,
) -> List[ExecutionTrace]:
    """Run one lane per ``(processes, adversary, config)`` triple in lockstep.

    ``network`` is either one shared :class:`DualGraph` (one compiled
    topology and one reach matrix serve every lane — the cheapest form)
    or a sequence of per-lane graphs over the same node count, the form
    seed-dependent graph kinds need (each seed's lane then runs against
    its own reach rows).  ``topology`` mirrors that shape: one shared
    :class:`CompiledTopology`, a per-lane sequence, or ``None`` to
    compile per distinct graph object here.  All lanes must agree on
    collision rule, start mode and reception recording; seeds, round
    caps and stop conditions stay per lane.  ``sparse_reach`` picks the
    reach-matrix form for every lane (``None`` auto-selects — CSR for
    large graphs when SciPy is importable, see :func:`_select_reach`);
    the choice never affects traces.

    Each lane's trace is bit-identical to what the reference engine
    produces for the same inputs — lanes retire individually the moment
    their own run would stop (broadcast complete or cap hit), exactly
    mirroring :meth:`~repro.sim.engine.BroadcastEngine.run`.

    Returns the traces in input order.
    """
    if _np is None:
        raise RuntimeError(
            "run_lockstep requires numpy; install it or run the seeds "
            "through engine='fast' instead"
        )
    if not process_lists:
        raise ValueError("need at least one lane")
    if not (
        len(process_lists) == len(adversaries) == len(configs)
    ):
        raise ValueError(
            "process_lists, adversaries and configs must align "
            f"({len(process_lists)}, {len(adversaries)}, {len(configs)})"
        )
    n_lanes = len(process_lists)
    if isinstance(network, DualGraph):
        networks: List[DualGraph] = [network] * n_lanes
    else:
        networks = list(network)
        if len(networks) != n_lanes:
            raise ValueError(
                "per-lane networks must align with process_lists "
                f"({len(networks)} networks, {n_lanes} lanes)"
            )
        if len({graph.n for graph in networks}) != 1:
            raise ValueError(
                "lockstep lanes must share a node count; got "
                f"{sorted({graph.n for graph in networks})}"
            )
    shared = {
        (c.collision_rule, c.start_mode, c.record_receptions)
        for c in configs
    }
    if len(shared) != 1:
        raise ValueError(
            "lockstep lanes must share collision rule, start mode and "
            "reception recording"
        )
    if topology is None:
        # One compile per distinct graph object: a shared graph pays
        # once, per-lane graphs pay once each.
        by_graph: Dict[int, CompiledTopology] = {}
        topologies = [
            by_graph.setdefault(id(graph), compile_topology(graph))
            for graph in networks
        ]
    elif isinstance(topology, CompiledTopology):
        topologies = [topology] * n_lanes
    else:
        topologies = list(topology)
        if len(topologies) != n_lanes:
            raise ValueError(
                "per-lane topologies must align with process_lists "
                f"({len(topologies)} topologies, {n_lanes} lanes)"
            )
    lanes = [
        VectorBroadcastEngine(
            net,
            procs,
            adv,
            config,
            payload,
            topology=topo,
            sparse_reach=sparse_reach,
        )
        for net, topo, procs, adv, config in zip(
            networks, topologies, process_lists, adversaries, configs
        )
    ]
    for lane in lanes:
        lane._setup()
        lane._started = True
    # Mirror BroadcastEngine.run(): the stop-when-informed check runs
    # only *after* a round, so even an initially informed lane (n == 1)
    # executes one round; a non-positive cap executes none.
    live = [lane for lane in lanes if lane._round < lane.config.max_rounds]
    for lane in lanes:
        if lane._round >= lane.config.max_rounds:
            lane.trace.completed = lane._all_informed()
    while live:
        _lockstep_round(live)
        still: List[VectorBroadcastEngine] = []
        for lane in live:
            stopped = (
                lane.config.stop_when_informed and lane._all_informed()
            ) or lane._round >= lane.config.max_rounds
            if stopped:
                lane.trace.completed = lane._all_informed()
            else:
                still.append(lane)
        live = still
    for lane in lanes:
        if lane._telemetry.enabled:
            lane._telemetry.event(
                "engine_run",
                engine="vector",
                n=lane.network.n,
                rounds=lane._round,
                completed=lane.trace.completed,
            )
    return [lane.trace for lane in lanes]
