"""Execution traces: per-round records plus the queries the paper's
analysis needs (completion rounds, isolation events, interval density).

The density of an interval (Section 5, equation (1)) is::

    den(r, r') = (# nodes first informed during [r, r']) / (r' - r + 1)

and drives the amortisation argument behind Strong Select's bound.  The
trace also exposes *isolation* rounds (exactly one sender network-wide),
which both lower-bound constructions and the Harmonic analysis reason
about.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.sim.messages import Message, Reception


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one round.

    Attributes:
        round_number: 1-based round index.
        senders: Sending nodes and their messages.
        unreliable_deliveries: For each sender, the unreliable-only
            out-neighbours the adversary chose to reach.
        newly_informed: Nodes whose process first obtained the broadcast
            payload this round.
        newly_active: Nodes whose process woke up this round (asynchronous
            start only; empty under synchronous start).
        receptions: Per-node observations; populated only when the engine
            records detailed traces.
        crashed: Nodes taken down by fault injection at the top of this
            round (empty in failure-free runs).
        recovered: Nodes brought back up by fault injection at the top
            of this round (empty in failure-free runs).
    """

    round_number: int
    senders: Mapping[int, Message]
    unreliable_deliveries: Mapping[int, FrozenSet[int]]
    newly_informed: Tuple[int, ...]
    newly_active: Tuple[int, ...]
    receptions: Optional[Mapping[int, Reception]] = None
    crashed: Tuple[int, ...] = ()
    recovered: Tuple[int, ...] = ()

    @property
    def num_senders(self) -> int:
        return len(self.senders)

    @property
    def is_isolation(self) -> bool:
        """Whether exactly one process transmitted network-wide."""
        return len(self.senders) == 1


@dataclass
class ExecutionTrace:
    """The full record of one execution.

    Attributes:
        network_name: Label of the network the execution ran on.
        n: Number of nodes.
        proc: The node → process-uid assignment used.
        rounds: One record per executed round.
        informed_round: For each node, the round its process first obtained
            the payload (0 for the source; ``None`` if never informed).
        completed: Whether every process obtained the payload.
    """

    network_name: str
    n: int
    proc: Mapping[int, int]
    rounds: List[RoundRecord] = field(default_factory=list)
    informed_round: Dict[int, Optional[int]] = field(default_factory=dict)
    completed: bool = False

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        """Number of rounds executed."""
        return len(self.rounds)

    @property
    def completion_round(self) -> Optional[int]:
        """The round by which every process held the payload, or ``None``."""
        if not self.completed:
            return None
        return max((r or 0) for r in self.informed_round.values())

    def informed_by(self, round_number: int) -> FrozenSet[int]:
        """Nodes informed by the end of the given round."""
        return frozenset(
            v
            for v, r in self.informed_round.items()
            if r is not None and r <= round_number
        )

    def isolation_rounds(self) -> List[int]:
        """Rounds in which exactly one process transmitted."""
        return [rec.round_number for rec in self.rounds if rec.is_isolation]

    def sender_counts(self) -> List[int]:
        """Per-round number of transmitting processes."""
        return [rec.num_senders for rec in self.rounds]

    # ------------------------------------------------------------------
    # Paper-specific queries
    # ------------------------------------------------------------------
    def density(self, r: int, r_prime: int) -> float:
        """The interval density ``den(r, r')`` of Section 5, equation (1).

        Args:
            r: Interval start (1-based, inclusive).
            r_prime: Interval end (inclusive, ``r_prime >= r``).
        """
        if r_prime < r or r < 1:
            raise ValueError(f"invalid interval [{r}, {r_prime}]")
        count = sum(
            1
            for v, t in self.informed_round.items()
            if t is not None and r <= t <= r_prime
        )
        return count / (r_prime - r + 1)

    def first_isolation_of(self, node: int) -> Optional[int]:
        """First round in which ``node`` transmitted alone, if any."""
        for rec in self.rounds:
            if rec.is_isolation and node in rec.senders:
                return rec.round_number
        return None

    # ------------------------------------------------------------------
    # Serialization (for experiment artifacts)
    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        """A compact JSON-serialisable summary of the execution."""
        doc = {
            "network": self.network_name,
            "n": self.n,
            "rounds": self.num_rounds,
            "completed": self.completed,
            "completion_round": self.completion_round,
            "isolation_rounds": len(self.isolation_rounds()),
            "total_transmissions": sum(self.sender_counts()),
        }
        # Emitted only when fault injection actually fired, so
        # failure-free summaries keep their exact pre-churn form.
        crash_events = sum(len(r.crashed) for r in self.rounds)
        recovery_events = sum(len(r.recovered) for r in self.rounds)
        if crash_events or recovery_events:
            doc["crash_events"] = crash_events
            doc["recovery_events"] = recovery_events
        return doc

    def to_json(self) -> str:
        """Serialise the summary to JSON."""
        return json.dumps(self.summary(), indent=2, sort_keys=True)
