"""Collision rules CR1–CR4 from Section 2.1 of the paper.

For a process ``p`` in a given round, let *arrivals* be the multiset of
messages that reach ``p``'s node (a sender's message always reaches the
sender's own node: "its message reaches ... and v itself").  The four rules
resolve arrivals into a single :class:`~repro.sim.messages.Reception`:

* **CR1** — full collision detection: two or more arrivals (including the
  process's own message if it sent) yield collision notification ``⊤``.
* **CR2** — a sender cannot sense the medium while sending, so it always
  receives its own message; a non-sender with two or more arrivals
  receives ``⊤``.
* **CR3** — senders receive their own message; a non-sender with two or
  more arrivals hears silence ``⊥`` (no collision detection).
* **CR4** — senders receive their own message; for a non-sender with two or
  more arrivals the *adversary* chooses between ``⊥`` and any one of the
  arriving messages.  This is the weakest rule (most adversarial) and is
  the one the paper's algorithms are analysed under.

The rules are ordered CR1 (strongest for algorithms) to CR4 (weakest); the
paper's lower bounds use CR1 and its upper bounds use CR4, strengthening
both directions.

The full observability matrix (the invariant both engines are held to by
``repro.sim.validation`` and the differential equivalence suite)::

    rule | sender observes             | non-sender: 0 arr | 1 arr | >=2 arr
    -----+-----------------------------+-------------------+-------+--------
    CR1  | ⊤ if >=2 arrivals (its own  | ⊥                 | msg   | ⊤
         | included), else its message |                   |       |
    CR2  | always its own message      | ⊥                 | msg   | ⊤
    CR3  | always its own message      | ⊥                 | msg   | ⊥
    CR4  | always its own message      | ⊥                 | msg   | adversary:
         |                             |                   |       | ⊥ or one
         |                             |                   |       | arrival

Two consequences the engines rely on: silence at a node with zero
arrivals is universal (a sender always has at least one arrival — its
own), and only CR4's last cell involves the adversary, which is why the
fast engine can resolve everything else with set algebra alone.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.sim.messages import (
    COLLISION,
    Message,
    Reception,
    SILENCE,
    received,
)

#: Signature of the adversary callback used by CR4 to resolve a collision at
#: a non-sending node: given the node and the list of arriving messages, the
#: adversary returns either ``None`` (the node hears silence) or one of the
#: messages (the node receives it).
CR4Resolver = Callable[[int, List[Message]], Optional[Message]]


class CollisionRule(enum.Enum):
    """The four collision rules, strongest (CR1) to weakest (CR4)."""

    CR1 = 1
    CR2 = 2
    CR3 = 3
    CR4 = 4

    @property
    def provides_collision_detection(self) -> bool:
        """Whether the rule can ever deliver collision notification."""
        return self in (CollisionRule.CR1, CollisionRule.CR2)

    @property
    def sender_hears_own_message(self) -> bool:
        """Whether a sender unconditionally receives its own message."""
        return self is not CollisionRule.CR1


def resolve_reception(
    rule: CollisionRule,
    node: int,
    is_sender: bool,
    own_message: Optional[Message],
    arrivals: List[Message],
    cr4_resolver: Optional[CR4Resolver] = None,
) -> Reception:
    """Resolve the arrivals at one node into a reception.

    Args:
        rule: The collision rule in force.
        node: The node at which arrivals are being resolved (passed through
            to the CR4 resolver so adaptive adversaries can discriminate).
        is_sender: Whether the process at this node transmitted this round.
        own_message: The message transmitted by this node, if any.
        arrivals: All messages reaching the node this round.  For a sender
            this list includes ``own_message``.
        cr4_resolver: Adversary callback, required when ``rule`` is CR4 and
            a non-sender has two or more arrivals; when omitted, the engine
            default (silence) is used, matching the weakest deterministic
            stand-in adversary.

    Returns:
        The process's observation for the round.
    """
    if is_sender and own_message is None:
        raise ValueError("sender must provide its own message")
    if is_sender and rule.sender_hears_own_message:
        # CR2/CR3/CR4: a transmitting process cannot sense the medium and
        # always receives its own message.
        return received(own_message)

    if is_sender:
        # CR1 sender: full collision detection including its own signal.
        if len(arrivals) >= 2:
            return COLLISION
        return received(own_message)

    # Non-sender cases.
    if not arrivals:
        return SILENCE
    if len(arrivals) == 1:
        return received(arrivals[0])

    # Two or more arrivals at a non-sender.
    if rule in (CollisionRule.CR1, CollisionRule.CR2):
        return COLLISION
    if rule is CollisionRule.CR3:
        return SILENCE

    # CR4: adversary chooses silence or one of the messages.
    if cr4_resolver is None:
        return SILENCE
    choice = cr4_resolver(node, list(arrivals))
    if choice is None:
        return SILENCE
    if choice not in arrivals:
        raise ValueError(
            "CR4 resolver must return None or one of the arriving messages"
        )
    return received(choice)
