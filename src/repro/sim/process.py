"""Process automata for the synchronous-round radio network model.

The paper defines an algorithm as a collection of ``n`` processes (each a
deterministic or probabilistic automaton), each holding a unique identifier
from a totally ordered set ``I``.  An adversary assigns processes to graph
nodes via the ``proc`` bijection (Section 2.1); processes never learn which
node they occupy.

Concretely, subclasses implement two hooks:

* :meth:`Process.decide_send` — called at the start of each round for every
  *active* process; returning a :class:`~repro.sim.messages.Message` means
  "transmit this round", returning ``None`` means "listen".
* :meth:`Process.on_reception` — called at the end of the round with the
  process's observation (silence / message / collision notification).

Activation follows the paper's two start rules: under *synchronous start*
all processes are active from round 1; under *asynchronous start* a process
is activated by its first actual message reception (the engine invokes
:meth:`Process.on_activate` at that point, before delivering the message).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Any, Optional

from repro.sim.messages import Message, Reception


@dataclass
class ProcessContext:
    """Per-round information the engine exposes to a process.

    Attributes:
        round_number: The current 1-based global round number.  Using a
            global counter is without loss of generality (footnote 1 of the
            paper: the source can stamp its messages with its local counter
            and every node adopts the stamp on first reception).
        rng: A process-private deterministic PRNG.  Probabilistic automata
            must draw all randomness from this generator so executions are
            reproducible given a seed.
        n: The number of processes in the system, which the paper's
            algorithms are allowed to know (both Strong Select and Harmonic
            Broadcast are parameterized by ``n``).
    """

    round_number: int
    rng: random.Random
    n: int


class Process(abc.ABC):
    """Base class for all protocol automata.

    Subclasses must be driven only through the public hooks below; the
    engine guarantees the calling discipline::

        on_activate(ctx)                  # once, when the process wakes up
        repeat each round while active:
            decide_send(ctx) -> msg|None
            on_reception(ctx, reception)

    The broadcast *message* is delivered to the source process before round
    1 via :meth:`on_broadcast_input` (Section 3: "the message arrives at the
    source process prior to the first round").
    """

    def __init__(self, uid: int) -> None:
        self._uid = uid
        self._has_message = False
        self._message: Optional[Message] = None
        self._activation_round: Optional[int] = None
        self._first_message_round: Optional[int] = None

    # ------------------------------------------------------------------
    # Identity and bookkeeping
    # ------------------------------------------------------------------
    @property
    def uid(self) -> int:
        """The process's unique identifier from the ordered id set ``I``."""
        return self._uid

    @property
    def has_message(self) -> bool:
        """Whether this process holds the broadcast message."""
        return self._has_message

    @property
    def message(self) -> Optional[Message]:
        """The broadcast message, if held."""
        return self._message

    @property
    def activation_round(self) -> Optional[int]:
        """Round in which the process became active (0 = before round 1)."""
        return self._activation_round

    @property
    def first_message_round(self) -> Optional[int]:
        """Round in which the broadcast message was first received.

        For the source this is 0, matching the paper's convention
        ``t_s = 0`` in Section 7.
        """
        return self._first_message_round

    # ------------------------------------------------------------------
    # Engine-invoked lifecycle hooks
    # ------------------------------------------------------------------
    def on_broadcast_input(self, message: Message) -> None:
        """Deliver the broadcast message from the environment (source only)."""
        self._has_message = True
        self._message = message
        self._first_message_round = 0

    def on_activate(self, ctx: ProcessContext) -> None:
        """Invoked once when the process becomes active.

        Under synchronous start this happens before round 1 for every
        process (with ``ctx.round_number == 0``); under asynchronous start
        it happens just before the first message reception is delivered.
        Subclasses overriding this must call ``super().on_activate(ctx)``.
        """
        self._activation_round = ctx.round_number

    def on_crash(self) -> None:
        """Wipe volatile broadcast state (fault injection, uninformed rejoin).

        Invoked by the engine when the node this process occupies
        crashes under a :class:`~repro.sim.faults.ChurnSchedule` with
        the ``"uninformed"`` rejoin policy: payload custody is lost, so
        the process must be informed again after recovery.  Subclasses
        with additional volatile state may extend this (calling
        ``super().on_crash()``); under the ``"informed"`` policy the
        engine never calls it.
        """
        self._has_message = False
        self._message = None
        self._first_message_round = None

    def deliver(self, ctx: ProcessContext, reception: Reception) -> None:
        """Engine entry point: record message custody, then dispatch.

        Subclasses should override :meth:`on_reception`, not this method.
        """
        if reception.is_message and not self._has_message:
            self._has_message = True
            self._message = reception.message
            self._first_message_round = ctx.round_number
        self.on_reception(ctx, reception)

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def decide_send(self, ctx: ProcessContext) -> Optional[Message]:
        """Return the message to transmit this round, or ``None`` to listen."""

    def on_reception(self, ctx: ProcessContext, reception: Reception) -> None:
        """Observe the end-of-round outcome.  Default: no-op."""

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def outgoing(self, ctx: ProcessContext, **meta: Any) -> Message:
        """Build a copy of the held broadcast message for retransmission."""
        if self._message is None:
            raise RuntimeError(
                f"process {self._uid} has no message to retransmit"
            )
        msg = self._message.restamped(self._uid, ctx.round_number)
        if meta:
            msg.meta.update(meta)
        return msg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(uid={self._uid})"


class SilentProcess(Process):
    """A process that never transmits.  Useful in tests and lower bounds."""

    def decide_send(self, ctx: ProcessContext) -> Optional[Message]:
        return None


class ScriptedProcess(Process):
    """A process that follows a fixed transmission schedule.

    Args:
        uid: Process identifier.
        send_rounds: Collection of global round numbers in which to send
            (only takes effect once the process holds the message, since a
            process with nothing to say transmits nothing meaningful; pass
            ``send_without_message=True`` to transmit a dummy payload
            regardless, which some lower-bound constructions require).
        send_without_message: Transmit even before holding the broadcast
            message (the transmission then carries a ``None`` payload).
    """

    def __init__(
        self,
        uid: int,
        send_rounds,
        send_without_message: bool = False,
    ) -> None:
        super().__init__(uid)
        self._send_rounds = frozenset(send_rounds)
        self._send_without_message = send_without_message

    def decide_send(self, ctx: ProcessContext) -> Optional[Message]:
        if ctx.round_number not in self._send_rounds:
            return None
        if self.has_message:
            return self.outgoing(ctx)
        if self._send_without_message:
            return Message(None, self.uid, ctx.round_number)
        return None
