"""Message and reception primitives for the dual graph radio model.

The paper's model (Section 2.1) has three possible per-round outcomes for a
process: it hears *silence* (written ``⊥``), it receives exactly one
*message*, or it experiences a *collision* (written ``⊤``, only observable
under collision rules that provide collision detection).

This module defines:

* :class:`Message` — the unit transmitted in a round.  Broadcast algorithms
  treat the broadcast payload as a black box (Section 3), so a message simply
  carries the payload plus bookkeeping metadata (sender, round) used by the
  trace machinery, never by the algorithms themselves.
* :class:`Reception` — the tagged union of the three outcomes above.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class ReceptionKind(enum.Enum):
    """The three per-round outcomes a process can observe."""

    #: No message reached the process (the paper's ``⊥``).
    SILENCE = "silence"
    #: Exactly one message was received.
    MESSAGE = "message"
    #: Collision notification (the paper's ``⊤``); only produced under
    #: collision rules CR1 and CR2.
    COLLISION = "collision"


@dataclass(frozen=True)
class Message:
    """A transmission made by one process in one round.

    Attributes:
        payload: The broadcast content.  Algorithms must treat this as a
            black box; equality of payloads is what defines "the broadcast
            message has arrived".
        sender: The process identifier (not the node) that transmitted.
        round_sent: The 1-based round number of the transmission.
        meta: Free-form metadata an algorithm may attach (e.g. the source's
            round stamp used by Strong Select's global-counter argument,
            footnote 1 in the paper).  Never interpreted by the engine.
    """

    payload: Any
    sender: int
    round_sent: int
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    def restamped(self, sender: int, round_sent: int) -> "Message":
        """Return a copy of this message as re-sent by another process."""
        return Message(
            payload=self.payload,
            sender=sender,
            round_sent=round_sent,
            meta=dict(self.meta),
        )


@dataclass(frozen=True)
class Reception:
    """What a single process observed at the end of a round.

    Exactly one of the three kinds; ``message`` is populated iff
    ``kind is ReceptionKind.MESSAGE``.
    """

    kind: ReceptionKind
    message: Optional[Message] = None

    def __post_init__(self) -> None:
        if self.kind is ReceptionKind.MESSAGE and self.message is None:
            raise ValueError("MESSAGE reception requires a message")
        if self.kind is not ReceptionKind.MESSAGE and self.message is not None:
            raise ValueError(f"{self.kind} reception must not carry a message")

    @property
    def is_silence(self) -> bool:
        return self.kind is ReceptionKind.SILENCE

    @property
    def is_message(self) -> bool:
        return self.kind is ReceptionKind.MESSAGE

    @property
    def is_collision(self) -> bool:
        return self.kind is ReceptionKind.COLLISION


#: Shared singleton for the silence outcome.
SILENCE = Reception(ReceptionKind.SILENCE)

#: Shared singleton for the collision-notification outcome.
COLLISION = Reception(ReceptionKind.COLLISION)


def received(message: Message) -> Reception:
    """Build a message reception."""
    return Reception(ReceptionKind.MESSAGE, message)
