"""Bitmask fast-path engine for sweep workloads.

:class:`FastBroadcastEngine` executes the exact Section 2.1 round
semantics of :class:`~repro.sim.engine.BroadcastEngine` — it is a
drop-in subclass producing **bit-identical traces** (the differential
harness in ``tests/test_fast_engine_equivalence.py`` asserts this seed
for seed) — but resolves each round with Python-int set algebra instead
of per-node message lists:

* Node sets (active, reached, multiply-reached) are single Python ints
  with bit ``v`` standing for node ``v``; adjacency is precompiled to a
  per-node *self-plus-reliable-out* mask.
* One pass over the senders computes, with two masks, which nodes were
  reached at least once and which at least twice::

      reached_multi |= reached_once & reach(sender)
      reached_once  |= reach(sender)

  Under CR1–CR3 the reception at every node is a pure function of
  (sender?, arrival count 0/1/2+), so collisions and silence resolve by
  popcount-style mask tests without ever materialising an arrival list;
  only nodes with exactly one arrival need the actual
  :class:`~repro.sim.messages.Message`.
* Process classes that leave both ``deliver`` and ``on_reception`` at
  the :class:`~repro.sim.process.Process` defaults observe non-message
  receptions as provable no-ops, so the engine only visits *reached*
  nodes each round instead of every active node.  Classes overriding
  either hook (e.g. the gossip extension) are tracked in an observer
  mask and keep the reference engine's full delivery discipline.
* The per-message reference path is kept for the two places set algebra
  cannot express: CR4 collisions at non-senders (the adversary must be
  consulted with the full arrival list, reconstructed in the reference
  engine's exact order) and payload-identity custody tracking (which
  already operates on single delivered messages).

Because the semantics are identical, the engines are interchangeable:
:func:`repro.sim.engine.build_engine` dispatches on
``EngineConfig.engine`` and the experiments layer
(:func:`repro.experiments.runner.execute_task`) transparently selects
the fast path whenever :func:`fast_engine_eligible` approves the
collision-rule/adversary combination.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.adversaries.base import Adversary
from repro.graphs.dualgraph import DualGraph
from repro.sim.collision import CollisionRule, resolve_reception
from repro.sim.engine import BroadcastEngine
from repro.sim.messages import COLLISION, Message, Reception, SILENCE, received
from repro.sim.process import Process, ProcessContext
from repro.sim.trace import RoundRecord


class CompiledTopology:
    """Reusable per-graph precompilation shared by both engines.

    Everything an engine derives from the :class:`DualGraph` alone —
    the reference engine's flat adjacency sequences and the fast
    engine's per-node bit and reach masks — is hoisted here, so a sweep
    cell that runs many seeds on the same graph pays the derivation
    once (:func:`repro.experiments.runner.execute_batch`) instead of
    once per engine construction.

    Instances are immutable after construction and engines only read
    them, so one compiled topology is safe to share across any number
    of sequential engine instances.  A topology is bound to the graph
    object it was compiled from; the engines reject a mismatched pair.

    Attributes:
        graph: The dual graph this topology was compiled from.
        reliable_out_seq: Per-node sorted tuple of reliable
            out-neighbours (indexed by node).
        unreliable_only_seq: Per-node frozenset of unreliable-only
            out-neighbours (indexed by node).
        bit: Per-node single-bit mask ``1 << v``.
        reach_mask: Per-node self-plus-reliable-out bitmask — who a
            transmission from ``v`` is guaranteed to reach.
    """

    __slots__ = (
        "graph",
        "reliable_out_seq",
        "unreliable_only_seq",
        "bit",
        "reach_mask",
        "_reach_matrix",
        "_reach_matrix_sparse",
    )

    def __init__(self, graph: DualGraph) -> None:
        self.graph = graph
        self.reliable_out_seq: List[tuple] = [
            tuple(sorted(graph.reliable_out(v))) for v in graph.nodes
        ]
        self.unreliable_only_seq: List[FrozenSet[int]] = [
            graph.unreliable_only_out(v) for v in graph.nodes
        ]
        bit = [1 << v for v in graph.nodes]
        self.bit: List[int] = bit
        self.reach_mask: List[int] = [
            bit[v] | sum(bit[u] for u in self.reliable_out_seq[v])
            for v in graph.nodes
        ]
        self._reach_matrix = None
        self._reach_matrix_sparse = None

    def reach_matrix(self, sparse: bool = False) -> Any:
        """The reach masks as an ``(n, n)`` ``float32`` matrix.

        ``reach_matrix()[v, u] == 1.0`` iff a transmission from ``v`` is
        guaranteed to reach ``u`` (``v`` itself plus its reliable
        out-neighbours) — the matrix form of :attr:`reach_mask`, consumed
        by the vector engine's whole-matrix arrival algebra
        (:mod:`repro.sim.vector_engine`).  ``float32`` so the per-round
        matmuls hit BLAS (NumPy integer matmul is a naive loop); every
        value the algebra actually reads — arrival counts ≤ n, and
        sender-index sums only at positions with exactly one arrival
        (≤ n) — is far below 2²⁴, so the float arithmetic is exact.

        With ``sparse=True`` the same matrix is returned as a SciPy CSR
        matrix (``scipy.sparse``, an optional dependency gated like
        NumPy — ``ImportError`` propagates when it is missing).  Row
        slicing, scalar indexing and ``dense @ csr_rows`` products all
        yield the same exact values as the dense form, so the vector
        engine can consume either interchangeably; for large sparse
        graphs (n ≥ ~10³ at bounded degree) the CSR form keeps the
        per-round cost proportional to the edges actually present
        instead of n² (an n=10⁴ dense reach matrix alone is 400 MB).

        Both forms are computed lazily and cached independently, so
        sweeps that never select the vector engine pay nothing and never
        import NumPy or SciPy.
        """
        if sparse:
            if self._reach_matrix_sparse is None:
                import numpy as np
                from scipy.sparse import csr_matrix

                n = len(self.bit)
                indptr = np.zeros(n + 1, dtype=np.int64)
                indices: List[int] = []
                for v, targets in enumerate(self.reliable_out_seq):
                    row = sorted({v, *targets})
                    indices.extend(row)
                    indptr[v + 1] = len(indices)
                self._reach_matrix_sparse = csr_matrix(
                    (
                        np.ones(len(indices), dtype=np.float32),
                        np.asarray(indices, dtype=np.int64),
                        indptr,
                    ),
                    shape=(n, n),
                )
            return self._reach_matrix_sparse
        if self._reach_matrix is None:
            import numpy as np

            n = len(self.bit)
            matrix = np.zeros((n, n), dtype=np.float32)
            for v, targets in enumerate(self.reliable_out_seq):
                matrix[v, v] = 1.0
                if targets:
                    matrix[v, list(targets)] = 1.0
            self._reach_matrix = matrix
        return self._reach_matrix


def compile_topology(graph: DualGraph) -> CompiledTopology:
    """Precompile a graph's engine structures for reuse across runs."""
    return CompiledTopology(graph)


def mask_engine_eligible(
    collision_rule: CollisionRule, adversary: Optional[Adversary] = None
) -> bool:
    """The single eligibility truth table behind both mask-algebra gates.

    Both the fast (bitmask) and vector (NumPy lockstep) engines resolve
    rounds with set algebra, and both carry a differentially-tested
    consult path for the one case the algebra cannot decide alone — a
    CR4 collision at a non-sender whose adversary actually implements
    :meth:`~repro.adversaries.base.Adversary.resolve_cr4`.  The fast
    engine rebuilds that collision's arrival list inline; the vector
    engine batches all consult positions per round and resolves them
    lane by lane in reference order (see
    :mod:`repro.sim.vector_engine`).  The truth table is therefore
    all-yes::

        rule    | adversary's resolve_cr4       | fast | vector
        --------+-------------------------------+------+-------
        CR1–CR3 | (never consulted)             | yes  | yes
        CR4     | base default (always silence) | yes  | yes
        CR4     | overridden (real resolver)    | yes  | yes

    (Historically the last row routed back to the reference engine; the
    consult paths closed that gap, and ``tests/test_engine_fuzz.py``
    fuzzes it together with the rest of the table.)  The only remaining
    downgrade axis is a missing optional dependency:
    :func:`repro.sim.vector_engine.vector_engine_eligible` additionally
    requires NumPy to be importable.  The ``collision_rule`` and
    ``adversary`` arguments are kept so callers keep routing through
    one central predicate — a future engine variant with a genuine
    semantic gap would reintroduce its rows here, and every gate and
    test pins this table rather than its own copy.
    """
    del collision_rule, adversary  # every combination is eligible
    return True


def fast_engine_eligible(
    collision_rule: CollisionRule, adversary: Optional[Adversary] = None
) -> bool:
    """Whether the fast engine is the canonical choice for a combination.

    A thin wrapper over :func:`mask_engine_eligible` — see its docstring
    for the full truth table shared with the vector engine's gate.
    """
    return mask_engine_eligible(collision_rule, adversary)


def _observes_non_messages(process: Process) -> bool:
    """Whether silence/collision deliveries can affect this process.

    ``Process.deliver`` mutates state only for message receptions and the
    base ``on_reception`` is a no-op, so a process whose class overrides
    neither hook provably ignores non-message receptions.
    """
    cls = type(process)
    return (
        cls.on_reception is not Process.on_reception
        or cls.deliver is not Process.deliver
    )


class FastBroadcastEngine(BroadcastEngine):
    """Bitmask drop-in for :class:`~repro.sim.engine.BroadcastEngine`.

    Constructor signature, public API, trace output, process-state
    evolution and adversary interaction are all identical to the
    reference engine; only the internal per-round resolution differs.
    See the module docstring for the algebra.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        network = self.network
        topology = self._topology
        if topology is not None:
            bit = topology.bit
            self._bit: List[int] = bit
            self._reach_mask: List[int] = topology.reach_mask
        else:
            bit = [1 << v for v in network.nodes]
            self._bit = bit
            # Per-node reach mask: the sender itself plus its reliable
            # out-neighbours ("its message reaches ... and v itself").
            self._reach_mask = [
                bit[v] | sum(bit[u] for u in self._reliable_out_seq[v])
                for v in network.nodes
            ]
        # Nodes whose process observes silence/collision: they keep the
        # reference engine's every-round delivery discipline.
        self._observer_mask = sum(
            bit[v]
            for v in network.nodes
            if _observes_non_messages(self.process_at[v])
        )
        # Maintained by the _insert_active/_deactivate overrides;
        # construction precedes _setup(), so no node is active yet.
        self._active_mask = 0
        # Crashed-node bitmask, maintained by the churn overrides.
        self._crashed_mask = 0
        # (node, process, context) for each active node, ascending node
        # order; rebuilt lazily after activations.
        self._triples: List[Tuple[int, Process, ProcessContext]] = []
        self._triples_dirty = True
        # CR4 with the base-class resolver is always silence; detected
        # once so the hot loop never builds arrival lists for it.
        self._cr4_default_silence = (
            type(self.adversary).resolve_cr4 is Adversary.resolve_cr4
        )

    def _insert_active(self, node: int) -> None:
        self._active_mask |= self._bit[node]
        self._triples_dirty = True
        super()._insert_active(node)

    def _deactivate(self, node: int) -> None:
        self._active_mask &= ~self._bit[node]
        self._triples_dirty = True
        super()._deactivate(node)

    def _crash_node(self, node: int) -> None:
        super()._crash_node(node)
        self._crashed_mask |= self._bit[node]

    def _recover_node(self, node: int, rnd: int) -> None:
        super()._recover_node(node, rnd)
        self._crashed_mask &= ~self._bit[node]

    def _deliver(
        self, node: int, process: Process, reception: Reception
    ) -> None:
        # Same semantics as the reference implementation, spelled with
        # attribute tests instead of property calls (hot path).
        msg = reception.message
        if msg is not None and msg.payload != self.payload:
            process.on_reception(self._contexts[node], reception)
            return
        process.deliver(self._contexts[node], reception)

    def _carries_payload(self, reception: Reception) -> bool:
        msg = reception.message
        return msg is not None and msg.payload == self.payload

    def _active_triples(self) -> List[Tuple[int, Process, ProcessContext]]:
        if self._triples_dirty:
            self._triples = [
                (v, self.process_at[v], self._contexts[v])
                for v in self._active_sorted
            ]
            self._triples_dirty = False
        return self._triples

    def _step(self) -> RoundRecord:
        self._round += 1
        rnd = self._round
        network = self.network
        recording = self.config.record_receptions
        rule = self.config.collision_rule
        bit = self._bit
        reach_mask = self._reach_mask
        contexts = self._contexts

        crashed_now, recovered_now = self._apply_churn(rnd)
        crashed_mask = self._crashed_mask

        # Phase 1: decisions.  Only active contexts advance here; a
        # sleeping process's context is observed solely at wake-up, so
        # its round counter is refreshed then (`wake` below).  Ascending
        # node order gives `senders` the insertion order the reference
        # engine guarantees.
        senders: Dict[int, Message] = {}
        for node, process, ctx in self._active_triples():
            ctx.round_number = rnd
            msg = process.decide_send(ctx)
            if msg is not None:
                senders[node] = msg

        # Phase 2: adversary (shared with the reference engine).
        view = self._adversary_view(rnd, senders)
        deliveries = self._validated_deliveries(view, senders)

        # Phase 3: arrival algebra.  After the pass, bit v of
        # reached_once means "some message reached v" and bit v of
        # reached_multi means "two or more messages reached v".
        reached_once = 0
        reached_multi = 0
        sender_reach: Dict[int, int] = {}
        for sender in senders:
            m = reach_mask[sender]
            targets = deliveries.get(sender)
            if targets:
                for t in targets:
                    m |= bit[t]
            sender_reach[sender] = m
            reached_multi |= reached_once & m
            reached_once |= m
        single = reached_once & ~reached_multi

        # Nodes with exactly one arrival are the only ones whose
        # reception carries a Message; one shared Reception per sender
        # serves all of that sender's unique receivers (receptions are
        # immutable value objects, so sharing is observationally
        # identical to the reference engine's fresh instances).
        unique_rec: Dict[int, Reception] = {}
        sender_rec: Dict[int, Reception] = {}
        if single:
            for sender, m in sender_reach.items():
                hits = m & single
                if not hits:
                    continue
                rec = received(senders[sender])
                sender_rec[sender] = rec
                while hits:
                    low = hits & -hits
                    unique_rec[low.bit_length() - 1] = rec
                    hits ^= low

        # Phase 4: resolution and delivery, ascending node order
        # (matching the reference engine's candidate ordering).  Without
        # recording, only reached nodes and active observers can change
        # state: an unreached non-observer hears silence, which its
        # process provably ignores.
        def cr4(node: int, msgs: List[Message]) -> Optional[Message]:
            return self.adversary.resolve_cr4(view, node, msgs)

        # Observability (reference-engine parity: one hoisted boolean
        # when off, per-visit tallies when on, nothing feeding trace
        # state).  Counters are implementation-level — the mask path
        # visits a different candidate set than the reference loop, so
        # per-engine totals are comparable only within an engine.
        telemetry = self._telemetry
        obs_on = telemetry.enabled
        obs_delivered = obs_collisions = obs_silences = 0
        obs_fallbacks = 0
        consults = [0]

        def counted_cr4(
            node: int, msgs: List[Message]
        ) -> Optional[Message]:
            consults[0] += 1
            return cr4(node, msgs)

        cr4_resolver = counted_cr4 if obs_on else cr4

        receptions: Optional[Dict[int, Reception]] = (
            {} if recording else None
        )
        newly_informed: List[int] = []
        newly_active: List[int] = []
        informed_round = self.trace.informed_round
        process_at = self.process_at
        deliver = self._deliver
        sender_msg = senders.get
        active_mask = self._active_mask
        observer_mask = self._observer_mask
        cr1 = rule is CollisionRule.CR1
        collision_on_multi = rule.provides_collision_detection
        silence_on_multi = rule is CollisionRule.CR3 or (
            rule is CollisionRule.CR4 and self._cr4_default_silence
        )

        if recording:
            pending = 0
            candidates = iter(network.nodes)  # every reception is recorded
        else:
            # Crashed radios hear nothing: their positions never need a
            # visit (they cannot be active, so the observer term is
            # already clear of them).
            pending = (
                reached_once | (active_mask & observer_mask)
            ) & ~crashed_mask
            candidates = None

        while True:
            if candidates is not None:
                node = next(candidates, None)
                if node is None:
                    break
            else:
                if not pending:
                    break
                low = pending & -pending
                node = low.bit_length() - 1
                pending ^= low

            b = bit[node]
            if crashed_mask & b:
                # Crashed radio: arrivals dissolve, recorded as silence,
                # never consulted for, never woken (reference parity).
                if receptions is not None:
                    receptions[node] = SILENCE
                continue
            if not reached_once & b:
                # Nothing reached the node (so it cannot have sent:
                # senders always reach themselves) — silence under
                # every collision rule.
                reception = SILENCE
            elif reached_multi & b:
                own = sender_msg(node)
                if own is not None:
                    if cr1:
                        reception = COLLISION
                    else:
                        reception = sender_rec.get(node)
                        if reception is None:
                            reception = received(own)
                            sender_rec[node] = reception
                elif collision_on_multi:  # CR1/CR2 non-sender
                    reception = COLLISION
                elif silence_on_multi:  # CR3, or CR4 default resolver
                    reception = SILENCE
                else:
                    # CR4 with a real adversary resolver: rebuild the
                    # arrival list in reference order (ascending sender
                    # node) and defer to the shared resolution path.
                    if obs_on:
                        obs_fallbacks += 1
                    arrivals = [
                        msg
                        for s, msg in senders.items()
                        if sender_reach[s] & b
                    ]
                    reception = resolve_reception(
                        rule,
                        node,
                        False,
                        None,
                        arrivals,
                        cr4_resolver=cr4_resolver,
                    )
            else:
                # Exactly one arrival: a lone sender hears itself (CR1's
                # collision needs two arrivals), a non-sender receives
                # the unique message.
                reception = unique_rec[node]

            if receptions is not None:
                receptions[node] = reception
            if obs_on:
                if reception.message is not None:
                    obs_delivered += 1
                elif reception.is_collision:
                    obs_collisions += 1
                else:
                    obs_silences += 1
            # `.message is not None` is the cheap attribute-level spelling
            # of Reception.is_message (a MESSAGE reception always carries
            # a message; the other kinds never do).
            is_message = reception.message is not None
            if not active_mask & b:
                if is_message:
                    contexts[node].round_number = rnd  # wake mid-round
                    newly_active.append(node)
                    self._activate(node)
                else:
                    continue  # sleeping processes observe nothing
            elif not is_message and not observer_mask & b:
                continue  # provably inert delivery
            process = process_at[node]
            was_informed = informed_round[node] is not None
            deliver(node, process, reception)
            if not was_informed and informed_round[node] is None:
                if process.has_message and self._carries_payload(reception):
                    self._mark_informed(node, rnd)
                    newly_informed.append(node)

        if obs_on:
            telemetry.count("engine.rounds")
            telemetry.count("engine.senders", len(senders))
            telemetry.count("engine.delivered", obs_delivered)
            telemetry.count("engine.collisions", obs_collisions)
            telemetry.count("engine.silences", obs_silences)
            telemetry.count(
                "engine.crashed_drops",
                bin(reached_once & crashed_mask).count("1"),
            )
            telemetry.count("engine.cr4_consults", consults[0])
            telemetry.count("engine.cr4_fallbacks", obs_fallbacks)

        record = RoundRecord(
            round_number=rnd,
            senders=senders,
            unreliable_deliveries=deliveries,
            newly_informed=tuple(newly_informed),
            newly_active=tuple(newly_active),
            receptions=receptions,
            crashed=crashed_now,
            recovered=recovered_now,
        )
        self.trace.rounds.append(record)
        return record
