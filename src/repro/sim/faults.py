"""Deterministic fault injection: crash, recovery and late join.

The paper's adversary controls unreliable *edges* of the dual graph;
real radio deployments also lose and regain *nodes*.  This module adds
that axis as data: a :class:`ChurnSchedule` is a frozen, validated
description of per-round crash and recovery events (plus nodes that
are down from the start — late joiners), applied identically by all
three engines (reference, fast bitmask, vector lockstep) at the top of
each round, before any process decides to send.

Semantics (enforced by the engines and re-checked by
:func:`repro.sim.validation.validate_execution`):

* A **crashed** node contributes nothing: it never transmits, it is
  removed from the active set, every message that reaches its position
  dissolves (the node observes nothing and is recorded as hearing
  silence when receptions are recorded), and it cannot be woken by a
  message under asynchronous start.
* A **recovery** rejoins the node under the schedule's ``rejoin``
  policy.  ``"uninformed"`` models volatile memory: the crash already
  wiped the process's payload custody (the trace's ``informed_round``
  entry reverts to ``None`` and the node must be informed again), and
  the rejoined process restarts through
  :meth:`~repro.sim.process.Process.on_activate` (under synchronous
  start immediately; under asynchronous start it sleeps until a
  message wakes it, the model's normal wake rule).  ``"informed"``
  models stable storage: the node keeps its payload and automaton
  state across the outage and, if it was active when it crashed,
  resumes exactly where it stopped.
* **Late join** is an initially-down node plus a recovery event — the
  node simply does not exist until its recovery round.

Everything is deterministic: a schedule is plain data, and the
rate-driven generator :func:`generate_churn` draws every coin from one
``random.Random`` seeded from the run's own seed (namespaced so the
churn stream never correlates with the adversary's or the processes'
streams).  Ambient randomness and constant seeds are banned here by
rule RPR007 of ``repro check``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.graphs.dualgraph import DualGraph

#: Recognised rejoin policies (see the module docstring).
REJOIN_POLICIES = ("uninformed", "informed")


def _freeze_events(
    events: Mapping[int, Iterable[int]], label: str
) -> Dict[int, Tuple[int, ...]]:
    """Sorted, duplicate-checked copy of a round → nodes event table."""
    out: Dict[int, Tuple[int, ...]] = {}
    for rnd in sorted(events):
        nodes = tuple(sorted(events[rnd]))
        if not nodes:
            continue
        if not isinstance(rnd, int) or rnd < 1:
            raise ValueError(
                f"{label} round {rnd!r} is not a positive integer "
                "(events take effect at the top of round 1, 2, …)"
            )
        if len(set(nodes)) != len(nodes):
            raise ValueError(
                f"duplicate nodes in {label} event at round {rnd}: "
                f"{list(nodes)}"
            )
        out[rnd] = nodes
    return out


@dataclass(frozen=True)
class ChurnSchedule:
    """A validated, immutable crash/recovery plan for one execution.

    Attributes:
        crashes: ``round → nodes`` crashing at the top of that round
            (before the round's send decisions).
        recoveries: ``round → nodes`` recovering at the top of that
            round; a node recovering at round ``r`` participates in
            round ``r``.  Within one round crashes apply first, but a
            single node may not crash *and* recover in the same round.
        initial_down: Nodes that are down before round 1 (late
            joiners; they come up via a recovery event, or never).
        rejoin: ``"uninformed"`` (volatile memory — the default, and
            the adversarially stronger policy) or ``"informed"``
            (stable storage).  See the module docstring.

    Construction validates the event state machine: a crash requires
    the node to be up, a recovery requires it to be down, so a
    schedule that constructs is always applicable from round 1.
    """

    crashes: Mapping[int, Tuple[int, ...]] = field(default_factory=dict)
    recoveries: Mapping[int, Tuple[int, ...]] = field(
        default_factory=dict
    )
    initial_down: Tuple[int, ...] = ()
    rejoin: str = "uninformed"

    def __post_init__(self) -> None:
        if self.rejoin not in REJOIN_POLICIES:
            raise ValueError(
                f"unknown rejoin policy {self.rejoin!r}; "
                f"known: {list(REJOIN_POLICIES)}"
            )
        crashes = _freeze_events(self.crashes, "crash")
        recoveries = _freeze_events(self.recoveries, "recovery")
        down = sorted(set(self.initial_down))
        if len(down) != len(tuple(self.initial_down)):
            raise ValueError(
                f"duplicate nodes in initial_down: "
                f"{sorted(self.initial_down)}"
            )
        object.__setattr__(self, "crashes", crashes)
        object.__setattr__(self, "recoveries", recoveries)
        object.__setattr__(self, "initial_down", tuple(down))
        # Replay the event sequence: every event must be legal from
        # the state the previous events left behind.
        state = set(down)
        for rnd in sorted(set(crashes) | set(recoveries)):
            crashed = crashes.get(rnd, ())
            recovered = recoveries.get(rnd, ())
            overlap = set(crashed) & set(recovered)
            if overlap:
                raise ValueError(
                    f"node(s) {sorted(overlap)} both crash and recover "
                    f"in round {rnd}"
                )
            for node in crashed:
                if node in state:
                    raise ValueError(
                        f"crash of node {node} in round {rnd}: "
                        "node is already down"
                    )
                state.add(node)
            for node in recovered:
                if node not in state:
                    raise ValueError(
                        f"recovery of node {node} in round {rnd}: "
                        "node is not down"
                    )
                state.discard(node)

    @property
    def is_trivial(self) -> bool:
        """Whether the schedule contains no events at all."""
        return not (
            self.crashes or self.recoveries or self.initial_down
        )

    def nodes_touched(self) -> Tuple[int, ...]:
        """Every node any event of the schedule mentions, sorted."""
        touched = set(self.initial_down)
        for nodes in self.crashes.values():
            touched.update(nodes)
        for nodes in self.recoveries.values():
            touched.update(nodes)
        return tuple(sorted(touched))

    def validate_for(self, network: DualGraph) -> None:
        """Check the schedule is applicable to ``network``.

        Every event node must exist, and the source must not start
        down — the broadcast payload is handed to a live source before
        round 1 (the source may still crash mid-run; with the
        uninformed policy it then loses the payload until a neighbour
        re-informs it).
        """
        touched = self.nodes_touched()
        bad = [v for v in touched if not 0 <= v < network.n]
        if bad:
            raise ValueError(
                f"churn schedule names node(s) {bad} outside the "
                f"network's node range 0..{network.n - 1}"
            )
        if network.source in self.initial_down:
            raise ValueError(
                f"churn schedule starts source node {network.source} "
                "down; the broadcast input needs a live source before "
                "round 1"
            )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable form (see :meth:`from_dict`)."""
        doc: Dict[str, object] = {"rejoin": self.rejoin}
        if self.crashes:
            doc["crashes"] = {
                str(rnd): list(nodes)
                for rnd, nodes in sorted(self.crashes.items())
            }
        if self.recoveries:
            doc["recoveries"] = {
                str(rnd): list(nodes)
                for rnd, nodes in sorted(self.recoveries.items())
            }
        if self.initial_down:
            doc["initial_down"] = list(self.initial_down)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "ChurnSchedule":
        """Rebuild a schedule from its :meth:`to_dict` form."""
        return cls(
            crashes={
                int(rnd): tuple(nodes)
                for rnd, nodes in dict(
                    doc.get("crashes", {})  # type: ignore[arg-type]
                ).items()
            },
            recoveries={
                int(rnd): tuple(nodes)
                for rnd, nodes in dict(
                    doc.get("recoveries", {})  # type: ignore[arg-type]
                ).items()
            },
            initial_down=tuple(doc.get("initial_down", ())),  # type: ignore[arg-type]
            rejoin=str(doc.get("rejoin", "uninformed")),
        )


def generate_churn(
    n: int,
    rounds: int,
    crash_rate: float = 0.02,
    recover_rate: float = 0.2,
    seed: int = 0,
    rejoin: str = "uninformed",
    protect: Iterable[int] = (0,),
) -> ChurnSchedule:
    """A rate-driven random schedule, deterministic in its arguments.

    Each round, every currently-up unprotected node crashes with
    probability ``crash_rate`` and every currently-down node recovers
    with probability ``recover_rate``; coins are drawn in (round, node)
    order from one ``random.Random`` namespaced off ``seed``, so the
    schedule is a pure function of the arguments and never correlates
    with the adversary's or the processes' streams (which derive from
    the same run seed under different namespaces).

    Args:
        n: Node count of the target network.
        rounds: Horizon to generate events for (usually the run's
            ``max_rounds``).
        crash_rate: Per-round per-node crash probability in [0, 1]
            (default 0.02 — the ``repro run --crash-rate`` default).
        recover_rate: Per-round per-node recovery probability in [0, 1]
            (default 0.2, likewise mirroring the CLI).
        seed: The run's seed; the churn stream derives from it.
        rejoin: Rejoin policy for the schedule.
        protect: Nodes exempt from crashing (default: node 0, the
            conventional source).
    """
    if not 0.0 <= crash_rate <= 1.0 or not 0.0 <= recover_rate <= 1.0:
        raise ValueError(
            f"rates must lie in [0, 1]; got crash_rate={crash_rate}, "
            f"recover_rate={recover_rate}"
        )
    rng = random.Random(f"churn:{seed}")
    protected = frozenset(protect)
    down: set = set()
    crashes: Dict[int, List[int]] = {}
    recoveries: Dict[int, List[int]] = {}
    for rnd in range(1, rounds + 1):
        for node in range(n):
            if node in down:
                if rng.random() < recover_rate:
                    recoveries.setdefault(rnd, []).append(node)
                    down.discard(node)
            elif node not in protected:
                if rng.random() < crash_rate:
                    crashes.setdefault(rnd, []).append(node)
                    down.add(node)
    return ChurnSchedule(
        crashes={r: tuple(v) for r, v in crashes.items()},
        recoveries={r: tuple(v) for r, v in recoveries.items()},
        rejoin=rejoin,
    )


def window_churn(
    n: int,
    count: int,
    start: int,
    length: int,
    rejoin: str = "uninformed",
    protect: Iterable[int] = (0,),
) -> ChurnSchedule:
    """A fixed outage window: the ``count`` highest-numbered
    unprotected nodes crash at round ``start`` and recover together at
    round ``start + length`` — no randomness at all, the shape CI
    smoke sweeps and worst-case explorations want.
    """
    if count < 0 or start < 1 or length < 1:
        raise ValueError(
            f"need count >= 0, start >= 1, length >= 1; got "
            f"count={count}, start={start}, length={length}"
        )
    protected = frozenset(protect)
    victims = [v for v in range(n - 1, -1, -1) if v not in protected]
    victims = sorted(victims[:count])
    if not victims:
        return ChurnSchedule(rejoin=rejoin)
    return ChurnSchedule(
        crashes={start: tuple(victims)},
        recoveries={start + length: tuple(victims)},
        rejoin=rejoin,
    )
