"""Trace serialization: save executions as JSON and load them back.

Recorded executions are experiment artifacts: together with
:class:`~repro.adversaries.scripted.ReplayAdversary` a saved trace can be
re-run and re-validated later (or on another machine), making results
self-certifying.  The format is plain JSON, one document per trace.

Payloads and message contents must be JSON-representable (the default
string payload is); ``meta`` dictionaries are preserved as-is.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.sim.messages import (
    COLLISION,
    Message,
    Reception,
    ReceptionKind,
    SILENCE,
    received,
)
from repro.sim.trace import ExecutionTrace, RoundRecord

FORMAT_VERSION = 1


def _message_to_json(msg: Message) -> dict:
    return {
        "payload": msg.payload,
        "sender": msg.sender,
        "round_sent": msg.round_sent,
        "meta": msg.meta,
    }


def _message_from_json(doc: dict) -> Message:
    return Message(
        payload=doc["payload"],
        sender=doc["sender"],
        round_sent=doc["round_sent"],
        meta=dict(doc.get("meta", {})),
    )


def _reception_to_json(rec: Reception) -> dict:
    out: dict = {"kind": rec.kind.value}
    if rec.message is not None:
        out["message"] = _message_to_json(rec.message)
    return out


def _reception_from_json(doc: dict) -> Reception:
    kind = ReceptionKind(doc["kind"])
    if kind is ReceptionKind.MESSAGE:
        return received(_message_from_json(doc["message"]))
    return SILENCE if kind is ReceptionKind.SILENCE else COLLISION


def trace_to_json(trace: ExecutionTrace) -> str:
    """Serialise a trace (with or without recorded receptions)."""
    rounds = []
    for rec in trace.rounds:
        doc: dict = {
            "round": rec.round_number,
            "senders": {
                str(v): _message_to_json(m) for v, m in rec.senders.items()
            },
            "deliveries": {
                str(v): sorted(ts)
                for v, ts in rec.unreliable_deliveries.items()
            },
            "newly_informed": list(rec.newly_informed),
            "newly_active": list(rec.newly_active),
        }
        if rec.receptions is not None:
            doc["receptions"] = {
                str(v): _reception_to_json(r)
                for v, r in rec.receptions.items()
            }
        # Fault-injection events are emitted only when present, so
        # failure-free traces stay byte-identical to earlier versions
        # (and FORMAT_VERSION holds).
        if rec.crashed:
            doc["crashed"] = list(rec.crashed)
        if rec.recovered:
            doc["recovered"] = list(rec.recovered)
        rounds.append(doc)
    return json.dumps(
        {
            "format_version": FORMAT_VERSION,
            "network": trace.network_name,
            "n": trace.n,
            "proc": {str(v): uid for v, uid in trace.proc.items()},
            "completed": trace.completed,
            "informed_round": {
                str(v): r for v, r in trace.informed_round.items()
            },
            "rounds": rounds,
        }
    )


def trace_from_json(text: str) -> ExecutionTrace:
    """Load a trace serialised by :func:`trace_to_json`."""
    doc = json.loads(text)
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    trace = ExecutionTrace(
        network_name=doc["network"],
        n=doc["n"],
        proc={int(v): uid for v, uid in doc["proc"].items()},
        completed=doc["completed"],
        informed_round={
            int(v): r for v, r in doc["informed_round"].items()
        },
    )
    for rec_doc in doc["rounds"]:
        receptions: Optional[Dict[int, Reception]] = None
        if "receptions" in rec_doc:
            receptions = {
                int(v): _reception_from_json(r)
                for v, r in rec_doc["receptions"].items()
            }
        trace.rounds.append(
            RoundRecord(
                round_number=rec_doc["round"],
                senders={
                    int(v): _message_from_json(m)
                    for v, m in rec_doc["senders"].items()
                },
                unreliable_deliveries={
                    int(v): frozenset(ts)
                    for v, ts in rec_doc["deliveries"].items()
                },
                newly_informed=tuple(rec_doc["newly_informed"]),
                newly_active=tuple(rec_doc["newly_active"]),
                receptions=receptions,
                crashed=tuple(rec_doc.get("crashed", ())),
                recovered=tuple(rec_doc.get("recovered", ())),
            )
        )
    return trace


def save_trace(trace: ExecutionTrace, path: str) -> None:
    """Write a trace to a JSON file."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(trace_to_json(trace))


def load_trace(path: str) -> ExecutionTrace:
    """Read a trace from a JSON file."""
    with open(path, "r", encoding="utf-8") as f:
        return trace_from_json(f.read())
