"""Independent validation of execution traces against the model.

The engine *produces* executions; this module *re-derives* what every
node must have observed from the recorded senders and adversary choices,
and checks the recorded receptions and bookkeeping against the Section
2.1 semantics.  It shares no code with the engine's resolution path on
purpose — it is the semantic double-entry bookkeeping used by tests (and
available to users who write their own adversaries and want the model's
guarantees checked).

Fault injection is part of the contract: pass the execution's
:class:`~repro.sim.faults.ChurnSchedule` and the validator replays the
crash/recovery state machine independently — crashed nodes must never
transmit, wake, or be informed, their recorded receptions must be
silence, the per-round crash/recovery records must match the schedule,
and (under the ``"uninformed"`` rejoin policy) payload custody must be
re-earned after every crash.  A trace that records churn events without
a schedule to check them against is rejected outright.

Requires traces recorded with ``record_receptions=True``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.graphs.dualgraph import DualGraph
from repro.sim.collision import CollisionRule
from repro.sim.engine import StartMode
from repro.sim.faults import ChurnSchedule
from repro.sim.trace import ExecutionTrace


def validate_execution(
    trace: ExecutionTrace,
    network: DualGraph,
    collision_rule: CollisionRule,
    start_mode: StartMode,
    payload: object = "broadcast-message",
    churn: Optional[ChurnSchedule] = None,
) -> List[str]:
    """Check a recorded execution against the model semantics.

    Args:
        trace: The execution to validate (with recorded receptions).
        network: The dual graph the execution ran on.
        collision_rule: The collision rule in force.
        start_mode: The start rule in force.
        payload: The broadcast payload handed to the source.
        churn: The fault-injection schedule the execution ran under,
            if any; required whenever the trace records crash or
            recovery events.

    Returns a list of human-readable violations; an empty list means the
    execution is consistent with the dual graph model under the given
    collision rule, start mode and churn schedule.
    """
    violations: List[str] = []

    def flag(round_number: int, text: str) -> None:
        violations.append(f"round {round_number}: {text}")

    if trace.n != network.n:
        return [f"trace has n={trace.n}, network has n={network.n}"]

    informed: Set[int] = {network.source}
    #: What informed_round must show at the end of the trace; with
    #: churn, a node's entry may revert to None (uninformed crash) and
    #: be re-earned, so the check runs once at the end of the pass.
    expected_informed: Dict[int, Optional[int]] = {network.source: 0}
    if churn is None and trace.informed_round.get(network.source) != 0:
        violations.append("source not informed at round 0")
    active: Set[int] = (
        set(network.nodes)
        if start_mode is StartMode.SYNCHRONOUS
        else {network.source}
    )
    crashed: Set[int] = set()
    was_active_at_crash: Dict[int, bool] = {}
    rejoin = churn.rejoin if churn is not None else "uninformed"
    if churn is not None:
        crashed.update(churn.initial_down)
        active -= set(churn.initial_down)

    for record in trace.rounds:
        rnd = record.round_number
        if record.receptions is None:
            return [f"round {rnd}: trace lacks recorded receptions"]

        # 0. Fault injection: the recorded events must match the
        # schedule exactly, and the validator replays their effect on
        # its own active/informed bookkeeping.
        if churn is None:
            if record.crashed or record.recovered:
                return [
                    f"round {rnd}: trace records churn events but no "
                    "schedule was provided to validate them against"
                ]
        else:
            if tuple(record.crashed) != churn.crashes.get(rnd, ()):
                flag(
                    rnd,
                    f"recorded crashes {list(record.crashed)} disagree "
                    f"with the schedule "
                    f"{list(churn.crashes.get(rnd, ()))}",
                )
            if tuple(record.recovered) != churn.recoveries.get(rnd, ()):
                flag(
                    rnd,
                    f"recorded recoveries {list(record.recovered)} "
                    f"disagree with the schedule "
                    f"{list(churn.recoveries.get(rnd, ()))}",
                )
            for v in record.crashed:
                was_active_at_crash[v] = v in active
                active.discard(v)
                crashed.add(v)
                if rejoin == "uninformed" and v in informed:
                    informed.discard(v)
                    expected_informed[v] = None
            for v in record.recovered:
                crashed.discard(v)
                was = was_active_at_crash.pop(v, False)
                if (rejoin == "informed" and was) or (
                    start_mode is StartMode.SYNCHRONOUS
                ):
                    active.add(v)
                # Asynchronous uninformed rejoin: the node sleeps until
                # a message wakes it (the model's normal wake rule).

        # 1. Senders must be active (and in particular not crashed).
        for sender in record.senders:
            if sender in crashed:
                flag(rnd, f"crashed node {sender} transmitted")
            elif sender not in active:
                flag(rnd, f"sleeping node {sender} transmitted")

        # 2. Adversary deliveries must be legal.
        for sender, targets in record.unreliable_deliveries.items():
            if sender not in record.senders:
                flag(rnd, f"delivery for non-sender {sender}")
                continue
            illegal = set(targets) - set(
                network.unreliable_only_out(sender)
            )
            if illegal:
                flag(
                    rnd,
                    f"illegal unreliable targets {sorted(illegal)} "
                    f"from {sender}",
                )

        # 3. Recompute arrivals.
        arrivals = {v: [] for v in network.nodes}
        for sender, msg in record.senders.items():
            arrivals[sender].append(msg)
            for t in network.reliable_out(sender):
                arrivals[t].append(msg)
            for t in record.unreliable_deliveries.get(sender, ()):
                arrivals[t].append(msg)

        # 4. Check each node's reception.
        for v in network.nodes:
            rec = record.receptions[v]
            if v in crashed:
                # A crashed radio hears nothing, whatever arrives.
                if not rec.is_silence:
                    flag(
                        rnd,
                        f"crashed node {v} observed {rec.kind.value}",
                    )
                continue
            is_sender = v in record.senders
            n_arr = len(arrivals[v])
            if is_sender:
                if collision_rule.sender_hears_own_message:
                    if not rec.is_message or rec.message != record.senders[v]:
                        flag(rnd, f"sender {v} did not hear its own message")
                else:  # CR1
                    if n_arr >= 2 and not rec.is_collision:
                        flag(rnd, f"CR1 sender {v} missed its collision")
                    if n_arr == 1 and not (
                        rec.is_message and rec.message == record.senders[v]
                    ):
                        flag(rnd, f"lone CR1 sender {v} wrong reception")
                continue
            if v not in active:
                # Sleeping node: it may only appear via activation, which
                # requires a message reception this round.
                if v in record.newly_active:
                    if not rec.is_message:
                        flag(rnd, f"node {v} woke without a message")
                continue
            if n_arr == 0:
                if not rec.is_silence:
                    flag(rnd, f"node {v} heard {rec.kind} with no arrivals")
            elif n_arr == 1:
                if not rec.is_message or rec.message != arrivals[v][0]:
                    flag(rnd, f"node {v} missed its lone arrival")
            else:
                if collision_rule in (CollisionRule.CR1, CollisionRule.CR2):
                    if not rec.is_collision:
                        flag(rnd, f"node {v} missed collision notification")
                elif collision_rule is CollisionRule.CR3:
                    if not rec.is_silence:
                        flag(rnd, f"CR3 node {v} should hear silence")
                else:  # CR4
                    if rec.is_collision:
                        flag(rnd, f"CR4 node {v} got collision notification")
                    if rec.is_message and rec.message not in arrivals[v]:
                        flag(
                            rnd,
                            f"CR4 delivered a non-arriving message to {v}",
                        )

        # 5. Activation and custody bookkeeping.
        for v in record.newly_active:
            if v in crashed:
                flag(rnd, f"crashed node {v} woke")
                continue
            if v in active:
                flag(rnd, f"node {v} activated twice")
            active.add(v)
        for v in record.newly_informed:
            if v in crashed:
                flag(rnd, f"crashed node {v} marked informed")
                continue
            if v in informed:
                flag(rnd, f"node {v} informed twice")
            rec = record.receptions[v]
            carries = (
                rec.is_message
                and rec.message is not None
                and rec.message.payload == payload
            )
            if not carries:
                flag(rnd, f"node {v} marked informed without the payload")
            if churn is None and trace.informed_round.get(v) != rnd:
                flag(rnd, f"informed_round[{v}] disagrees with the record")
            expected_informed[v] = rnd
            informed.add(v)

    # 6. informed_round bookkeeping under churn: entries may legally
    # revert (uninformed crashes) and be re-earned, so the final values
    # are compared once against the replayed custody history.
    if churn is not None:
        for v in network.nodes:
            expected = expected_informed.get(v)
            got = trace.informed_round.get(v)
            if got != expected:
                violations.append(
                    f"informed_round[{v}] is {got}, expected {expected} "
                    "from the replayed crash/custody history"
                )

    # 7. Completion claim.
    if trace.completed and len(informed) != network.n:
        violations.append(
            "trace claims completion but some node was never informed"
        )
    return violations
