"""Synchronous-round radio network simulation substrate."""

from repro.sim.collision import CollisionRule, resolve_reception
from repro.sim.engine import (
    BroadcastEngine,
    ENGINE_NAMES,
    EngineConfig,
    StartMode,
    build_engine,
    run_broadcast,
)
from repro.sim.fast_engine import (
    CompiledTopology,
    FastBroadcastEngine,
    compile_topology,
    fast_engine_eligible,
    mask_engine_eligible,
)
from repro.sim.faults import (
    ChurnSchedule,
    generate_churn,
    window_churn,
)

#: Names re-exported lazily from :mod:`repro.sim.vector_engine` (PEP
#: 562): importing that module imports NumPy, which reference/fast-only
#: consumers — every CLI startup and sweep worker spawn — must not pay.
_VECTOR_EXPORTS = frozenset(
    {"VectorBroadcastEngine", "run_lockstep", "vector_engine_eligible"}
)


def __getattr__(name):
    """Resolve the vector-engine exports on first use (lazy NumPy)."""
    if name in _VECTOR_EXPORTS:
        from repro.sim import vector_engine

        return getattr(vector_engine, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
from repro.sim.messages import (
    COLLISION,
    Message,
    Reception,
    ReceptionKind,
    SILENCE,
    received,
)
from repro.sim.process import (
    Process,
    ProcessContext,
    ScriptedProcess,
    SilentProcess,
)
from repro.sim.recording import (
    load_trace,
    save_trace,
    trace_from_json,
    trace_to_json,
)
from repro.sim.trace import ExecutionTrace, RoundRecord
from repro.sim.validation import validate_execution

__all__ = [
    "BroadcastEngine",
    "COLLISION",
    "ChurnSchedule",
    "CollisionRule",
    "CompiledTopology",
    "ENGINE_NAMES",
    "EngineConfig",
    "ExecutionTrace",
    "FastBroadcastEngine",
    "Message",
    "Process",
    "ProcessContext",
    "Reception",
    "ReceptionKind",
    "RoundRecord",
    "SILENCE",
    "ScriptedProcess",
    "SilentProcess",
    "StartMode",
    "VectorBroadcastEngine",
    "build_engine",
    "compile_topology",
    "fast_engine_eligible",
    "generate_churn",
    "load_trace",
    "mask_engine_eligible",
    "run_lockstep",
    "vector_engine_eligible",
    "received",
    "resolve_reception",
    "run_broadcast",
    "save_trace",
    "trace_from_json",
    "trace_to_json",
    "validate_execution",
    "window_churn",
]
