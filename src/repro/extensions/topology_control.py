"""Topology control in dual graphs (the paper's second future-work item).

Section 8: *"Topology control in dual graphs is another interesting area
for future research."*  Topology control selects a sparse *backbone* of
the reliable graph over which protocols operate, trading path length for
reduced contention.  This module provides the natural baseline pair:

* :func:`bfs_backbone` — a shortest-path-tree backbone rooted at the
  source (minimum eccentricity among spanning backbones);
* :func:`degree_bounded_backbone` — a Prim-style spanning backbone that
  greedily respects a degree cap (lower contention per node, possibly
  deeper).

and the evaluation hook :func:`contention_profile` quantifying what the
backbone bought: per-node reliable degree and the number of unreliable
links the adversary can aim at backbone transmissions.

The important dual-graph caveat, measurable here: sparsifying ``G``
never removes ``G' \\ G`` — the adversary's interference edges stay, so
(unlike in classical topology control) thinning the backbone reduces
*self*-interference but not *adversarial* interference.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graphs.dualgraph import DualGraph, Edge


def bfs_backbone(network: DualGraph, name: str = "") -> DualGraph:
    """The BFS spanning-tree backbone rooted at the source.

    Keeps one reliable parent edge per non-source node (both directions
    when the network is undirected); ``G'`` is unchanged.
    """
    parent: Dict[int, int] = {}
    seen = {network.source}
    queue = deque([network.source])
    while queue:
        u = queue.popleft()
        for v in sorted(network.reliable_out(u)):
            if v not in seen:
                seen.add(v)
                parent[v] = u
                queue.append(v)
    reliable: List[Edge] = []
    for child, par in parent.items():
        reliable.append((par, child))
        if child in network.reliable_out(child) or par in network.reliable_out(
            child
        ):
            reliable.append((child, par))
    return DualGraph(
        network.n,
        reliable,
        network.all_edges() | set(reliable),
        source=network.source,
        name=name or f"{network.name}|bfs-backbone",
    )


def degree_bounded_backbone(
    network: DualGraph, max_degree: int = 3, name: str = ""
) -> DualGraph:
    """A spanning backbone whose reliable degree respects a cap.

    Prim-style growth preferring low-degree attachment points; when the
    cap cannot be respected (a cut node needs more children), it is
    exceeded minimally rather than failing — topology control degrades
    gracefully on stars.

    Only meaningful for undirected networks (asserts symmetry).
    """
    if max_degree < 1:
        raise ValueError("need max_degree >= 1")
    if not network.is_undirected:
        raise ValueError("degree-bounded backbone needs an undirected network")
    degree: Dict[int, int] = {v: 0 for v in network.nodes}
    in_tree = {network.source}
    reliable: List[Edge] = []
    # Priority: attach to the node whose current degree is smallest.
    frontier: List[Tuple[int, int, int]] = []  # (parent_degree, parent, child)

    def push_neighbours(u: int) -> None:
        for v in sorted(network.reliable_out(u)):
            if v not in in_tree:
                heapq.heappush(frontier, (degree[u], u, v))

    push_neighbours(network.source)
    while len(in_tree) < network.n:
        while True:
            if not frontier:
                raise RuntimeError(
                    "reliable graph disconnected; invariant violated"
                )
            parent_deg, parent, child = heapq.heappop(frontier)
            if child in in_tree:
                continue
            if parent_deg != degree[parent]:
                # Stale entry: reinsert with the current degree.
                heapq.heappush(frontier, (degree[parent], parent, child))
                continue
            break
        in_tree.add(child)
        degree[parent] += 1
        degree[child] += 1
        reliable.append((parent, child))
        reliable.append((child, parent))
        push_neighbours(child)
        if degree[parent] < max_degree:
            pass  # parent may keep adopting; entries already queued
    return DualGraph(
        network.n,
        reliable,
        network.all_edges() | set(reliable),
        source=network.source,
        name=name or f"{network.name}|deg{max_degree}-backbone",
    )


@dataclass(frozen=True)
class ContentionProfile:
    """What a backbone bought, contention-wise.

    Attributes:
        max_reliable_degree: Largest reliable degree in the backbone.
        total_reliable_edges: Directed reliable edge count.
        eccentricity: Source eccentricity over the backbone (path-length
            price of sparsification).
        adversarial_inroads: Directed unreliable edges pointing at
            backbone nodes — the interference surface the adversary
            keeps regardless of sparsification.
    """

    max_reliable_degree: int
    total_reliable_edges: int
    eccentricity: int
    adversarial_inroads: int


def contention_profile(network: DualGraph) -> ContentionProfile:
    """Compute the contention profile of a (backbone) dual graph."""
    max_deg = max(len(network.reliable_out(v)) for v in network.nodes)
    total = len(network.reliable_edges())
    inroads = sum(
        len(network.unreliable_only_out(v)) for v in network.nodes
    )
    return ContentionProfile(
        max_reliable_degree=max_deg,
        total_reliable_edges=total,
        eccentricity=network.source_eccentricity,
        adversarial_inroads=inroads,
    )
