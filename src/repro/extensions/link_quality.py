"""ETX-style link quality estimation (Section 1's practice reference).

The paper motivates the dual graph model by noting that *"virtually
every ad hoc radio network deployment of the last five years uses link
quality assessment algorithms, such as ETX, to cull unreliable
connections"*.  This module closes the loop: it watches executions and
estimates, per directed link, the fraction of transmissions that were
delivered — exactly the statistic ETX-family estimators accumulate —
then *culls* links below a threshold to recover a believed-reliable
topology.

Under a stochastic adversary (links flap randomly) the estimator
recovers ``G`` from ``G'``; under a worst-case adversary no estimator
can (the adversary may behave perfectly until the estimate is trusted) —
which is the gap between practice and the paper's model, and the reason
its algorithms need no topology knowledge.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graphs.dualgraph import DualGraph, DualGraphError, Edge
from repro.sim.trace import ExecutionTrace


@dataclass
class LinkStats:
    """Delivery statistics for one directed link."""

    attempts: int = 0
    deliveries: int = 0

    @property
    def delivery_ratio(self) -> Optional[float]:
        """Estimated delivery probability; ``None`` with no data."""
        if self.attempts == 0:
            return None
        return self.deliveries / self.attempts

    @property
    def etx(self) -> Optional[float]:
        """Expected transmissions for one delivery (the ETX metric)."""
        ratio = self.delivery_ratio
        if ratio is None or ratio == 0.0:
            return None
        return 1.0 / ratio


class LinkQualityEstimator:
    """Accumulates per-link delivery statistics from execution traces.

    A transmission by node ``u`` counts as an *attempt* on every outgoing
    ``G'`` link of ``u``; it counts as a *delivery* on the reliable links
    (which always deliver) and on the unreliable links the adversary
    chose to fire that round.  This is the omniscient-observer version of
    what deployed estimators approximate with probe packets — sufficient
    here, since the question under study is what topology the statistics
    converge to, not the probing overhead.
    """

    def __init__(self, network: DualGraph) -> None:
        self.network = network
        self._stats: Dict[Edge, LinkStats] = defaultdict(LinkStats)

    def observe(self, trace: ExecutionTrace) -> None:
        """Fold one execution's transmissions into the statistics."""
        for record in trace.rounds:
            for sender in record.senders:
                fired = record.unreliable_deliveries.get(
                    sender, frozenset()
                )
                for target in self.network.reliable_out(sender):
                    stats = self._stats[(sender, target)]
                    stats.attempts += 1
                    stats.deliveries += 1
                for target in self.network.unreliable_only_out(sender):
                    stats = self._stats[(sender, target)]
                    stats.attempts += 1
                    if target in fired:
                        stats.deliveries += 1

    def observe_all(self, traces: Iterable[ExecutionTrace]) -> None:
        for trace in traces:
            self.observe(trace)

    def stats(self, u: int, v: int) -> LinkStats:
        """Statistics for the directed link ``(u, v)``."""
        return self._stats[(u, v)]

    def measured_links(self) -> List[Tuple[Edge, LinkStats]]:
        """All links with at least one attempt, sorted by quality."""
        out = [
            (edge, s) for edge, s in self._stats.items() if s.attempts > 0
        ]
        out.sort(key=lambda item: (-(item[1].delivery_ratio or 0), item[0]))
        return out

    def cull(
        self,
        threshold: float = 0.99,
        min_attempts: int = 1,
        name: str = "",
    ) -> DualGraph:
        """The believed-reliable topology: links at/above ``threshold``.

        Links without enough attempts are kept (conservative: unknown
        links cannot be condemned).  The result keeps the full ``G'`` so
        it is still a valid dual graph of the same network.

        Raises:
            DualGraphError: If culling disconnects the source — the
            signature of an estimator starved of data or an adversary
            gaming the probes.
        """
        believed: List[Edge] = []
        for u in self.network.nodes:
            for v in self.network.all_out(u):
                stats = self._stats.get((u, v))
                if stats is None or stats.attempts < min_attempts:
                    believed.append((u, v))
                    continue
                ratio = stats.delivery_ratio or 0.0
                if ratio >= threshold:
                    believed.append((u, v))
        return DualGraph(
            self.network.n,
            believed,
            self.network.all_edges() | set(believed),
            source=self.network.source,
            name=name or f"{self.network.name}|culled(>={threshold})",
        )

    def recovered_reliable_set(
        self, threshold: float = 0.99, min_attempts: int = 1
    ) -> Tuple[frozenset, frozenset]:
        """Compare the culled link set against the true ``G``.

        Returns ``(false_positives, false_negatives)``: measured links
        believed reliable but actually unreliable, and true reliable
        links that were culled or never measured.
        """
        believed = set()
        for (u, v), stats in self._stats.items():
            if stats.attempts >= min_attempts and (
                stats.delivery_ratio or 0.0
            ) >= threshold:
                believed.add((u, v))
        true_reliable = {
            (u, v)
            for u in self.network.nodes
            for v in self.network.reliable_out(u)
        }
        measured = {
            e for e, s in self._stats.items() if s.attempts >= min_attempts
        }
        false_positives = believed - true_reliable
        false_negatives = (true_reliable & measured) - believed
        return frozenset(false_positives), frozenset(false_negatives)
