"""Repeated broadcast with topology learning (the paper's future work).

Section 8: *"In future work it is our intention to explore repeated
broadcast in dual graphs, where we hope to improve long-term efficiency
by learning the topology of the graph."*  This module implements the
natural first protocol in that direction and measures when learning
helps.

**Protocol.**  The source broadcasts a stream of messages.

* *Message 1 (discovery)*: any one-shot dual-graph algorithm (Strong
  Select by default).  The completed trace yields each node's first-
  informed round.
* *Messages 2…*: a **learned round-robin permutation** — nodes transmit
  one per round in the order they were informed during discovery.  One
  sender per round makes the schedule interference-immune (no adversary
  can collide a lone transmission), and informed-order means a node's
  informer fired before it, so when the information order is realisable
  over reliable links a single cycle of ``n`` rounds completes the
  broadcast — versus ``n·ecc`` for an unlearned permutation and
  ``Θ(n^{3/2})`` worst-case for one-shot deterministic broadcast.

**Caveat the model predicts.**  Discovery order may be an artifact of
unreliable links the adversary chose to fire once and never again; then
a cycle leaves nodes uninformed and the schedule silently repeats (it
stays correct — completion within ``n·ecc`` like any round robin — but
the learned speed-up evaporates).  The session detects this and can
re-run discovery.  This is exactly the paper's message: against the
worst-case adversary, topology learned from the past has no guarantee
about the future.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.runner import make_processes
from repro.graphs.dualgraph import DualGraph
from repro.sim.engine import BroadcastEngine, EngineConfig
from repro.sim.messages import Message
from repro.sim.process import Process, ProcessContext
from repro.sim.trace import ExecutionTrace


class ScheduledProcess(Process):
    """Round robin over a learned permutation.

    Args:
        uid: Process identifier.
        slot: The process's position in the learned order.
        cycle: Permutation length (= n).
    """

    def __init__(self, uid: int, slot: int, cycle: int) -> None:
        super().__init__(uid)
        if not 0 <= slot < cycle:
            raise ValueError(f"slot {slot} outside cycle of {cycle}")
        self.slot = slot
        self.cycle = cycle

    def decide_send(self, ctx: ProcessContext) -> Optional[Message]:
        if not self.has_message:
            return None
        if (ctx.round_number - 1) % self.cycle == self.slot:
            return self.outgoing(ctx)
        return None


def learned_order(trace: ExecutionTrace) -> List[int]:
    """Uids in first-informed order from a completed discovery trace."""
    if not trace.completed:
        raise ValueError("discovery trace is incomplete; cannot learn")
    by_round = sorted(
        trace.informed_round.items(), key=lambda kv: (kv[1], kv[0])
    )
    return [trace.proc[node] for node, _ in by_round]


@dataclass
class RepeatedBroadcastReport:
    """Outcome of one repeated-broadcast session.

    Attributes:
        discovery_rounds: Rounds the discovery message took.
        message_rounds: Per-subsequent-message completion rounds.
        rediscoveries: How many times the schedule went stale (a message
            needed more than ``stale_factor`` cycles) and discovery was
            re-run.
        order: The final learned permutation.
    """

    discovery_rounds: int
    message_rounds: List[int] = field(default_factory=list)
    rediscoveries: int = 0
    order: List[int] = field(default_factory=list)

    @property
    def steady_state_mean(self) -> Optional[float]:
        """Mean rounds per message once learning is in place."""
        if not self.message_rounds:
            return None
        return sum(self.message_rounds) / len(self.message_rounds)


class RepeatedBroadcastSession:
    """Runs a stream of broadcasts on one network, learning as it goes.

    Args:
        network: The dual graph.
        adversary_factory: Builds a fresh adversary per message (so
            stochastic adversaries re-randomise; pass the same instance
            closure for stateful ones).
        discovery_algorithm: One-shot algorithm for (re)discovery.
        seed: Base seed; message ``i`` uses ``seed + i``.
        stale_factor: Declare the learned schedule stale when a message
            needs more than this many full cycles.
    """

    def __init__(
        self,
        network: DualGraph,
        adversary_factory,
        discovery_algorithm: str = "strong_select",
        seed: int = 0,
        stale_factor: int = 2,
    ) -> None:
        self.network = network
        self.adversary_factory = adversary_factory
        self.discovery_algorithm = discovery_algorithm
        self.seed = seed
        self.stale_factor = stale_factor
        self._order: Optional[List[int]] = None

    # ------------------------------------------------------------------
    def _run_discovery(self, message_index: int) -> ExecutionTrace:
        from repro.core.runner import suggested_round_limit

        processes = make_processes(
            self.discovery_algorithm, self.network.n
        )
        config = EngineConfig(
            seed=self.seed + message_index,
            max_rounds=suggested_round_limit(
                self.discovery_algorithm, self.network
            ),
        )
        engine = BroadcastEngine(
            self.network,
            processes,
            self.adversary_factory(),
            config,
            payload=("msg", message_index),
        )
        trace = engine.run()
        if not trace.completed:
            raise RuntimeError(
                "discovery broadcast did not complete within its bound"
            )
        self._order = learned_order(trace)
        return trace

    def _run_scheduled(self, message_index: int) -> ExecutionTrace:
        assert self._order is not None
        n = self.network.n
        slot_of = {uid: i for i, uid in enumerate(self._order)}
        processes = [
            ScheduledProcess(uid, slot_of[uid], n) for uid in range(n)
        ]
        ecc = self.network.source_eccentricity
        config = EngineConfig(
            seed=self.seed + message_index,
            max_rounds=n * max(1, ecc) + n,
        )
        engine = BroadcastEngine(
            self.network,
            processes,
            self.adversary_factory(),
            config,
            payload=("msg", message_index),
        )
        return engine.run()

    # ------------------------------------------------------------------
    def run(self, num_messages: int) -> RepeatedBroadcastReport:
        """Broadcast ``num_messages`` messages, learning after the first.

        Returns the session report; every message is guaranteed
        delivered (scheduled cycles are round robin, hence correct
        within ``n·ecc``; staleness triggers rediscovery for the *next*
        message, not a delivery failure).
        """
        if num_messages < 1:
            raise ValueError("need at least one message")
        discovery_trace = self._run_discovery(0)
        report = RepeatedBroadcastReport(
            discovery_rounds=discovery_trace.completion_round or 0
        )
        stale_threshold = self.stale_factor * self.network.n
        for i in range(1, num_messages):
            trace = self._run_scheduled(i)
            if not trace.completed:
                # Schedule failed outright: rediscover and retry once.
                report.rediscoveries += 1
                self._run_discovery(i)
                trace = self._run_scheduled(i)
                if not trace.completed:
                    raise RuntimeError(
                        "scheduled broadcast failed twice; the adversary "
                        "defeats this schedule family on this network"
                    )
            rounds = trace.completion_round or 0
            report.message_rounds.append(rounds)
            if rounds > stale_threshold:
                report.rediscoveries += 1
                self._run_discovery(i)
        assert self._order is not None
        report.order = list(self._order)
        return report
