"""All-to-all gossip on top of the dual graph model.

The paper's introduction motivates broadcast as the primitive that
"simulates a single-hop network on top of a multi-hop network".  Gossip
(every node starts with a rumor; everyone must learn every rumor) is the
canonical consumer of that simulation.  This module implements
adversary-proof gossip by piggybacking rumor sets on a round-robin
schedule:

* process ``i`` transmits in rounds ``r ≡ i + 1 (mod n)``, sending its
  entire current rumor set;
* one sender per round means no adversary can collide anything, and
  reliable edges always deliver, so each full ``n``-round cycle pushes
  every rumor at least one hop along every reliable path:
  completion within ``n · (ecc_max + 1)`` rounds where ``ecc_max`` is
  the largest directed eccentricity in ``G`` — on any dual graph, under
  any collision rule.

Unlike broadcast, gossip requires information to flow from *every* node,
so the network must be strongly connected in ``G`` (validated).

The implementation drives :class:`~repro.sim.engine.BroadcastEngine`
through its public stepping API with its own termination predicate,
demonstrating how to layer protocols without touching engine internals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set

from repro.adversaries.base import Adversary
from repro.graphs.dualgraph import DualGraph
from repro.sim.engine import BroadcastEngine, EngineConfig, StartMode, build_engine
from repro.sim.messages import Message, Reception
from repro.sim.process import Process, ProcessContext


class GossipProcess(Process):
    """Round-robin rumor-set gossiper.

    Args:
        uid: Process identifier (also its round-robin slot).
        n: System size.
        rumor: The process's own rumor (any hashable value).
    """

    def __init__(self, uid: int, n: int, rumor: object) -> None:
        super().__init__(uid)
        self._n = n
        self.rumors: Set[object] = {rumor}

    def decide_send(self, ctx: ProcessContext) -> Optional[Message]:
        if (ctx.round_number - 1) % self._n != self.uid % self._n:
            return None
        return Message(
            payload=None,  # gossip carries rumors, not the broadcast payload
            sender=self.uid,
            round_sent=ctx.round_number,
            meta={"rumors": frozenset(self.rumors)},
        )

    def on_reception(self, ctx: ProcessContext, reception: Reception) -> None:
        if reception.is_message and reception.message is not None:
            rumors = reception.message.meta.get("rumors")
            if rumors:
                self.rumors |= set(rumors)


def _strongly_connected(network: DualGraph) -> bool:
    def reaches_all(adj) -> bool:
        seen = {0}
        queue = deque([0])
        while queue:
            u = queue.popleft()
            for v in adj(u):
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return len(seen) == network.n

    return reaches_all(network.reliable_out) and reaches_all(
        network.reliable_in
    )


@dataclass
class GossipResult:
    """Outcome of a gossip run.

    Attributes:
        completed: Whether every process learned every rumor.
        rounds: Rounds executed.
        rumor_counts: Final per-uid rumor-set sizes.
    """

    completed: bool
    rounds: int
    rumor_counts: Dict[int, int]


def run_gossip(
    network: DualGraph,
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    rumors: Optional[Sequence[object]] = None,
    engine: str = "reference",
) -> GossipResult:
    """Run round-robin gossip to completion on a dual graph.

    Args:
        network: Must be strongly connected in ``G`` (undirected
            connected networks always are).
        adversary: Link adversary (irrelevant to correctness — gossip
            transmissions are always lone — but exercised anyway).
        seed: Engine seed.
        max_rounds: Cap (default: the ``n·(ecc_max+1)`` guarantee).
        rumors: Per-uid rumor values (default ``"rumor-<uid>"``).
        engine: Execution engine (``"reference"`` or ``"fast"``); gossip
            processes observe silence, so the fast engine treats every
            node as an observer and keeps full delivery discipline.

    Raises:
        ValueError: If ``G`` is not strongly connected (gossip needs
            all-pairs reliable paths).
    """
    if not _strongly_connected(network):
        raise ValueError(
            "gossip needs the reliable graph to be strongly connected"
        )
    n = network.n
    if rumors is None:
        rumors = [f"rumor-{uid}" for uid in range(n)]
    if len(rumors) != n:
        raise ValueError(f"need exactly {n} rumors")
    processes = [GossipProcess(uid, n, rumors[uid]) for uid in range(n)]
    if max_rounds is None:
        # n rounds per cycle; each cycle advances every rumor one hop.
        max_rounds = n * (n + 1)
    config = EngineConfig(
        seed=seed,
        max_rounds=max_rounds,
        start_mode=StartMode.SYNCHRONOUS,
        stop_when_informed=False,
        engine=engine,
    )
    sim = build_engine(network, processes, adversary, config)
    everything = set(rumors)

    def done(e: BroadcastEngine) -> bool:
        return all(p.rumors == everything for p in processes)

    sim.run_until(done)
    return GossipResult(
        completed=all(p.rumors == everything for p in processes),
        rounds=sim.round_number,
        rumor_counts={p.uid: len(p.rumors) for p in processes},
    )
