"""Extensions beyond the paper's core results: the future-work section
(repeated broadcast with topology learning) and the practice-side link
quality estimation the introduction cites."""

from repro.extensions.gossip import (
    GossipProcess,
    GossipResult,
    run_gossip,
)
from repro.extensions.link_quality import LinkQualityEstimator, LinkStats
from repro.extensions.repeated import (
    RepeatedBroadcastReport,
    RepeatedBroadcastSession,
    ScheduledProcess,
    learned_order,
)
from repro.extensions.topology_control import (
    ContentionProfile,
    bfs_backbone,
    contention_profile,
    degree_bounded_backbone,
)

__all__ = [
    "ContentionProfile",
    "GossipProcess",
    "GossipResult",
    "LinkQualityEstimator",
    "LinkStats",
    "RepeatedBroadcastReport",
    "RepeatedBroadcastSession",
    "ScheduledProcess",
    "bfs_backbone",
    "contention_profile",
    "degree_bounded_backbone",
    "learned_order",
    "run_gossip",
]
