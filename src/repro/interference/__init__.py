"""Explicit-interference model and the Lemma-1 dual-graph reduction."""

from repro.interference.model import InterferenceEngine, InterferenceNetwork
from repro.interference.reduction import (
    EquivalenceReport,
    InterferenceSimulationAdversary,
    run_equivalence_check,
)

__all__ = [
    "EquivalenceReport",
    "InterferenceEngine",
    "InterferenceNetwork",
    "InterferenceSimulationAdversary",
    "run_equivalence_check",
]
