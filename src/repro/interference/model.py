"""The explicit-interference model ``(G_T, G_I)`` (Section 2.2, Appendix A).

Several prior models (e.g. Galčík et al.) describe a network with a
*transmission* graph ``G_T`` and an *interference* graph ``G_I ⊇ G_T``:
interference edges can cause collisions but can never convey a message.
Per the paper's Appendix A, the collision rules carry over with one
modification: all messages sent by ``u`` with ``{u, v} ∈ G_I`` *reach*
``v``, but if ``{u, v} ∈ G_I \\ G_T`` then ``v`` can never *receive*
``u``'s message — if the only message reaching ``v`` came over an
interference-only edge, ``v`` hears ``⊥``.

:class:`InterferenceEngine` simulates this model directly.  Lemma 1 shows
any dual-graph algorithm retains its round bound here; the reduction
adversary lives in :mod:`repro.interference.reduction` and is validated
by comparing the two engines observation-for-observation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.graphs.dualgraph import DualGraph
from repro.sim.collision import CollisionRule
from repro.sim.messages import (
    COLLISION,
    Message,
    Reception,
    SILENCE,
    received,
)
from repro.sim.process import Process, ProcessContext
from repro.sim.trace import ExecutionTrace, RoundRecord


@dataclass(frozen=True)
class InterferenceNetwork:
    """An explicit-interference network ``(G_T, G_I)``.

    Reuses :class:`DualGraph` for storage: the reliable edge set plays
    ``G_T`` and the full edge set plays ``G_I``; the semantic difference
    (interference edges cannot convey messages) lives in the engine.
    """

    graph: DualGraph

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def source(self) -> int:
        return self.graph.source

    def transmission_out(self, v: int):
        """``G_T`` out-neighbours."""
        return self.graph.reliable_out(v)

    def interference_out(self, v: int):
        """All ``G_I`` out-neighbours (including transmission edges)."""
        return self.graph.all_out(v)

    def as_dual_graph(self) -> DualGraph:
        """The Lemma-1 dual graph: ``G = G_T``, ``G' = G_I``."""
        return self.graph


class InterferenceEngine:
    """Synchronous-round execution in the explicit-interference model.

    Semantics per node ``v`` each round: *arrivals* are the messages of
    all senders with a ``G_I`` edge to ``v`` (plus ``v``'s own message if
    it sends); *receivable* arrivals are those over ``G_T`` edges (plus
    its own).  The collision rule applies to the arrival count, but a
    lone arrival is received only when receivable — otherwise silence.
    Under CR4 the resolver may only pick a receivable arrival.

    The model is static, so the only adversarial freedom left is the CR4
    resolution; ``cr4_choose_first`` picks the lowest-uid receivable
    message, ``False`` resolves to silence.
    """

    def __init__(
        self,
        network: InterferenceNetwork,
        processes: Sequence[Process],
        collision_rule: CollisionRule = CollisionRule.CR4,
        synchronous_start: bool = False,
        max_rounds: int = 1_000_000,
        seed: int = 0,
        payload: object = "broadcast-message",
        cr4_choose_first: bool = False,
    ) -> None:
        if len(processes) != network.n:
            raise ValueError("need one process per node")
        self.network = network
        self.collision_rule = collision_rule
        self.synchronous_start = synchronous_start
        self.max_rounds = max_rounds
        self.payload = payload
        self.cr4_choose_first = cr4_choose_first
        self.process_at: Dict[int, Process] = {
            v: p for v, p in zip(range(network.n), processes)
        }
        self._contexts = {
            v: ProcessContext(
                round_number=0,
                rng=random.Random(f"{seed}:{p.uid}"),
                n=network.n,
            )
            for v, p in self.process_at.items()
        }
        self._active: set = set()
        self._round = 0
        self.trace = ExecutionTrace(
            network_name=f"interference({network.graph.name})",
            n=network.n,
            proc={v: p.uid for v, p in self.process_at.items()},
            informed_round={v: None for v in range(network.n)},
        )

    def _activate(self, node: int) -> None:
        if node in self._active:
            return
        self._active.add(node)
        self.process_at[node].on_activate(self._contexts[node])

    def _resolve(
        self,
        node: int,
        is_sender: bool,
        own: Optional[Message],
        arrivals: List[Message],
        receivable: List[Message],
    ) -> Reception:
        """Resolve one node's observation.

        Semantics (Section 2.2 + Appendix A): a collision requires at
        least one *transmission-edge* arrival; interference-only arrivals
        on their own are undetectable noise — the node hears ``⊥``.
        When at least one transmission arrival exists, interference
        arrivals count toward the collision threshold but can never be
        received.
        """
        rule = self.collision_rule
        if is_sender and rule.sender_hears_own_message:
            assert own is not None
            return received(own)
        if not receivable:
            # No decodable signal: silence, regardless of interference.
            return SILENCE
        if is_sender:  # CR1 sender (its own message is receivable)
            if len(arrivals) >= 2:
                return COLLISION
            assert own is not None
            return received(own)
        if len(arrivals) == 1:
            return received(receivable[0])  # the lone arrival is receivable
        if rule in (CollisionRule.CR1, CollisionRule.CR2):
            return COLLISION
        if rule is CollisionRule.CR3:
            return SILENCE
        # CR4: silence or one *receivable* message.
        if self.cr4_choose_first:
            return received(min(receivable, key=lambda m: m.sender))
        return SILENCE

    def run(self) -> ExecutionTrace:
        source = self.network.source
        sp = self.process_at[source]
        sp.on_broadcast_input(
            Message(payload=self.payload, sender=sp.uid, round_sent=0)
        )
        self.trace.informed_round[source] = 0
        if self.synchronous_start:
            for v in range(self.network.n):
                self._activate(v)
        else:
            self._activate(source)

        while self._round < self.max_rounds:
            self._round += 1
            rnd = self._round
            senders: Dict[int, Message] = {}
            for v in sorted(self._active):
                ctx = self._contexts[v]
                ctx.round_number = rnd
                msg = self.process_at[v].decide_send(ctx)
                if msg is not None:
                    senders[v] = msg
            for v in range(self.network.n):
                self._contexts[v].round_number = rnd

            arrivals: Dict[int, List[Message]] = {
                v: [] for v in range(self.network.n)
            }
            receivable: Dict[int, List[Message]] = {
                v: [] for v in range(self.network.n)
            }
            for s, msg in senders.items():
                arrivals[s].append(msg)
                receivable[s].append(msg)
                for t in self.network.interference_out(s):
                    arrivals[t].append(msg)
                for t in self.network.transmission_out(s):
                    receivable[t].append(msg)

            newly_informed: List[int] = []
            newly_active: List[int] = []
            receptions: Dict[int, Reception] = {}
            for v in range(self.network.n):
                rec = self._resolve(
                    v, v in senders, senders.get(v), arrivals[v], receivable[v]
                )
                receptions[v] = rec
                proc = self.process_at[v]
                if v not in self._active:
                    if rec.is_message:
                        newly_active.append(v)
                        self._activate(v)
                    else:
                        continue
                if rec.is_message and rec.message.payload == self.payload:
                    if self.trace.informed_round[v] is None:
                        self.trace.informed_round[v] = rnd
                        newly_informed.append(v)
                    proc.deliver(self._contexts[v], rec)
                elif rec.is_message:
                    proc.on_reception(self._contexts[v], rec)
                else:
                    proc.deliver(self._contexts[v], rec)

            self.trace.rounds.append(
                RoundRecord(
                    round_number=rnd,
                    senders=dict(senders),
                    unreliable_deliveries={},
                    newly_informed=tuple(newly_informed),
                    newly_active=tuple(newly_active),
                    receptions=dict(receptions),
                )
            )
            if all(
                r is not None for r in self.trace.informed_round.values()
            ):
                self.trace.completed = True
                break
        return self.trace
