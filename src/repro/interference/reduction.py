"""The Lemma-1 reduction: dual graphs simulate explicit interference.

Lemma 1 states that any algorithm broadcasting in ``T(n)`` rounds on all
dual graphs also broadcasts in ``T(n)`` rounds on all explicit-
interference graphs (under the corresponding collision rule).  The proof
(Appendix A) exhibits, for each explicit-interference behaviour, a
dual-graph adversary producing *identical observations at every node*.

:class:`InterferenceSimulationAdversary` is that adversary, for the dual
graph ``G = G_T``, ``G' = G_I``.  Each round it recomputes what the
explicit-interference model would deliver, then:

* schedules an unreliable edge ``(v, u)`` exactly when ``v`` sends, ``u``
  has at least one receivable (transmission-edge or own) arrival, and
  ``u`` does **not** receive a message in the interference model — so
  ``u``'s observation is forced to the same collision/silence outcome;
* resolves CR4 collisions to the interference model's choice.

:func:`run_equivalence_check` executes an algorithm in both engines with
identical seeds and compares the traces observation-for-observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.adversaries.base import Adversary, AdversaryView
from repro.interference.model import InterferenceEngine, InterferenceNetwork
from repro.sim.collision import CollisionRule
from repro.sim.engine import BroadcastEngine, EngineConfig, StartMode
from repro.sim.messages import Message, Reception, ReceptionKind
from repro.sim.trace import ExecutionTrace


class InterferenceSimulationAdversary(Adversary):
    """Make a dual-graph execution mimic the explicit-interference model.

    Args:
        network: The interference network being simulated (its graph *is*
            the dual graph the engine runs on).
        collision_rule: Must match the engine's rule.
        cr4_choose_first: The interference model's CR4 policy being
            simulated (must match the reference
            :class:`~repro.interference.model.InterferenceEngine`).
    """

    def __init__(
        self,
        network: InterferenceNetwork,
        collision_rule: CollisionRule = CollisionRule.CR4,
        cr4_choose_first: bool = False,
    ) -> None:
        self.network = network
        self.collision_rule = collision_rule
        self.cr4_choose_first = cr4_choose_first
        self._round_plan: Dict[int, Reception] = {}
        self._plan_round = -1

    # ------------------------------------------------------------------
    # Interference-model outcome computation
    # ------------------------------------------------------------------
    def _interference_outcomes(
        self, senders: Mapping[int, Message]
    ) -> Dict[int, Reception]:
        """What each node observes in the explicit-interference model."""
        from repro.sim.messages import COLLISION, SILENCE, received

        net = self.network
        rule = self.collision_rule
        arrivals: Dict[int, List[Message]] = {
            v: [] for v in range(net.n)
        }
        receivable: Dict[int, List[Message]] = {
            v: [] for v in range(net.n)
        }
        for s, msg in senders.items():
            arrivals[s].append(msg)
            receivable[s].append(msg)
            for t in net.interference_out(s):
                arrivals[t].append(msg)
            for t in net.transmission_out(s):
                receivable[t].append(msg)

        outcomes: Dict[int, Reception] = {}
        for v in range(net.n):
            is_sender = v in senders
            if is_sender and rule.sender_hears_own_message:
                outcomes[v] = received(senders[v])
                continue
            if not receivable[v]:
                outcomes[v] = SILENCE
                continue
            if is_sender:  # CR1 sender
                outcomes[v] = (
                    COLLISION if len(arrivals[v]) >= 2 else received(senders[v])
                )
                continue
            if len(arrivals[v]) == 1:
                outcomes[v] = received(receivable[v][0])
                continue
            if rule in (CollisionRule.CR1, CollisionRule.CR2):
                outcomes[v] = COLLISION
            elif rule is CollisionRule.CR3:
                outcomes[v] = SILENCE
            elif self.cr4_choose_first:
                outcomes[v] = received(
                    min(receivable[v], key=lambda m: m.sender)
                )
            else:
                outcomes[v] = SILENCE
        return outcomes

    # ------------------------------------------------------------------
    # Adversary interface
    # ------------------------------------------------------------------
    def _plan(self, view: AdversaryView) -> Dict[int, Reception]:
        if view.round_number != self._plan_round:
            self._round_plan = self._interference_outcomes(view.senders)
            self._plan_round = view.round_number
        return self._round_plan

    def choose_deliveries(
        self, view: AdversaryView
    ) -> Dict[int, FrozenSet[int]]:
        net = view.network
        outcomes = self._plan(view)
        senders = sorted(view.senders)

        # Receivable arrival counts in the dual graph come from reliable
        # edges (plus own); a node whose interference outcome is NOT a
        # message reception but who has such an arrival must be flooded
        # with unreliable deliveries so the collision/silence outcome is
        # reproducible.
        has_receivable: Dict[int, bool] = {v: False for v in net.nodes}
        for s in senders:
            has_receivable[s] = True
            for t in net.reliable_out(s):
                has_receivable[t] = True

        chosen: Dict[int, set] = {}
        for u in net.nodes:
            if not has_receivable[u]:
                continue
            if outcomes[u].kind is ReceptionKind.MESSAGE and u not in senders:
                continue  # rule: do not disturb receivers
            if u in senders and self.collision_rule.sender_hears_own_message:
                continue  # sender observation is forced anyway
            if u in senders and outcomes[u].kind is not ReceptionKind.COLLISION:
                continue  # CR1 sender hearing its own message: no flood
            # Flood u from every sender holding an interference-only edge.
            for v in senders:
                if u in net.unreliable_only_out(v):
                    chosen.setdefault(v, set()).add(u)
        return {v: frozenset(ts) for v, ts in chosen.items()}

    def resolve_cr4(
        self, view: AdversaryView, node: int, arrivals: List[Message]
    ) -> Optional[Message]:
        outcome = self._plan(view)[node]
        if outcome.kind is ReceptionKind.MESSAGE:
            return outcome.message
        return None


@dataclass
class EquivalenceReport:
    """Result of running one algorithm in both models.

    Attributes:
        interference_trace: The reference explicit-interference execution.
        dual_trace: The simulated dual-graph execution.
        first_divergence: ``(round, node)`` of the first differing
            observation, or ``None`` when the traces agree everywhere.
    """

    interference_trace: ExecutionTrace
    dual_trace: ExecutionTrace
    first_divergence: Optional[Tuple[int, int]]

    @property
    def equivalent(self) -> bool:
        return self.first_divergence is None


def _receptions_equal(a: Reception, b: Reception) -> bool:
    if a.kind is not b.kind:
        return False
    if a.kind is not ReceptionKind.MESSAGE:
        return True
    assert a.message is not None and b.message is not None
    return (
        a.message.payload == b.message.payload
        and a.message.sender == b.message.sender
    )


def run_equivalence_check(
    network: InterferenceNetwork,
    process_factory,
    collision_rule: CollisionRule = CollisionRule.CR4,
    synchronous_start: bool = False,
    max_rounds: int = 10_000,
    seed: int = 0,
    cr4_choose_first: bool = False,
) -> EquivalenceReport:
    """Run an algorithm in both models and compare observations.

    Args:
        network: The explicit-interference network.
        process_factory: ``factory(n) -> processes`` building identical
            automata for both runs (seeding is handled by the engines and
            matches across them).
        collision_rule: Rule for both engines.
        synchronous_start: Start mode for both engines.
        max_rounds: Cap for both engines.
        seed: Shared engine seed.
        cr4_choose_first: CR4 policy of the interference model.
    """
    n = network.n
    ref_engine = InterferenceEngine(
        network,
        process_factory(n),
        collision_rule=collision_rule,
        synchronous_start=synchronous_start,
        max_rounds=max_rounds,
        seed=seed,
        cr4_choose_first=cr4_choose_first,
    )
    ref_trace = ref_engine.run()

    adversary = InterferenceSimulationAdversary(
        network,
        collision_rule=collision_rule,
        cr4_choose_first=cr4_choose_first,
    )
    config = EngineConfig(
        collision_rule=collision_rule,
        start_mode=(
            StartMode.SYNCHRONOUS
            if synchronous_start
            else StartMode.ASYNCHRONOUS
        ),
        max_rounds=max_rounds,
        seed=seed,
        record_receptions=True,
    )
    dual_engine = BroadcastEngine(
        network.as_dual_graph(), process_factory(n), adversary, config
    )
    dual_trace = dual_engine.run()

    first_divergence: Optional[Tuple[int, int]] = None
    for ref_rec, dual_rec in zip(ref_trace.rounds, dual_trace.rounds):
        assert ref_rec.receptions is not None
        assert dual_rec.receptions is not None
        for v in range(n):
            if not _receptions_equal(
                ref_rec.receptions[v], dual_rec.receptions[v]
            ):
                first_divergence = (ref_rec.round_number, v)
                break
        if first_divergence:
            break
    if first_divergence is None and len(ref_trace.rounds) != len(
        dual_trace.rounds
    ):
        first_divergence = (
            min(len(ref_trace.rounds), len(dual_trace.rounds)) + 1,
            -1,
        )
    return EquivalenceReport(
        interference_trace=ref_trace,
        dual_trace=dual_trace,
        first_divergence=first_divergence,
    )
