"""``repro.obs`` — telemetry, tracing and profiling for the platform.

The observability layer the sweep/search/engine stack reports through:

* :mod:`repro.obs.telemetry` — the :class:`Telemetry` protocol
  (counters, gauges, spans, events), the cheap :class:`NullTelemetry`
  default, the in-memory :class:`RecordingTelemetry`, and the
  process-wide :func:`current`/:func:`set_telemetry`/:func:`use`
  installation points.  :class:`Stopwatch` is the sanctioned
  elapsed-time primitive for every layer outside this package (rule
  RPR008).
* :mod:`repro.obs.events` — the schema-versioned ``events.jsonl``
  envelope, tolerant readers, the worker-stream merge and the
  :func:`environment_metadata` host fingerprint.
* :mod:`repro.obs.jsonl` — :class:`JsonlTelemetry`, the fork-safe
  durable sink behind ``repro sweep --events``.
* :mod:`repro.obs.progress` — folding events into
  :class:`CampaignProgress` (``repro progress``) and
  :func:`perf_summary` (the ``repro report`` perf panel).
* :mod:`repro.obs.profile` — :func:`profile_task` and
  :class:`ProfileReport` behind ``repro profile``.

The layer's contract: telemetry is **off by default** and enabling it
**never changes trace bytes** — it only observes.  ``tests/test_obs.py``
holds the differential proof across all three engines and
``benchmarks/bench_obs.py`` the <=5 % disabled-path overhead bound.
"""

from repro.obs.events import (
    ENVELOPE_FIELDS,
    EVENT_SCHEMA_VERSION,
    environment_metadata,
    events_path,
    iter_events,
    make_event,
    merge_event_files,
    read_events,
    validate_event,
    worker_event_paths,
)
from repro.obs.jsonl import JsonlTelemetry
from repro.obs.profile import ProfileReport, profile_task
from repro.obs.progress import (
    STALE_WORKER_SECONDS,
    CampaignProgress,
    WorkerStatus,
    fold_events,
    perf_summary,
    read_progress,
    render_perf_panel,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    RecordingTelemetry,
    Span,
    SpanStats,
    Stopwatch,
    Telemetry,
    current,
    set_telemetry,
    use,
)

__all__ = [
    "ENVELOPE_FIELDS",
    "EVENT_SCHEMA_VERSION",
    "NULL_TELEMETRY",
    "STALE_WORKER_SECONDS",
    "CampaignProgress",
    "JsonlTelemetry",
    "NullTelemetry",
    "ProfileReport",
    "RecordingTelemetry",
    "Span",
    "SpanStats",
    "Stopwatch",
    "Telemetry",
    "WorkerStatus",
    "current",
    "environment_metadata",
    "events_path",
    "fold_events",
    "iter_events",
    "make_event",
    "merge_event_files",
    "perf_summary",
    "profile_task",
    "read_events",
    "read_progress",
    "render_perf_panel",
    "set_telemetry",
    "use",
    "validate_event",
    "worker_event_paths",
]
