"""Single-cell profiling behind ``repro profile``.

Runs exactly one experiment cell under an in-memory
:class:`~repro.obs.telemetry.RecordingTelemetry` and distils the
captured spans and counters into a :class:`ProfileReport` — the
phase/timing + counter table the CLI prints.  Because the runner and
engines are instrumented through the process-wide telemetry
(:func:`~repro.obs.telemetry.use`), profiling reuses the exact same
instrumentation points a ``--events`` sweep exercises; there is no
separate profiling code path to drift.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.progress import _format_rows
from repro.obs.telemetry import RecordingTelemetry, use


class ProfileReport:
    """The distilled spans + counters of one profiled cell."""

    def __init__(
        self,
        spans: Dict[str, Dict[str, float]],
        counters: Dict[str, int],
        result: Dict[str, object],
    ) -> None:
        self.spans = spans
        self.counters = counters
        self.result = result

    @classmethod
    def from_telemetry(
        cls,
        telemetry: RecordingTelemetry,
        result: Dict[str, object],
    ) -> "ProfileReport":
        """Distil a finished recording into a report."""
        spans = {
            name: {
                "count": float(stats.count),
                "seconds": stats.seconds,
                "mean": stats.mean,
            }
            for name, stats in telemetry.spans.items()
        }
        counters = dict(telemetry.counters)
        return cls(spans=spans, counters=counters, result=result)

    def span_rows(self) -> List[Tuple[str, str, str, str]]:
        """Table rows ``(phase, count, total s, mean ms)``, sorted."""
        rows = []
        for name in sorted(self.spans):
            stats = self.spans[name]
            rows.append(
                (
                    name,
                    str(int(stats["count"])),
                    f"{stats['seconds']:.4f}",
                    f"{stats['mean'] * 1e3:.3f}",
                )
            )
        return rows

    def counter_rows(self) -> List[Tuple[str, str]]:
        """Table rows ``(counter, total)``, sorted by name."""
        return [
            (name, str(self.counters[name]))
            for name in sorted(self.counters)
        ]

    def to_dict(self) -> Dict[str, object]:
        """The ``repro profile --json`` document."""
        return {
            "spans": {
                name: {
                    "count": int(stats["count"]),
                    "seconds": stats["seconds"],
                    "mean": stats["mean"],
                }
                for name, stats in sorted(self.spans.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "result": self.result,
        }

    def render(self) -> str:
        """The human table ``repro profile`` prints."""
        lines = []
        result = self.result
        lines.append(
            "cell: "
            + " ".join(
                f"{key}={result[key]}"
                for key in (
                    "algorithm",
                    "graph_kind",
                    "n",
                    "adversary_kind",
                    "collision_rule",
                    "engine",
                    "seed",
                )
                if key in result
            )
        )
        if "rounds" in result:
            completed = result.get("completed")
            status = "completed" if completed else "cut off"
            lines.append(f"rounds: {result['rounds']} ({status})")
        if self.spans:
            lines.append("")
            lines.append(
                _format_rows(
                    self.span_rows(),
                    ("phase", "count", "total s", "mean ms"),
                )
            )
        if self.counters:
            lines.append("")
            lines.append(
                _format_rows(self.counter_rows(), ("counter", "total"))
            )
        return "\n".join(lines)


def profile_task(task: object) -> ProfileReport:
    """Run one experiment task under recording telemetry.

    ``task`` is an :class:`repro.experiments.spec.ExperimentTask`; the
    import of the runner is deferred so :mod:`repro.obs` stays a leaf
    package (the runner imports telemetry from here).
    """
    from repro.experiments.runner import execute_task

    telemetry = RecordingTelemetry()
    with use(telemetry):
        result = execute_task(task)
    return ProfileReport.from_telemetry(telemetry, result.to_dict())
