"""Zero-dependency instrumentation primitives behind :mod:`repro.obs`.

The :class:`Telemetry` protocol is the whole instrumentation surface:
counters (monotonic tallies), gauges (last-value samples), ``span()``
timers (``perf_counter``-based phase aggregates) and free-form events.
Instrumented code never branches on *which* sink is installed — it asks
:func:`current` for the process-wide telemetry once (engines capture it
at construction) and calls through the protocol.

Three invariants make instrumentation safe to leave in hot paths:

* **Off by default, cheap when off** — the process default is
  :class:`NullTelemetry`, whose ``enabled`` flag lets hot loops hoist a
  single boolean and whose methods are no-ops sharing one inert span
  object.  Enabling any sink never changes trace bytes: telemetry only
  *observes* (``tests/test_obs.py`` holds the differential proof, and
  ``benchmarks/bench_obs.py`` the <=5 % overhead contract).
* **Wall clocks live here** — ``repro check`` rule RPR008 confines
  ``time.perf_counter``/``monotonic`` to this package, so elapsed-time
  measurement elsewhere goes through :class:`Stopwatch` or spans and
  the determinism audit has one surface to read.
* **Process-scoped, not thread-scoped** — the sweep layer fans out via
  processes, so one module-level current telemetry per process is the
  right granularity (forked workers inherit it; the JSONL sink diverts
  their writes by pid, see :mod:`repro.obs.jsonl`).
"""

from __future__ import annotations

import contextlib
import time
from types import TracebackType
from typing import Dict, Iterator, List, Optional, Protocol


class Stopwatch:
    """Elapsed wall-time measurement for layers outside ``repro.obs``.

    The sanctioned replacement for ad-hoc ``time.perf_counter()`` pairs
    (rule RPR008): construction starts the clock, :meth:`elapsed`
    reads it.  Elapsed values feed human-facing fields only — never
    trace state.
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction (monotonic, sub-microsecond)."""
        return time.perf_counter() - self._start


class SpanRecorder(Protocol):
    """What a :class:`Span` needs from its owning telemetry."""

    def record_span(self, name: str, seconds: float) -> None:
        """Fold one finished span occurrence into the aggregate."""
        ...  # pragma: no cover - protocol signature


class Span:
    """Context manager timing one named phase occurrence.

    Entering starts a ``perf_counter`` clock; exiting (exceptions
    included — a failed phase still took its time) reports the elapsed
    seconds to the owning telemetry's per-name aggregate.
    """

    __slots__ = ("_owner", "_name", "_start")

    def __init__(self, owner: SpanRecorder, name: str) -> None:
        self._owner = owner
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._owner.record_span(
            self._name, time.perf_counter() - self._start
        )


class _NullSpan:
    """The shared no-op span handed out by :class:`NullTelemetry`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


#: One inert span serves every ``NullTelemetry.span()`` call: no
#: allocation on the disabled path.
_NULL_SPAN = _NullSpan()


class Telemetry(Protocol):
    """The instrumentation surface every sink implements.

    Attributes:
        enabled: Hot loops hoist this once per round/phase and skip
            their counting entirely when it is ``False``.
    """

    enabled: bool

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the monotonic counter ``name``."""
        ...  # pragma: no cover - protocol signature

    def gauge(self, name: str, value: float) -> None:
        """Record ``value`` as the latest sample of gauge ``name``."""
        ...  # pragma: no cover - protocol signature

    def span(self, name: str) -> "Span | _NullSpan":
        """A context manager timing one occurrence of phase ``name``."""
        ...  # pragma: no cover - protocol signature

    def event(self, kind: str, **fields: object) -> None:
        """Emit one free-form event (heartbeats, campaign markers)."""
        ...  # pragma: no cover - protocol signature

    def flush(self) -> None:
        """Push aggregated counters/gauges/spans to the sink."""
        ...  # pragma: no cover - protocol signature

    def close(self) -> None:
        """Flush and release the sink's resources."""
        ...  # pragma: no cover - protocol signature


class NullTelemetry:
    """The default sink: everything is a no-op and ``enabled`` is False.

    Instrumented hot paths are written so that under this sink the
    entire per-item cost is one hoisted boolean test — the contract
    ``benchmarks/bench_obs.py`` measures.
    """

    enabled: bool = False

    def count(self, name: str, value: int = 1) -> None:
        """Discard the counter increment."""
        return None

    def gauge(self, name: str, value: float) -> None:
        """Discard the gauge sample."""
        return None

    def span(self, name: str) -> _NullSpan:
        """The shared inert span (no allocation, no clock read)."""
        return _NULL_SPAN

    def event(self, kind: str, **fields: object) -> None:
        """Discard the event."""
        return None

    def flush(self) -> None:
        """Nothing buffered, nothing flushed."""
        return None

    def close(self) -> None:
        """Nothing held, nothing released."""
        return None


class SpanStats:
    """Aggregate of one named span: occurrence count and total seconds."""

    __slots__ = ("count", "seconds")

    def __init__(self, count: int = 0, seconds: float = 0.0) -> None:
        self.count = count
        self.seconds = seconds

    @property
    def mean(self) -> float:
        """Mean seconds per occurrence (0.0 when never entered)."""
        return self.seconds / self.count if self.count else 0.0

    def add(self, seconds: float, count: int = 1) -> None:
        """Fold ``count`` occurrences totalling ``seconds`` in."""
        self.count += count
        self.seconds += seconds

    def to_dict(self) -> Dict[str, object]:
        """The event-schema form (``{"count": .., "seconds": ..}``)."""
        return {"count": self.count, "seconds": self.seconds}


class RecordingTelemetry:
    """In-memory sink for tests and ``repro profile``.

    Counters, gauges and span aggregates accumulate in plain dicts;
    events append to a list.  Nothing touches the filesystem.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.spans: Dict[str, SpanStats] = {}
        self.events: List[Dict[str, object]] = []

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the in-memory counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Overwrite gauge ``name`` with ``value``."""
        self.gauges[name] = value

    def span(self, name: str) -> Span:
        """A live timing span feeding :attr:`spans`."""
        return Span(self, name)

    def record_span(self, name: str, seconds: float) -> None:
        """Fold one finished span occurrence into :attr:`spans`."""
        stats = self.spans.get(name)
        if stats is None:
            stats = self.spans[name] = SpanStats()
        stats.add(seconds)

    def event(self, kind: str, **fields: object) -> None:
        """Append the event (``kind`` key included) to :attr:`events`."""
        record: Dict[str, object] = {"kind": kind}
        record.update(fields)
        self.events.append(record)

    def flush(self) -> None:
        """Aggregates already live in memory; nothing to push."""
        return None

    def close(self) -> None:
        """Nothing held, nothing released."""
        return None


#: The process-wide null default (shared; NullTelemetry is stateless).
NULL_TELEMETRY = NullTelemetry()

_CURRENT: Telemetry = NULL_TELEMETRY


def current() -> Telemetry:
    """The process-wide telemetry (the null sink unless one was set)."""
    return _CURRENT


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install ``telemetry`` process-wide and return the previous sink.

    ``None`` restores the null default.  Engines capture the current
    telemetry at *construction*, so install the sink before building
    engines (or use :func:`use` around the whole run).
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


@contextlib.contextmanager
def use(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Scoped :func:`set_telemetry`: install for the block, then restore.

    The previous sink is restored even when the block raises.  Objects
    that captured the scoped telemetry (engines built inside the block)
    keep their reference — the restore only changes what *new* captures
    see.
    """
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
