"""The durable telemetry sink: schema-versioned ``events.jsonl``.

:class:`JsonlTelemetry` implements the :class:`~repro.obs.telemetry.
Telemetry` protocol against one append-only JSON-lines stream:

* **Events** are written (and flushed) line by line the moment they are
  emitted, so ``repro progress`` can tail a live campaign and a hard
  kill loses at most the line being written — the same torn-line
  posture the result stores take, and the tolerant reader in
  :mod:`repro.obs.events` heals it.
* **Counters, gauges and spans** aggregate in memory (one dict update
  per call — cheap enough for per-round engine counters) and reach the
  file as a single ``stats`` event per :meth:`flush`, as *deltas*:
  each flush resets the aggregates, so consumers sum ``stats`` events
  instead of taking the last.
* **Fork safety** — sweep pools fork workers that inherit the parent's
  sink object.  Every operation checks the pid: in a child, the
  inherited file handle and aggregates are abandoned (never closed —
  the handle is shared with the parent) and writes divert to a
  sibling ``events-<pid>.jsonl`` stream.  The sweep's closing
  :func:`~repro.obs.events.merge_event_files` folds the worker streams
  back into the main one.  Spawn-start pools install their own
  ``worker=True`` sink via the pool initializer instead.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Union

from repro.obs.events import EVENT_SCHEMA_VERSION
from repro.obs.telemetry import Span


class JsonlTelemetry:
    """Append events to a JSON-lines stream; aggregate stats in memory.

    Args:
        path: The stream file (conventionally
            :func:`~repro.obs.events.events_path` of the campaign's
            results location).  Parent directories are created on
            first write.
        worker: Force the pid-suffixed sibling stream even in the
            constructing process — what a spawn-start pool initializer
            passes, since each spawned worker constructs its own sink
            and must not contend for the parent's file.
    """

    enabled: bool = True

    def __init__(self, path: Union[str, Path], worker: bool = False) -> None:
        self.path = Path(path)
        self._worker = worker
        self._owner_pid = os.getpid()
        self._state_pid = self._owner_pid
        self._file: Optional[TextIO] = None
        self._seq = 0
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        # name -> [count, total seconds]
        self._spans: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # Fork safety
    # ------------------------------------------------------------------
    def _fresh(self) -> None:
        """Reset inherited state on the first touch after a fork.

        The parent's file handle is abandoned unclosed (closing would
        flush shared buffered bytes into the parent's stream) and the
        aggregates restart from zero — a child's counters are its own.
        """
        pid = os.getpid()
        if pid != self._state_pid:
            self._state_pid = pid
            self._file = None
            self._seq = 0
            self._counters = {}
            self._gauges = {}
            self._spans = {}

    def _sink(self) -> TextIO:
        """The open stream for this process, opening it on first use."""
        if self._file is None:
            target = self.path
            if self._worker or self._state_pid != self._owner_pid:
                target = self.path.with_name(
                    f"{self.path.stem}-{self._state_pid}.jsonl"
                )
            target.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(target, "a", encoding="utf-8")
        return self._file

    # ------------------------------------------------------------------
    # Telemetry protocol
    # ------------------------------------------------------------------
    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the in-memory counter ``name``."""
        self._fresh()
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Overwrite gauge ``name`` with ``value``."""
        self._fresh()
        self._gauges[name] = value

    def span(self, name: str) -> Span:
        """A live timing span feeding the in-memory aggregates."""
        return Span(self, name)

    def record_span(self, name: str, seconds: float) -> None:
        """Fold one finished span occurrence into the aggregates."""
        self._fresh()
        stats = self._spans.get(name)
        if stats is None:
            self._spans[name] = [1.0, seconds]
        else:
            stats[0] += 1.0
            stats[1] += seconds

    def event(self, kind: str, **fields: object) -> None:
        """Write one event line and flush it to disk immediately."""
        self._fresh()
        record: Dict[str, object] = dict(fields)
        record.update(
            v=EVENT_SCHEMA_VERSION,
            kind=kind,
            ts=time.time(),
            pid=self._state_pid,
            seq=self._seq,
        )
        self._seq += 1
        sink = self._sink()
        sink.write(json.dumps(record, sort_keys=True) + "\n")
        sink.flush()

    def flush(self) -> None:
        """Emit the aggregates as one delta ``stats`` event and reset.

        A flush with nothing aggregated writes nothing, so periodic
        flushing (worker heartbeats call this) stays quiet between
        bursts of engine work.
        """
        self._fresh()
        if not (self._counters or self._gauges or self._spans):
            return
        counters = dict(self._counters)
        gauges = dict(self._gauges)
        spans = {
            name: {"count": int(stats[0]), "seconds": stats[1]}
            for name, stats in self._spans.items()
        }
        self._counters.clear()
        self._gauges.clear()
        self._spans.clear()
        self.event("stats", counters=counters, gauges=gauges, spans=spans)

    def close(self) -> None:
        """Flush the aggregates and close this process's stream file."""
        self._fresh()
        self.flush()
        if self._file is not None:
            self._file.close()
            self._file = None
