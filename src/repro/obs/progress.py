"""Folding ``events.jsonl`` into campaign progress and perf summaries.

This module is the read side of the telemetry stream: it turns the raw
event list (:func:`repro.obs.events.read_events`) into the structures
the CLI consumers render — :class:`CampaignProgress` for
``repro progress`` (done/total, throughput, ETA, per-worker liveness)
and :func:`perf_summary` for the perf panel of ``repro report``
(summed ``stats`` deltas and campaign phase spans).

Folding is forward-only and tolerant: unknown event kinds are skipped
(the schema contract in :mod:`repro.obs.events`), and a half-written
stream from a live or killed campaign folds to the best state the
events so far support — which is exactly what a live ``repro
progress`` tail needs.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.events import read_events

#: A worker whose last heartbeat is older than this many seconds is
#: rendered as stale by ``repro progress`` (likely dead or wedged).
STALE_WORKER_SECONDS = 30.0

_PathLike = str


class WorkerStatus:
    """The latest heartbeat state of one pool worker."""

    __slots__ = ("pid", "tasks_done", "rate", "last_seen")

    def __init__(
        self, pid: int, tasks_done: int, rate: float, last_seen: float
    ) -> None:
        self.pid = pid
        self.tasks_done = tasks_done
        self.rate = rate
        self.last_seen = last_seen

    def is_stale(self, now: Optional[float] = None) -> bool:
        """Whether the worker missed its heartbeat window."""
        if now is None:
            now = time.time()
        return (now - self.last_seen) > STALE_WORKER_SECONDS

    def to_dict(self, now: Optional[float] = None) -> Dict[str, object]:
        """The ``--json`` form of one worker row."""
        return {
            "pid": self.pid,
            "tasks_done": self.tasks_done,
            "rate": self.rate,
            "last_seen": self.last_seen,
            "stale": self.is_stale(now),
        }


class CampaignProgress:
    """The folded state of one campaign's telemetry stream."""

    def __init__(self) -> None:
        self.name: Optional[str] = None
        self.done = 0
        self.total = 0
        self.resumed = 0
        self.started_at: Optional[float] = None
        self.updated_at: Optional[float] = None
        self.finished = False
        self.elapsed: Optional[float] = None
        self.workers: Dict[int, WorkerStatus] = {}

    @property
    def rate(self) -> float:
        """Overall completed tasks per second since campaign start.

        Computed from the event timestamps (start to latest event), so
        it is stable for finished campaigns and live for running ones.
        """
        if self.started_at is None or self.updated_at is None:
            return 0.0
        window = self.updated_at - self.started_at
        if window <= 0.0:
            return 0.0
        return self.done / window

    @property
    def eta_seconds(self) -> Optional[float]:
        """Seconds to completion at the current rate (None if unknown)."""
        if self.finished:
            return 0.0
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        rate = self.rate
        if rate <= 0.0:
            return None
        return remaining / rate

    def to_dict(self, now: Optional[float] = None) -> Dict[str, object]:
        """The ``repro progress --json`` document."""
        return {
            "name": self.name,
            "done": self.done,
            "total": self.total,
            "resumed": self.resumed,
            "finished": self.finished,
            "rate": self.rate,
            "eta_seconds": self.eta_seconds,
            "elapsed": self.elapsed,
            "workers": [
                self.workers[pid].to_dict(now)
                for pid in sorted(self.workers)
            ],
        }

    def render_line(self, now: Optional[float] = None) -> str:
        """The single-line TTY status ``repro progress`` prints."""
        if self.total:
            pct = 100.0 * self.done / self.total
            head = f"{self.done}/{self.total} ({pct:.0f}%)"
        else:
            head = f"{self.done}/?"
        parts = [head, f"{self.rate:.1f} task/s"]
        if self.finished:
            if self.elapsed is not None:
                parts.append(f"done in {self.elapsed:.1f}s")
            else:
                parts.append("done")
        else:
            eta = self.eta_seconds
            parts.append(
                "eta ?" if eta is None else f"eta {eta:.0f}s"
            )
        if self.workers:
            live = sum(
                1 for w in self.workers.values() if not w.is_stale(now)
            )
            parts.append(f"workers {live}/{len(self.workers)}")
        name = self.name or "campaign"
        return f"{name}: " + "  ".join(parts)


def fold_events(
    events: Iterable[Dict[str, object]],
) -> CampaignProgress:
    """Fold an ordered event sequence into a :class:`CampaignProgress`.

    Later events win (the sequence is expected in ``(ts, pid, seq)``
    order, as :func:`~repro.obs.events.read_events` yields it); a
    stream with no ``campaign_end`` folds to a live, unfinished state.
    """
    progress = CampaignProgress()
    for event in events:
        kind = event.get("kind")
        ts = float(event.get("ts", 0.0))  # type: ignore[arg-type]
        if progress.updated_at is None or ts > progress.updated_at:
            progress.updated_at = ts
        if kind == "campaign_start":
            progress.name = str(event.get("name", "")) or progress.name
            progress.total = int(event.get("total", 0))  # type: ignore[call-overload]
            progress.resumed = int(event.get("resumed", 0))  # type: ignore[call-overload]
            progress.started_at = ts
            progress.finished = False
        elif kind == "progress":
            progress.done = int(event.get("done", progress.done))  # type: ignore[call-overload]
            total = int(event.get("total", progress.total))  # type: ignore[call-overload]
            if total:
                progress.total = total
        elif kind == "heartbeat":
            pid = int(event.get("pid", 0))  # type: ignore[call-overload]
            progress.workers[pid] = WorkerStatus(
                pid=pid,
                tasks_done=int(event.get("tasks_done", 0)),  # type: ignore[call-overload]
                rate=float(event.get("rate", 0.0)),  # type: ignore[arg-type]
                last_seen=ts,
            )
        elif kind == "campaign_end":
            progress.done = int(event.get("done", progress.done))  # type: ignore[call-overload]
            total = int(event.get("total", progress.total))  # type: ignore[call-overload]
            if total:
                progress.total = total
            elapsed = event.get("elapsed")
            if elapsed is not None:
                progress.elapsed = float(elapsed)  # type: ignore[arg-type]
            progress.finished = True
    return progress


def read_progress(results: _PathLike) -> CampaignProgress:
    """Fold the campaign at ``results`` (main + worker streams)."""
    return fold_events(read_events(results))


def _merge_span(
    spans: Dict[str, Dict[str, float]],
    name: str,
    count: float,
    seconds: float,
) -> None:
    """Accumulate one span delta into the summary aggregate."""
    agg = spans.setdefault(name, {"count": 0.0, "seconds": 0.0})
    agg["count"] += count
    agg["seconds"] += seconds


def perf_summary(results: _PathLike) -> Dict[str, object]:
    """Sum a campaign's ``stats`` deltas into one perf document.

    The shape feeds the perf panel of ``repro report`` and the
    ``repro progress --json`` consumers::

        {"counters": {name: total, ...},
         "spans": {name: {"count": n, "seconds": s, "mean": m}, ...},
         "engine_runs": <count of engine_run events>,
         "events": <total event count>}

    ``stats`` events are deltas (each flush resets the emitting sink's
    aggregates), so summation — not last-wins — is the correct fold.
    """
    counters: Dict[str, float] = {}
    spans: Dict[str, Dict[str, float]] = {}
    engine_runs = 0
    total_events = 0
    for event in read_events(results):
        total_events += 1
        kind = event.get("kind")
        if kind == "stats":
            raw_counters = event.get("counters")
            if isinstance(raw_counters, dict):
                for name, value in raw_counters.items():
                    counters[name] = counters.get(name, 0.0) + float(value)
            raw_spans = event.get("spans")
            if isinstance(raw_spans, dict):
                for name, stats in raw_spans.items():
                    if isinstance(stats, dict):
                        _merge_span(
                            spans,
                            name,
                            float(stats.get("count", 0.0)),
                            float(stats.get("seconds", 0.0)),
                        )
        elif kind == "engine_run":
            engine_runs += 1
    span_doc: Dict[str, object] = {}
    for name in sorted(spans):
        agg = spans[name]
        count = agg["count"]
        span_doc[name] = {
            "count": int(count),
            "seconds": agg["seconds"],
            "mean": agg["seconds"] / count if count else 0.0,
        }
    return {
        "counters": {
            name: (
                int(counters[name])
                if counters[name] == int(counters[name])
                else counters[name]
            )
            for name in sorted(counters)
        },
        "spans": span_doc,
        "engine_runs": engine_runs,
        "events": total_events,
    }


def _format_rows(rows: List[Tuple[str, ...]], header: Tuple[str, ...]) -> str:
    """Left-aligned fixed-width table used by the perf/profile renders."""
    table = [header] + rows
    widths = [
        max(len(row[col]) for row in table)
        for col in range(len(header))
    ]
    lines = []
    for idx, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_perf_panel(perf: Dict[str, object]) -> str:
    """Render a :func:`perf_summary` document as the report perf panel."""
    lines = ["== Performance (events.jsonl) =="]
    spans = perf.get("spans")
    if isinstance(spans, dict) and spans:
        rows = []
        for name in sorted(spans):
            stats = spans[name]
            if not isinstance(stats, dict):
                continue
            rows.append(
                (
                    name,
                    str(int(stats.get("count", 0))),
                    f"{float(stats.get('seconds', 0.0)):.4f}",
                    f"{float(stats.get('mean', 0.0)) * 1e3:.3f}",
                )
            )
        lines.append(
            _format_rows(rows, ("phase", "count", "total s", "mean ms"))
        )
    counters = perf.get("counters")
    if isinstance(counters, dict) and counters:
        rows = [
            (name, str(counters[name])) for name in sorted(counters)
        ]
        lines.append("")
        lines.append(_format_rows(rows, ("counter", "total")))
    lines.append("")
    lines.append(
        f"engine runs: {perf.get('engine_runs', 0)}   "
        f"events: {perf.get('events', 0)}"
    )
    return "\n".join(lines)
