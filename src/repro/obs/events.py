"""The ``events.jsonl`` schema and file handling.

A campaign's telemetry stream is a sidecar JSON-lines file beside its
result store (:func:`events_path`): the parent process writes
``events.jsonl``; pool workers write sibling ``events-<pid>.jsonl``
files that :func:`merge_event_files` folds back in when the sweep
closes.  Every line is one event object carrying a fixed envelope::

    {"v": 1, "kind": "heartbeat", "ts": 1754650000.123,
     "pid": 4242, "seq": 17, ...free-form fields...}

* ``v`` — :data:`EVENT_SCHEMA_VERSION`; readers reject lines from a
  different schema generation instead of misparsing them.
* ``kind`` — the event type (``campaign_start``, ``progress``,
  ``heartbeat``, ``stats``, ``engine_run``, ``campaign_end``, …).
  Consumers ignore kinds they do not know, so adding kinds is not a
  schema bump.
* ``ts`` — wall-clock epoch seconds at emission.  Events are telemetry
  *about* a run, never inputs to one: no trace byte ever derives from
  an event, which is why wall time is legal here (and only here —
  rules RPR003/RPR008 police the other layers).
* ``pid``/``seq`` — emitting process and its per-process sequence
  number; ``(ts, pid, seq)`` is the canonical total order
  :func:`merge_event_files` sorts by.

Reading is tolerant by design (the same policy as the result stores in
:mod:`repro.store`): a torn final line — the signature of a hard kill
mid-write — or a foreign line is skipped and counted, never fatal.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

#: Version stamped into (and required of) every event line.
EVENT_SCHEMA_VERSION = 1

#: Envelope fields every valid event carries.
ENVELOPE_FIELDS = ("v", "kind", "ts", "pid", "seq")

_PathLike = Union[str, Path]


def make_event(
    kind: str,
    ts: float,
    pid: int,
    seq: int,
    fields: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Build one schema-valid event dict (envelope wins over fields)."""
    record: Dict[str, object] = dict(fields or {})
    record.update(
        v=EVENT_SCHEMA_VERSION, kind=kind, ts=ts, pid=pid, seq=seq
    )
    return record


def validate_event(obj: object) -> Dict[str, object]:
    """Check one parsed line against the schema; raise ``ValueError``.

    Returns the dict unchanged on success so callers can validate
    inline (``event = validate_event(json.loads(line))``).
    """
    if not isinstance(obj, dict):
        raise ValueError(f"event must be an object, got {type(obj).__name__}")
    missing = [f for f in ENVELOPE_FIELDS if f not in obj]
    if missing:
        raise ValueError(f"event missing envelope fields {missing}")
    if obj["v"] != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"event schema v{obj['v']!r} != supported "
            f"v{EVENT_SCHEMA_VERSION}"
        )
    if not isinstance(obj["kind"], str):
        raise ValueError("event kind must be a string")
    return obj


def events_path(results: _PathLike) -> Path:
    """The events stream belonging to a campaign at ``results``.

    A campaign *directory* (sharded/columnar store) keeps its stream
    inside (``<dir>/events.jsonl``); a results *file* (single JSONL
    store) gets a sidecar (``<file>.events.jsonl``), so one directory
    can hold several campaigns' streams without collision.  A trailing
    path separator requests the directory form even before the
    campaign directory exists — the same convention
    ``repro.store.detect_backend`` uses.
    """
    path = Path(results)
    if path.is_dir() or str(results).endswith(("/", os.sep)):
        return path / "events.jsonl"
    return path.with_name(path.name + ".events.jsonl")


def worker_event_paths(path: _PathLike) -> List[Path]:
    """Unmerged worker streams beside the main stream at ``path``.

    Workers write ``<stem>-<pid>.jsonl`` siblings (see
    :mod:`repro.obs.jsonl`); sorted for deterministic merge input
    order.
    """
    main = Path(path)
    return sorted(
        p
        for p in main.parent.glob(f"{main.stem}-*.jsonl")
        if p != main
    )


def iter_events(path: _PathLike) -> Iterator[Dict[str, object]]:
    """Yield the valid events of one stream file, skipping damage.

    Torn, unparsable or schema-violating lines are skipped silently —
    the tolerant-read policy shared with the result stores.  A missing
    file yields nothing (a campaign that never enabled ``--events`` is
    not an error at read time).
    """
    file_path = Path(path)
    if not file_path.exists():
        return
    with open(file_path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                yield validate_event(json.loads(line))
            except ValueError:
                continue


def _event_order(event: Dict[str, object]) -> Tuple[float, int, int]:
    """The canonical total order key: ``(ts, pid, seq)``."""
    return (
        float(event["ts"]),  # type: ignore[arg-type]
        int(event["pid"]),  # type: ignore[call-overload]
        int(event["seq"]),  # type: ignore[call-overload]
    )


def read_events(results: _PathLike) -> List[Dict[str, object]]:
    """All events of a campaign, main and worker streams, in order.

    Reads without merging, so a *live* campaign's progress (parent
    stream plus still-growing worker streams) is visible before the
    sweep's closing merge consolidates the files.
    """
    main = events_path(results)
    events = list(iter_events(main))
    for worker in worker_event_paths(main):
        events.extend(iter_events(worker))
    events.sort(key=_event_order)
    return events


def merge_event_files(results: _PathLike) -> int:
    """Fold worker event streams into the campaign's main stream.

    Rewrites ``events.jsonl`` atomically (temp file + ``os.replace``)
    with every event of every stream in ``(ts, pid, seq)`` order, then
    removes the worker files.  Idempotent: with no worker files left
    the main stream is simply re-sorted in place.  Returns the total
    event count in the merged stream.
    """
    main = events_path(results)
    workers = worker_event_paths(main)
    events = list(iter_events(main))
    for worker in workers:
        events.extend(iter_events(worker))
    if not events and not workers:
        return 0
    events.sort(key=_event_order)
    tmp = main.with_name(main.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        for event in events:
            f.write(json.dumps(event, sort_keys=True) + "\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, main)
    for worker in workers:
        worker.unlink(missing_ok=True)
    return len(events)


def environment_metadata() -> Dict[str, object]:
    """The host fingerprint stamped into campaign/benchmark manifests.

    Enough to tell whether two telemetry or benchmark trajectories are
    comparable — interpreter, platform and core count — without
    leaking anything host-identifying beyond what CI logs already
    show.
    """
    return {
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }
