#!/usr/bin/env python3
"""Cross-check documented CLI commands against the real ``repro --help``.

Walks every fenced code block in README.md and docs/*.md, extracts the
``repro …`` / ``python -m repro …`` command lines (joining backslash
continuations), and verifies that

* the subcommand exists, and
* every ``--flag`` it uses is accepted by that subcommand's parser

so documentation cannot drift ahead of (or behind) the CLI without
failing the CI docs job.  The converse is enforced too: every live
subcommand must appear in at least one documented command block, so a
new command cannot ship undocumented.  Relative markdown links are
checked for existence as a bonus — a renamed doc breaks the build,
not the reader.

Usage: ``python scripts/check_docs.py`` (exit status 0 = clean).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import build_parser  # noqa: E402

DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

FENCE = re.compile(r"```[a-z]*\n(.*?)```", re.DOTALL)
FLAG = re.compile(r"(--[a-z][a-z0-9-]*)")
LINK = re.compile(r"\[[^\]]*\]\(([^)#]+)(?:#[^)]*)?\)")


def known_flags() -> dict:
    """subcommand -> set of accepted ``--flags``, from the live parser."""
    parser = build_parser()
    out = {}
    for action in parser._subparsers._group_actions:  # argparse internals
        for name, sub in action.choices.items():
            out[name] = set(FLAG.findall(sub.format_help())) | {"--help"}
    return out


def command_lines(block: str):
    """Yield logical ``repro …`` command lines, continuations joined."""
    logical = []
    pending = ""
    for line in block.splitlines():
        line = pending + line.strip()
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        logical.append(line)
    for line in logical:
        for prefix in ("repro ", "python -m repro "):
            if line.startswith(prefix):
                yield line, line[len(prefix):].split()
                break


def check_commands(
    path: pathlib.Path,
    text: str,
    flags_by_sub: dict,
    documented: set,
):
    problems = []
    for block in FENCE.findall(text):
        for line, argv in command_lines(block):
            if not argv:
                continue
            sub = argv[0]
            if sub not in flags_by_sub:
                problems.append(
                    f"{path.name}: unknown subcommand {sub!r} in: {line}"
                )
                continue
            documented.add(sub)
            used = {f.split("=")[0] for f in argv[1:] if f.startswith("--")}
            stale = sorted(used - flags_by_sub[sub])
            if stale:
                problems.append(
                    f"{path.name}: `repro {sub}` does not accept "
                    f"{', '.join(stale)} (from: {line})"
                )
    return problems


def check_links(path: pathlib.Path, text: str):
    problems = []
    for target in LINK.findall(text):
        if "://" in target or target.startswith("mailto:"):
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{path.name}: broken link -> {target}")
    return problems


def main() -> int:
    flags_by_sub = known_flags()
    problems = []
    documented = set()
    checked = 0
    for path in DOC_FILES:
        text = path.read_text(encoding="utf-8")
        problems += check_commands(path, text, flags_by_sub, documented)
        problems += check_links(path, text)
        checked += 1
    for sub in sorted(set(flags_by_sub) - documented):
        problems.append(
            f"subcommand `repro {sub}` appears in no documented "
            "command block (README.md / docs/*.md)"
        )
    if problems:
        for problem in problems:
            print(f"STALE-DOCS: {problem}", file=sys.stderr)
        return 1
    print(
        f"docs check: {checked} files, CLI commands and links consistent "
        f"with repro --help ({', '.join(sorted(flags_by_sub))})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
