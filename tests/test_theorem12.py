"""Tests for the Theorem 12 candidate-set construction."""

import math

import pytest

from repro.core import (
    make_round_robin_processes,
    make_strong_select_processes,
)
from repro.lowerbounds import (
    ConstructionError,
    theorem12_construction,
)
from repro.sim.process import SilentProcess


class TestConstructionMechanics:
    def test_requires_minimum_size(self):
        with pytest.raises(ValueError):
            theorem12_construction(make_round_robin_processes, 4)

    def test_requires_full_uid_range(self):
        with pytest.raises(ValueError):
            theorem12_construction(
                lambda n: [SilentProcess(uid=i + 1) for i in range(n)], 9
            )

    def test_silent_algorithm_rejected(self):
        # An algorithm that never transmits can never isolate the source;
        # the construction reports that as a failure to broadcast at all.
        with pytest.raises(ConstructionError):
            theorem12_construction(
                lambda n: [SilentProcess(uid=i) for i in range(n)],
                9,
                stage_cap=50,
            )

    def test_stage_records_consistent(self):
        res = theorem12_construction(make_round_robin_processes, 17)
        assert res.total_rounds == res.preamble_rounds + sum(
            s.total_rounds for s in res.stages
        )
        # Pairs are disjoint and never include the source.
        seen = {0}
        for s in res.stages:
            assert len(set(s.pair)) == 2
            assert not (set(s.pair) & seen)
            seen.update(s.pair)

    def test_informed_set_is_source_plus_pairs(self):
        res = theorem12_construction(make_round_robin_processes, 17)
        expected = {0}
        for s in res.stages:
            expected.update(s.pair)
        assert res.informed == expected

    def test_max_stages_respected(self):
        res = theorem12_construction(
            make_round_robin_processes, 17, max_stages=3
        )
        assert len(res.stages) == 3

    def test_broadcast_never_completes_during_construction(self):
        res = theorem12_construction(make_round_robin_processes, 17)
        assert len(res.informed) < res.n


class TestLowerBoundClaims:
    @pytest.mark.parametrize("n", [9, 17, 33])
    def test_round_robin_total_exceeds_paper_guarantee(self, n):
        res = theorem12_construction(make_round_robin_processes, n)
        assert res.total_rounds >= res.paper_total_guarantee

    def test_strong_select_total_exceeds_paper_guarantee(self):
        n = 17
        res = theorem12_construction(
            lambda m: make_strong_select_processes(m), n
        )
        assert res.total_rounds >= res.paper_total_guarantee

    def test_early_stages_meet_log_guarantee_round_robin(self):
        # Claim 13 ⇒ each of the first (n-1)/4 stages lasts at least
        # log2(n-1) - 2 construction rounds.
        n = 33
        res = theorem12_construction(make_round_robin_processes, n)
        assert res.min_early_stage_rounds is not None
        assert res.min_early_stage_rounds >= math.log2(n - 1) - 2

    def test_omega_n_log_n_scaling(self):
        # Doubling n should grow the total by more than 2x (the n log n
        # shape), at least for round robin where stages cost Θ(n).
        small = theorem12_construction(make_round_robin_processes, 17)
        large = theorem12_construction(make_round_robin_processes, 33)
        assert large.total_rounds > 1.9 * small.total_rounds
