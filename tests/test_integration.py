"""Cross-module integration tests: every algorithm × topology × adversary
combination that the paper's claims cover must complete (or demonstrably
stall where the theory says it may)."""

import pytest

from repro import broadcast
from repro.adversaries import (
    FlappingLinkAdversary,
    FullDeliveryAdversary,
    GreedyInterferer,
    NoDeliveryAdversary,
    RandomDeliveryAdversary,
)
from repro.core import round_robin_bound
from repro.core.strong_select import build_schedule
from repro.graphs import (
    clique_bridge,
    gnp_dual,
    gray_zone,
    grid,
    layered_pairs,
    line,
    random_tree,
    ring,
    star,
    with_complete_unreliable,
)
from repro.sim import CollisionRule, StartMode

ALGORITHMS = ["strong_select", "harmonic", "round_robin"]
ADVERSARIES = [
    ("none", NoDeliveryAdversary),
    ("full", FullDeliveryAdversary),
    ("random", lambda: RandomDeliveryAdversary(0.4, seed=1)),
    ("greedy", GreedyInterferer),
    ("flapping", lambda: FlappingLinkAdversary(2, 3)),
]


class TestAlgorithmsAcrossTopologies:
    @pytest.mark.parametrize("alg", ALGORITHMS)
    @pytest.mark.parametrize(
        "graph",
        [
            line(10),
            ring(10),
            star(10),
            grid(3, 4),
            random_tree(12, seed=2),
            gnp_dual(16, seed=3),
            with_complete_unreliable(line(10)),
            clique_bridge(10).graph,
            layered_pairs(11).graph,
        ],
        ids=[
            "line",
            "ring",
            "star",
            "grid",
            "tree",
            "gnp",
            "hard-line",
            "clique-bridge",
            "layered-pairs",
        ],
    )
    def test_completes_with_greedy_interferer(self, alg, graph):
        trace = broadcast(
            graph, alg, adversary=GreedyInterferer(), seed=2
        )
        assert trace.completed

    @pytest.mark.parametrize("name,adv", ADVERSARIES)
    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_completes_under_every_adversary(self, name, adv, alg):
        g = gnp_dual(14, seed=6)
        trace = broadcast(g, alg, adversary=adv(), seed=3)
        assert trace.completed

    def test_gray_zone_scenario(self):
        g, _pos = gray_zone(24, seed=4)
        for alg in ALGORITHMS:
            trace = broadcast(
                g, alg, adversary=RandomDeliveryAdversary(0.3, seed=2),
                seed=5,
            )
            assert trace.completed


class TestCollisionRulesAndStartModes:
    @pytest.mark.parametrize("rule", list(CollisionRule))
    @pytest.mark.parametrize("start", list(StartMode))
    def test_strong_select_weakest_to_strongest(self, rule, start):
        g = gnp_dual(12, seed=7)
        trace = broadcast(
            g,
            "strong_select",
            adversary=GreedyInterferer(),
            collision_rule=rule,
            start_mode=start,
            seed=1,
        )
        assert trace.completed

    @pytest.mark.parametrize("rule", list(CollisionRule))
    def test_round_robin_bound_independent_of_rule(self, rule):
        g = gnp_dual(12, seed=8)
        bound = round_robin_bound(12, g.source_eccentricity)
        trace = broadcast(
            g,
            "round_robin",
            adversary=GreedyInterferer(),
            collision_rule=rule,
            seed=1,
        )
        assert trace.completed
        assert trace.completion_round <= bound


class TestPaperHeadlines:
    def test_strong_select_within_bound_on_every_seed(self):
        n = 20
        bound = build_schedule(n).round_bound()
        for seed in range(5):
            g = gnp_dual(n, seed=seed)
            trace = broadcast(
                g, "strong_select", adversary=GreedyInterferer(), seed=seed
            )
            assert trace.completed
            assert trace.completion_round <= bound

    def test_dual_graph_slower_than_classical_on_bridge(self):
        # The separation: on the clique-bridge network, the classical
        # projection (no unreliable edges => benign) broadcasts fast with
        # round robin, while the dual version against the Theorem-2 rules
        # needs Ω(n) (tested in test_theorem2); here we confirm the
        # classical run is ≤ 2n trivially and the greedy-attacked dual
        # run is no faster.
        layout = clique_bridge(12)
        classical = broadcast(
            layout.graph.classical_projection(), "round_robin", seed=0
        )
        dual = broadcast(
            layout.graph, "round_robin", adversary=GreedyInterferer(),
            seed=0,
        )
        assert classical.completed and dual.completed
        assert dual.completion_round >= classical.completion_round

    def test_harmonic_beats_round_robin_on_adversarial_line(self):
        # O(n log^2 n) vs n·ecc: on a deep line whose identities descend
        # along the path (so each hop's round-robin slot has just
        # passed), Harmonic (T small) wins decisively.  With identities
        # ascending along the path round robin pipelines perfectly —
        # which is exactly why the proc assignment belongs to the
        # adversary in this model.
        from repro.graphs.dualgraph import DualGraph

        n = 48
        path = [0] + list(range(n - 1, 0, -1))
        g = DualGraph(
            n,
            list(zip(path, path[1:])),
            undirected=True,
            name="descending-line",
        )
        hm = broadcast(
            g, "harmonic", algorithm_params={"T": 4}, seed=3,
            max_rounds=100_000,
        )
        rr = broadcast(g, "round_robin", seed=3)
        assert hm.completed and rr.completed
        assert hm.completion_round < rr.completion_round

    def test_transmissions_eventually_stop_for_strong_select(self):
        # The participate-once rule means the network quiesces: no
        # transmissions after every node has exhausted its iterations.
        g = gnp_dual(12, seed=9)
        trace = broadcast(
            g, "strong_select", seed=0, stop_when_informed=False,
            max_rounds=build_schedule(12).round_bound(),
        )
        assert trace.completed
        tail = trace.rounds[-1]
        last_sender_round = max(
            (r.round_number for r in trace.rounds if r.senders), default=0
        )
        assert last_sender_round < tail.round_number
