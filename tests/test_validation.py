"""Tests for the independent execution validator."""

import pytest

from repro.adversaries import (
    FullDeliveryAdversary,
    GreedyInterferer,
    RandomDeliveryAdversary,
)
from repro.core import (
    make_decay_processes,
    make_harmonic_processes,
    make_round_robin_processes,
    make_strong_select_processes,
)
from repro.graphs import gnp_dual, line, with_complete_unreliable
from repro.sim import (
    BroadcastEngine,
    CollisionRule,
    EngineConfig,
    StartMode,
)
from repro.sim.messages import COLLISION, Message, received
from repro.sim.trace import RoundRecord
from repro.sim.validation import validate_execution


def run_recorded(
    network,
    processes,
    adversary=None,
    rule=CollisionRule.CR4,
    start=StartMode.ASYNCHRONOUS,
    seed=0,
    max_rounds=20_000,
):
    config = EngineConfig(
        collision_rule=rule,
        start_mode=start,
        seed=seed,
        max_rounds=max_rounds,
        record_receptions=True,
    )
    engine = BroadcastEngine(network, processes, adversary, config)
    return engine.run()


ALGOS = [
    make_round_robin_processes,
    make_strong_select_processes,
    make_harmonic_processes,
    make_decay_processes,
]


class TestEngineProducesValidExecutions:
    @pytest.mark.parametrize("factory", ALGOS)
    @pytest.mark.parametrize("rule", list(CollisionRule))
    def test_random_duals(self, factory, rule):
        g = gnp_dual(14, seed=3)
        trace = run_recorded(
            g, factory(14), GreedyInterferer(), rule=rule
        )
        assert validate_execution(trace, g, rule,
                                  StartMode.ASYNCHRONOUS) == []

    @pytest.mark.parametrize("start", list(StartMode))
    def test_start_modes(self, start):
        g = gnp_dual(12, seed=5)
        trace = run_recorded(
            g, make_round_robin_processes(12),
            RandomDeliveryAdversary(0.5, seed=1), start=start,
        )
        assert validate_execution(
            trace, g, CollisionRule.CR4, start
        ) == []

    def test_full_delivery_adversary(self):
        g = with_complete_unreliable(line(8))
        trace = run_recorded(
            g, make_round_robin_processes(8), FullDeliveryAdversary()
        )
        assert validate_execution(
            trace, g, CollisionRule.CR4, StartMode.ASYNCHRONOUS
        ) == []


class TestValidatorCatchesCorruption:
    def _valid_trace(self):
        g = gnp_dual(10, seed=2)
        trace = run_recorded(
            g, make_round_robin_processes(10), GreedyInterferer()
        )
        return g, trace

    def test_missing_receptions_detected(self):
        g, trace = self._valid_trace()
        rec = trace.rounds[0]
        trace.rounds[0] = RoundRecord(
            rec.round_number, rec.senders, rec.unreliable_deliveries,
            rec.newly_informed, rec.newly_active, receptions=None,
        )
        assert validate_execution(
            trace, g, CollisionRule.CR4, StartMode.ASYNCHRONOUS
        )

    def test_phantom_sender_detected(self):
        g, trace = self._valid_trace()
        rec = trace.rounds[0]
        senders = dict(rec.senders)
        # Round 1 under async start: only the source may transmit.
        phantom = Message("broadcast-message", 9, 1)
        senders[9] = phantom
        receptions = dict(rec.receptions)
        receptions[9] = received(phantom)
        trace.rounds[0] = RoundRecord(
            rec.round_number, senders, rec.unreliable_deliveries,
            rec.newly_informed, rec.newly_active, receptions,
        )
        out = validate_execution(
            trace, g, CollisionRule.CR4, StartMode.ASYNCHRONOUS
        )
        assert any("sleeping node 9 transmitted" in v for v in out)

    def test_wrong_reception_detected(self):
        g, trace = self._valid_trace()
        # Find a round with a lone arrival somewhere and corrupt it.
        rec = trace.rounds[0]
        receptions = dict(rec.receptions)
        target = next(
            v for v in g.nodes
            if receptions[v].is_message and v not in rec.senders
        )
        receptions[target] = COLLISION
        trace.rounds[0] = RoundRecord(
            rec.round_number, rec.senders, rec.unreliable_deliveries,
            rec.newly_informed, rec.newly_active, receptions,
        )
        out = validate_execution(
            trace, g, CollisionRule.CR4, StartMode.ASYNCHRONOUS
        )
        assert out

    def test_illegal_delivery_detected(self):
        g, trace = self._valid_trace()
        rec = trace.rounds[0]
        sender = next(iter(rec.senders))
        deliveries = dict(rec.unreliable_deliveries)
        # Target a node on a reliable edge: illegal for the adversary.
        reliable_target = next(iter(g.reliable_out(sender)))
        deliveries[sender] = frozenset([reliable_target])
        trace.rounds[0] = RoundRecord(
            rec.round_number, rec.senders, deliveries,
            rec.newly_informed, rec.newly_active, rec.receptions,
        )
        out = validate_execution(
            trace, g, CollisionRule.CR4, StartMode.ASYNCHRONOUS
        )
        assert any("illegal unreliable targets" in v for v in out)

    def test_false_completion_detected(self):
        from repro.sim.trace import ExecutionTrace

        g = gnp_dual(6, seed=0)
        trace = ExecutionTrace(
            network_name=g.name,
            n=g.n,
            proc={v: v for v in g.nodes},
            informed_round={v: (0 if v == 0 else None) for v in g.nodes},
            completed=True,
        )
        out = validate_execution(
            trace, g, CollisionRule.CR4, StartMode.ASYNCHRONOUS
        )
        assert any("claims completion" in v for v in out)

    def test_size_mismatch_detected(self):
        g, trace = self._valid_trace()
        other = gnp_dual(12, seed=1)
        assert validate_execution(
            trace, other, CollisionRule.CR4, StartMode.ASYNCHRONOUS
        )
