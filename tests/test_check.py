"""Tests for ``repro.check`` — the AST invariant checker.

Fixture corpus: ``tests/fixtures/check`` holds one failing and one
passing snippet per rule (plus suppression and parse-error cases).
Fixtures live outside any ``repro`` package, so every rule applies to
them regardless of its scope.
"""

import json
import pathlib

import pytest

from repro.check import (
    Baseline,
    ContractRule,
    Finding,
    check_file,
    check_paths,
    check_source,
    register_rule,
    rule_catalogue,
    rule_codes,
    scope_of,
)
from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "check"
SRC_REPRO = pathlib.Path(__file__).parent.parent / "src" / "repro"


def codes(findings):
    return sorted(f.code for f in findings)


class TestRulePack:
    @pytest.mark.parametrize(
        "code, count",
        [
            ("RPR001", 3),
            ("RPR002", 2),
            ("RPR003", 3),
            ("RPR004", 2),
            ("RPR005", 3),
            ("RPR006", 1),
            ("RPR007", 2),
            ("RPR008", 3),
        ],
    )
    def test_fail_fixture_flags_only_its_rule(self, code, count):
        findings, suppressed = check_file(
            FIXTURES / f"{code.lower()}_fail.py"
        )
        assert codes(findings) == [code] * count
        assert suppressed == 0

    @pytest.mark.parametrize(
        "code",
        ["RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
         "RPR007", "RPR008"],
    )
    def test_pass_fixture_is_clean(self, code):
        findings, _ = check_file(FIXTURES / f"{code.lower()}_pass.py")
        assert findings == []

    def test_parse_error_reported_as_rpr900(self):
        findings, _ = check_file(FIXTURES / "rpr900_parse_error.py")
        assert codes(findings) == ["RPR900"]

    def test_findings_carry_locations(self):
        findings, _ = check_file(FIXTURES / "rpr006_fail.py")
        (finding,) = findings
        assert finding.line == 12
        assert finding.path.endswith("rpr006_fail.py")
        assert "object.__setattr__" in finding.message

    def test_alias_resolution_flags_renamed_import(self):
        source = (
            "import random as rnd\n"
            "def f():\n"
            "    return rnd.random()\n"
        )
        findings, _ = check_source(source, "x.py", scope=None)
        assert codes(findings) == ["RPR001"]

    def test_from_import_resolves_to_banned_call(self):
        source = (
            "from os import urandom as entropy\n"
            "def f():\n"
            "    return entropy(8)\n"
        )
        findings, _ = check_source(source, "x.py", scope=None)
        assert codes(findings) == ["RPR003"]


class TestScoping:
    def test_scope_of(self):
        assert scope_of(pathlib.Path("src/repro/sim/engine.py")) == "sim"
        assert scope_of(pathlib.Path("src/repro/cli.py")) == "cli"
        assert scope_of(pathlib.Path("tests/fixtures/x.py")) is None

    def test_scoped_rule_silent_outside_its_packages(self, tmp_path):
        # RPR005 is scoped to sim/core/search: the same float
        # comparison is flagged under repro/sim but not repro/analysis.
        for pkg in ("sim", "analysis"):
            target = tmp_path / "repro" / pkg
            target.mkdir(parents=True)
            (target / "mod.py").write_text(
                "def f(p):\n    return p == 0.5\n"
            )
        flagged, _ = check_file(tmp_path / "repro" / "sim" / "mod.py")
        silent, _ = check_file(
            tmp_path / "repro" / "analysis" / "mod.py"
        )
        assert codes(flagged) == ["RPR005"]
        assert silent == []

    def test_rpr007_only_holds_fault_modules(self, tmp_path):
        # A literal-seeded stream is legal in other sim modules (RPR001
        # ignores seeded Random construction); only faults.py is held
        # to run-derived fault seeds.
        for name in ("faults.py", "engine.py"):
            target = tmp_path / "repro" / "sim"
            target.mkdir(parents=True, exist_ok=True)
            (target / name).write_text(
                "import random\n"
                "def f():\n"
                "    return random.Random(7).random()\n"
            )
        flagged, _ = check_file(tmp_path / "repro" / "sim" / "faults.py")
        silent, _ = check_file(tmp_path / "repro" / "sim" / "engine.py")
        assert codes(flagged) == ["RPR007"]
        assert silent == []

    def test_rpr008_exempts_the_obs_scope(self, tmp_path):
        # Wall-clock timers are legal inside repro.obs (the layer the
        # rule confines them to) and flagged everywhere else.
        for pkg in ("obs", "experiments"):
            target = tmp_path / "repro" / pkg
            target.mkdir(parents=True)
            (target / "mod.py").write_text(
                "import time\n"
                "def f():\n"
                "    return time.perf_counter()\n"
            )
        silent, _ = check_file(tmp_path / "repro" / "obs" / "mod.py")
        flagged, _ = check_file(
            tmp_path / "repro" / "experiments" / "mod.py"
        )
        assert silent == []
        assert codes(flagged) == ["RPR008"]

    def test_unscoped_rule_applies_everywhere(self, tmp_path):
        target = tmp_path / "repro" / "analysis"
        target.mkdir(parents=True)
        (target / "mod.py").write_text("import numpy\n")
        findings, _ = check_file(target / "mod.py")
        assert codes(findings) == ["RPR002"]


class TestSuppressions:
    def test_justified_suppression_silences(self):
        findings, suppressed = check_file(
            FIXTURES / "suppression_ok.py"
        )
        assert findings == []
        assert suppressed == 1

    def test_bare_suppression_is_inert_and_reported(self):
        findings, suppressed = check_file(
            FIXTURES / "suppression_bad.py"
        )
        assert codes(findings) == ["RPR000", "RPR005"]
        assert suppressed == 0

    def test_unknown_code_suppression_is_inert(self):
        source = (
            "def f(p):\n"
            "    return p == 0.5  # repro: noqa(RPR777): not a rule\n"
        )
        findings, suppressed = check_source(source, "x.py", scope=None)
        assert codes(findings) == ["RPR000", "RPR005"]
        assert suppressed == 0

    def test_multi_code_suppression(self):
        source = (
            "import random\n"
            "def f(p):\n"
            "    return random.random() == 0.5  "
            "# repro: noqa(RPR001, RPR005): fixture exercising both\n"
        )
        findings, suppressed = check_source(source, "x.py", scope=None)
        assert findings == []
        assert suppressed == 2

    def test_marker_inside_string_is_not_a_suppression(self):
        source = (
            "def f(p):\n"
            '    return (p == 0.5, "# repro: noqa(RPR005): nope")\n'
        )
        findings, suppressed = check_source(source, "x.py", scope=None)
        assert codes(findings) == ["RPR005"]
        assert suppressed == 0


class TestBaseline:
    def test_round_trip_absorbs_grandfathered(self, tmp_path):
        findings, _ = check_file(FIXTURES / "rpr001_fail.py")
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        report = check_paths(
            [FIXTURES / "rpr001_fail.py"],
            baseline=Baseline.load(path),
        )
        assert report.clean
        assert report.grandfathered == len(findings)

    def test_counts_cap_absorption(self):
        twin = Finding(
            path="x.py", line=1, col=1, code="RPR005", message="m"
        )
        other = Finding(
            path="x.py", line=9, col=1, code="RPR005", message="m"
        )
        baseline = Baseline.from_findings([twin])
        kept, absorbed = baseline.filter([twin, other])
        assert absorbed == 1
        assert len(kept) == 1

    def test_new_findings_survive_baseline(self, tmp_path):
        baseline = Baseline.from_findings([])
        report = check_paths(
            [FIXTURES / "rpr002_fail.py"], baseline=baseline
        )
        assert not report.clean

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{\"version\": 99}")
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestSelfCheck:
    def test_src_repro_is_clean_with_empty_baseline(self):
        # The acceptance contract: the shipped tree carries zero
        # findings and no grandfathered debt.
        report = check_paths([SRC_REPRO], baseline=Baseline())
        assert report.findings == ()
        assert report.grandfathered == 0
        assert report.files_checked >= 75

    def test_check_paths_is_deterministic(self):
        first = check_paths([FIXTURES])
        second = check_paths([FIXTURES])
        assert first == second
        assert list(first.findings) == sorted(first.findings)


class TestRegistry:
    def test_rule_codes_cover_the_pack(self):
        assert list(rule_codes()) == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
            "RPR007", "RPR008",
        ]

    def test_catalogue_documents_every_code(self):
        catalogue = rule_catalogue()
        for code in (*rule_codes(), "RPR000", "RPR900"):
            assert catalogue[code]["contract"]

    def test_duplicate_code_rejected(self):
        class Dup(ContractRule):
            code = "RPR001"

        with pytest.raises(ValueError):
            register_rule(Dup)


class TestCli:
    def test_clean_path_exits_zero(self, capsys):
        rc = main(["check", str(FIXTURES / "rpr001_pass.py")])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        rc = main(["check", str(FIXTURES / "rpr003_fail.py")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPR003" in out

    def test_json_schema(self, capsys):
        rc = main(
            ["check", str(FIXTURES / "rpr004_fail.py"), "--json"]
        )
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["clean"] is False
        assert doc["files_checked"] == 1
        assert doc["counts"] == {"RPR004": 2}
        for finding in doc["findings"]:
            assert set(finding) == {
                "path", "line", "col", "code", "message",
            }

    def test_write_then_read_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = main(
            [
                "check", str(FIXTURES / "rpr005_fail.py"),
                "--write-baseline", str(baseline),
            ]
        )
        assert rc == 0
        rc = main(
            [
                "check", str(FIXTURES / "rpr005_fail.py"),
                "--baseline", str(baseline),
            ]
        )
        assert rc == 0
        assert "grandfathered" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        rc = main(["check", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for code in rule_codes():
            assert code in out

    def test_missing_path_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["check", "no/such/dir"])

    def test_bad_baseline_is_an_error(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text("not json")
        with pytest.raises(SystemExit):
            main(
                [
                    "check", str(FIXTURES / "rpr001_pass.py"),
                    "--baseline", str(bad),
                ]
            )

    def test_default_target_is_src_repro(self, capsys, monkeypatch):
        monkeypatch.chdir(SRC_REPRO.parent.parent)
        rc = main(["check"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out
