"""Unit tests for the DualGraph structure and its invariants."""

import pytest

from repro.graphs.dualgraph import DualGraph, DualGraphError


class TestConstruction:
    def test_reliable_subset_enforced(self):
        with pytest.raises(DualGraphError, match="subset"):
            DualGraph(3, [(0, 1), (1, 2)], [(0, 1)])

    def test_reachability_enforced(self):
        with pytest.raises(DualGraphError, match="unreachable"):
            DualGraph(3, [(0, 1)])  # node 2 unreachable

    def test_self_loops_rejected(self):
        with pytest.raises(DualGraphError, match="self-loop"):
            DualGraph(2, [(0, 0), (0, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(DualGraphError, match="out of range"):
            DualGraph(2, [(0, 5)])

    def test_source_out_of_range(self):
        with pytest.raises(DualGraphError, match="source"):
            DualGraph(2, [(0, 1)], source=4)

    def test_empty_graph_rejected(self):
        with pytest.raises(DualGraphError):
            DualGraph(0, [])

    def test_singleton_graph_ok(self):
        g = DualGraph(1, [])
        assert g.n == 1
        assert g.source_eccentricity == 0

    def test_default_all_edges_is_reliable(self):
        g = DualGraph(3, [(0, 1), (1, 2)])
        assert g.is_classical

    def test_undirected_flag_symmetrises(self):
        g = DualGraph(3, [(0, 1), (1, 2)], undirected=True)
        assert (1, 0) in g.reliable_edges()
        assert g.is_undirected

    def test_directed_is_not_undirected(self):
        g = DualGraph(3, [(0, 1), (1, 2)])
        assert not g.is_undirected


class TestNeighbourhoods:
    def test_reliable_and_unreliable_split(self):
        g = DualGraph(3, [(0, 1), (1, 2)], [(0, 1), (1, 2), (0, 2)])
        assert g.reliable_out(0) == {1}
        assert g.unreliable_only_out(0) == {2}
        assert g.all_out(0) == {1, 2}

    def test_in_neighbourhoods(self):
        g = DualGraph(3, [(0, 1), (1, 2)], [(0, 1), (1, 2), (0, 2)])
        assert g.reliable_in(2) == {1}
        assert g.all_in(2) == {0, 1}

    def test_edge_sets_roundtrip(self):
        edges = {(0, 1), (1, 2), (0, 2)}
        g = DualGraph(3, [(0, 1), (1, 2)], edges)
        assert g.all_edges() == edges
        assert g.reliable_edges() == {(0, 1), (1, 2)}

    def test_max_in_degree(self):
        g = DualGraph(4, [(0, 1), (0, 2), (0, 3)], name="star-out")
        assert g.max_in_degree() == 1
        g2 = DualGraph(
            3, [(0, 1), (0, 2)], [(0, 1), (0, 2), (1, 2)]
        )
        assert g2.max_in_degree() == 2


class TestMetrics:
    def test_distances_on_path(self):
        g = DualGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert [g.distance_from_source(v) for v in range(4)] == [0, 1, 2, 3]
        assert g.source_eccentricity == 3

    def test_nonzero_source(self):
        g = DualGraph(3, [(1, 0), (1, 2)], source=1)
        assert g.distance_from_source(0) == 1
        assert g.distance_from_source(1) == 0


class TestDerived:
    def test_classical_projection_drops_unreliable(self):
        g = DualGraph(3, [(0, 1), (1, 2)], [(0, 1), (1, 2), (0, 2)])
        proj = g.classical_projection()
        assert proj.is_classical
        assert proj.all_edges() == {(0, 1), (1, 2)}

    def test_classical_union_promotes_unreliable(self):
        g = DualGraph(3, [(0, 1), (1, 2)], [(0, 1), (1, 2), (0, 2)])
        union = g.classical_union()
        assert union.is_classical
        assert union.reliable_edges() == {(0, 1), (1, 2), (0, 2)}

    def test_relabeled_isomorphism(self):
        g = DualGraph(3, [(0, 1), (1, 2)], [(0, 1), (1, 2), (0, 2)])
        mapping = {0: 2, 1: 0, 2: 1}
        h = g.relabeled(mapping)
        assert h.source == 2
        assert (2, 0) in h.reliable_edges()
        assert h.unreliable_only_out(2) == {1}

    def test_relabeled_requires_bijection(self):
        g = DualGraph(2, [(0, 1)])
        with pytest.raises(DualGraphError):
            g.relabeled({0: 0, 1: 0})
