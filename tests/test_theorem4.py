"""Tests for the Monte-Carlo Theorem 4 experiment."""

import pytest

from repro.core import make_decay_processes, make_harmonic_processes
from repro.lowerbounds import theorem4_experiment


class TestExperimentMechanics:
    def test_result_structure(self):
        n = 8
        res = theorem4_experiment(
            lambda trial: make_harmonic_processes(n, T=2),
            n,
            trials=10,
        )
        assert set(res.informed_rounds) == set(range(1, n - 1))
        assert all(len(v) == 10 for v in res.informed_rounds.values())

    def test_probabilities_monotone_in_k(self):
        n = 8
        res = theorem4_experiment(
            lambda trial: make_harmonic_processes(n, T=2),
            n,
            trials=20,
        )
        probs = [res.adversarial_success_probability(k) for k in range(1, n)]
        assert probs == sorted(probs)

    def test_envelope_values(self):
        n = 10
        res = theorem4_experiment(
            lambda trial: make_harmonic_processes(n, T=2), n, trials=5
        )
        assert res.envelope(4) == pytest.approx(4 / 8)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            theorem4_experiment(
                lambda trial: make_harmonic_processes(3, T=2), 3
            )


class TestTheoremBound:
    @pytest.mark.parametrize(
        "factory_name,factory",
        [
            ("harmonic", lambda n: lambda t: make_harmonic_processes(n, T=2)),
            ("decay", lambda n: lambda t: make_decay_processes(n)),
        ],
    )
    def test_success_probability_below_envelope(self, factory_name, factory):
        # Theorem 4: within k rounds, success probability against the
        # worst bridge placement is at most k/(n-2).  Monte-Carlo noise
        # gets a modest slack allowance.
        n = 10
        res = theorem4_experiment(factory(n), n, trials=40)
        ks = list(range(1, n - 2))
        assert res.violations(ks, slack=0.25) == []

    def test_harmonic_beats_k_rounds_eventually(self):
        # Sanity check the experiment is not vacuous: for k near the cap,
        # some executions do inform the receiver.
        n = 8
        res = theorem4_experiment(
            lambda t: make_harmonic_processes(n, T=2), n, trials=40,
            max_rounds=20 * n,
        )
        assert res.adversarial_success_probability(20 * n) > 0
