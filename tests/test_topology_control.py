"""Tests for the topology-control extension."""

import pytest

from repro import broadcast
from repro.adversaries import GreedyInterferer
from repro.extensions.topology_control import (
    bfs_backbone,
    contention_profile,
    degree_bounded_backbone,
)
from repro.graphs import gnp_dual, line, star, with_complete_unreliable


class TestBfsBackbone:
    def test_is_spanning_tree(self):
        g = gnp_dual(20, seed=1)
        b = bfs_backbone(g)
        # Undirected tree: 2(n-1) directed edges.
        assert len(b.reliable_edges()) == 2 * (20 - 1)
        assert all(b.distance_from_source(v) >= 0 for v in b.nodes)

    def test_preserves_shortest_distances(self):
        g = gnp_dual(20, seed=2)
        b = bfs_backbone(g)
        for v in g.nodes:
            assert b.distance_from_source(v) == g.distance_from_source(v)

    def test_keeps_adversary_edges(self):
        g = gnp_dual(20, seed=3)
        b = bfs_backbone(g)
        assert g.all_edges() <= b.all_edges()

    def test_broadcast_still_completes_on_backbone(self):
        g = gnp_dual(16, seed=4)
        b = bfs_backbone(g)
        trace = broadcast(b, "strong_select",
                          adversary=GreedyInterferer(), seed=1)
        assert trace.completed


class TestDegreeBoundedBackbone:
    def test_spanning_and_degree_capped_on_sparse_graphs(self):
        g = gnp_dual(20, p_reliable=0.3, seed=5)
        b = degree_bounded_backbone(g, max_degree=4)
        assert len(b.reliable_edges()) == 2 * (20 - 1)
        profile = contention_profile(b)
        # Greedy respects the cap when the graph allows it; a slack of
        # +1 covers forced adoptions at cut nodes.
        assert profile.max_reliable_degree <= 5

    def test_star_cannot_be_degree_bounded(self):
        # The hub must adopt everyone; the backbone degrades gracefully.
        g = star(8)
        b = degree_bounded_backbone(g, max_degree=2)
        assert len(b.reliable_edges()) == 2 * (8 - 1)
        assert contention_profile(b).max_reliable_degree == 7

    def test_directed_rejected(self):
        from repro.graphs import directed_layered

        with pytest.raises(ValueError):
            degree_bounded_backbone(directed_layered([1, 2]), 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            degree_bounded_backbone(line(5), 0)


class TestContentionProfile:
    def test_backbone_reduces_self_contention_not_adversarial(self):
        g = with_complete_unreliable(
            gnp_dual(16, p_reliable=0.4, p_unreliable=0.0, seed=6)
        )
        full = contention_profile(g)
        b = contention_profile(bfs_backbone(g))
        # Fewer reliable edges and degree after sparsification...
        assert b.total_reliable_edges < full.total_reliable_edges
        assert b.max_reliable_degree <= full.max_reliable_degree
        # ...but the adversary's interference surface cannot shrink —
        # thinning G grows G'\G (removed edges become unreliable).
        assert b.adversarial_inroads >= full.adversarial_inroads

    def test_profile_fields(self):
        p = contention_profile(line(5))
        assert p.eccentricity == 4
        assert p.max_reliable_degree == 2
        assert p.adversarial_inroads == 0
