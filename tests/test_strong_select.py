"""Unit tests for the Strong Select algorithm (Section 5)."""

import pytest

from repro.adversaries import FullDeliveryAdversary, GreedyInterferer
from repro.core.ssf import kautz_singleton_ssf
from repro.core.strong_select import (
    StrongSelectProcess,
    build_schedule,
    default_s_max,
    make_strong_select_processes,
)
from repro.graphs import gnp_dual, line, with_complete_unreliable
from repro.sim import CollisionRule, StartMode, run_broadcast


class TestDefaultSMax:
    def test_small_n(self):
        assert default_s_max(2) == 1
        assert default_s_max(16) == 1

    def test_growth(self):
        assert default_s_max(1 << 10) >= 3
        assert default_s_max(1 << 14) > default_s_max(1 << 10)


class TestSchedule:
    def test_epoch_structure(self):
        sched = build_schedule(64, s_max=3)
        assert sched.epoch_length == 7
        # Round 1 belongs to F_1, rounds 2-3 to F_2, rounds 4-7 to F_3.
        assert sched.level_of_round(1)[0] == 1
        assert sched.level_of_round(2)[0] == 2
        assert sched.level_of_round(3)[0] == 2
        assert sched.level_of_round(4)[0] == 3
        assert sched.level_of_round(7)[0] == 3
        # Next epoch repeats the pattern.
        assert sched.level_of_round(8)[0] == 1

    def test_positions_advance_per_epoch(self):
        sched = build_schedule(64, s_max=3)
        # F_2 gets two rounds per epoch: positions 0,1 in epoch 1 and
        # 2,3 in epoch 2.
        assert sched.level_of_round(2) == (2, 0)
        assert sched.level_of_round(3) == (2, 1)
        assert sched.level_of_round(9) == (2, 2)
        assert sched.level_of_round(10) == (2, 3)

    def test_positions_before_consistency(self):
        sched = build_schedule(64, s_max=3)
        for s in range(1, 4):
            count = 0
            for r in range(1, 200):
                assert sched.positions_before(s, r - 1) == count
                lvl, pos = sched.level_of_round(r)
                if lvl == s:
                    assert pos == count
                    count += 1

    def test_top_family_is_round_robin(self):
        sched = build_schedule(64, s_max=3)
        fam = sched.family(3)
        assert fam.construction == "round-robin"
        assert len(fam) == 64

    def test_participation_window_waits_for_cycle_start(self):
        sched = build_schedule(64, s_max=3)
        size = sched.family_size(2)
        # A node informed at round 0 starts immediately.
        assert sched.participation_window(2, 0) == (0, size)
        # A node informed later must wait for position size (next cycle).
        mid_round = 20
        elapsed = sched.positions_before(2, mid_round)
        start, end = sched.participation_window(2, mid_round)
        assert start % size == 0
        assert start >= elapsed
        assert end - start == size

    def test_round_bound_is_theorem10_shape(self):
        sched = build_schedule(256)
        bound = sched.round_bound()
        assert bound == pytest.approx(
            12 * sched.f_n() * (1 << sched.s_max) * 256, rel=0.01
        )

    def test_iteration_rounds(self):
        sched = build_schedule(64, s_max=3)
        for s in range(1, 4):
            per_epoch = 1 << (s - 1)
            expected = (
                sched.family_size(s) * sched.epoch_length // per_epoch
            )
            assert sched.iteration_rounds(s) == expected


class TestProcessBehaviour:
    def test_uninformed_process_is_silent(self):
        sched = build_schedule(16)
        p = StrongSelectProcess(3, sched)
        from repro.sim.process import ProcessContext
        import random as _r

        ctx = ProcessContext(1, _r.Random(0), 16)
        assert p.decide_send(ctx) is None

    def test_uid_range_validated(self):
        sched = build_schedule(8)
        with pytest.raises(ValueError):
            StrongSelectProcess(9, sched)

    def test_participate_once_stops_transmitting(self):
        # On a single-node-wide line the source participates once in each
        # family and then falls silent forever.
        n = 8
        procs = make_strong_select_processes(n)
        trace = run_broadcast(line(n), procs, max_rounds=2000)
        assert trace.completed
        # After completion plus a full schedule cycle, confirm the traces
        # show no sender beyond some round (nodes stop).
        last_send = max(
            (rec.round_number for rec in trace.rounds if rec.senders),
            default=0,
        )
        assert last_send <= trace.num_rounds


class TestBroadcastCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_completes_on_random_duals_with_greedy_interferer(self, seed):
        g = gnp_dual(24, seed=seed)
        procs = make_strong_select_processes(24)
        trace = run_broadcast(
            g,
            procs,
            adversary=GreedyInterferer(),
            max_rounds=build_schedule(24).round_bound(),
            collision_rule=CollisionRule.CR4,
            start_mode=StartMode.ASYNCHRONOUS,
        )
        assert trace.completed

    def test_completes_within_theorem10_bound_on_hard_line(self):
        g = with_complete_unreliable(line(16))
        sched = build_schedule(16)
        procs = [StrongSelectProcess(i, sched) for i in range(16)]
        trace = run_broadcast(
            g, procs, adversary=GreedyInterferer(),
            max_rounds=sched.round_bound(),
        )
        assert trace.completed
        assert trace.completion_round <= sched.round_bound()

    def test_completes_under_full_delivery(self):
        g = with_complete_unreliable(line(12))
        procs = make_strong_select_processes(12)
        trace = run_broadcast(
            g, procs, adversary=FullDeliveryAdversary(),
            max_rounds=build_schedule(12).round_bound(),
        )
        assert trace.completed

    def test_kautz_singleton_variant_completes(self):
        g = gnp_dual(20, seed=9)
        procs = make_strong_select_processes(
            20, ssf_builder=kautz_singleton_ssf
        )
        trace = run_broadcast(
            g, procs, adversary=GreedyInterferer(), max_rounds=50_000
        )
        assert trace.completed

    def test_cycle_forever_ablation_completes(self):
        g = gnp_dual(20, seed=10)
        procs = make_strong_select_processes(20, participate_once=False)
        trace = run_broadcast(
            g, procs, adversary=GreedyInterferer(), max_rounds=50_000
        )
        assert trace.completed

    def test_isolation_guarantee_on_clique_like_duals(self):
        # Every informed node is eventually isolated (sends alone) before
        # the algorithm finishes — the crux of Lemma 8/Theorem 10.
        g = with_complete_unreliable(line(10))
        procs = make_strong_select_processes(10)
        trace = run_broadcast(
            g, procs, adversary=GreedyInterferer(),
            max_rounds=build_schedule(10).round_bound(),
        )
        assert trace.completed
        assert len(trace.isolation_rounds()) >= 1
