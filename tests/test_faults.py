"""Fault injection (``repro.sim.faults``) across every layer.

The churn subsystem's contract has four parts, each pinned here:

* **Schedule data** — :class:`ChurnSchedule` validates its event state
  machine at construction and round-trips through JSON; the generators
  (:func:`generate_churn`, :func:`window_churn`) are pure functions of
  their arguments.
* **Engine semantics** — crashed nodes contribute nothing (no sends,
  no receptions, no wake-ups); recovery follows the rejoin policy
  (``uninformed`` revokes payload custody, ``informed`` is stable
  storage); late joiners do not exist until their recovery round.  All
  three engines stay byte-identical, recorded traces replay strictly,
  and the independent validator accepts real traces and flags tampered
  ones.
* **Sweep axis** — ``churns`` is a spec axis with resume-stable keys
  (failure-free entries keep their pre-churn spelling), a registry of
  kinds, and per-record ``churn_kind`` that reports route into a
  separate "under churn" table.
* **Search genes** — genomes compile crash genes into legal schedules
  tolerantly, so blind mutation stays safe.

The spec/runner duplicate-key rejections (duplicate seeds silently
collapsing resume keys) ride along here because the churn axis is what
made the silent-collapse failure mode visible.
"""

import dataclasses
import json
import random

import pytest

from conftest import corpus_graph
from repro.adversaries.scripted import ReplayAdversary
from repro.analysis.report import CampaignReport
from repro.core.runner import broadcast, make_processes
from repro.experiments import (
    ChurnSpec,
    ExperimentSpec,
    RunResult,
    SweepRunner,
    build_churn,
    churn_kinds,
    plan_batches,
    run_sweep,
)
from repro.search.genome import StrategyGenome
from repro.sim import (
    ChurnSchedule,
    CollisionRule,
    EngineConfig,
    StartMode,
    build_engine,
    generate_churn,
    trace_to_json,
    validate_execution,
    window_churn,
)

ENGINES = ("reference", "fast", "vector")


# ----------------------------------------------------------------------
# Schedule data
# ----------------------------------------------------------------------
class TestChurnSchedule:
    def test_trivial_schedule(self):
        sched = ChurnSchedule()
        assert sched.is_trivial
        assert sched.nodes_touched() == ()

    def test_events_are_sorted_and_frozen(self):
        sched = ChurnSchedule(
            crashes={3: (5, 2)}, recoveries={7: (2, 5)}
        )
        assert sched.crashes[3] == (2, 5)
        assert sched.recoveries[7] == (2, 5)
        assert sched.nodes_touched() == (2, 5)

    def test_crash_of_down_node_rejected(self):
        with pytest.raises(ValueError, match="already down"):
            ChurnSchedule(crashes={1: (4,), 2: (4,)})

    def test_recovery_of_up_node_rejected(self):
        with pytest.raises(ValueError, match="not down"):
            ChurnSchedule(recoveries={2: (3,)})

    def test_same_round_crash_and_recovery_rejected(self):
        with pytest.raises(ValueError, match="both crash and recover"):
            ChurnSchedule(
                initial_down=(3,), crashes={2: (3,)},
                recoveries={2: (3,)},
            )

    def test_nonpositive_round_rejected(self):
        with pytest.raises(ValueError, match="positive integer"):
            ChurnSchedule(crashes={0: (1,)})

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError, match="duplicate nodes"):
            ChurnSchedule(crashes={1: (2, 2)})
        with pytest.raises(ValueError, match="initial_down"):
            ChurnSchedule(initial_down=(1, 1))

    def test_unknown_rejoin_rejected(self):
        with pytest.raises(ValueError, match="rejoin"):
            ChurnSchedule(rejoin="psychic")

    def test_validate_for_checks_range_and_source(self):
        g = corpus_graph("line", 4)
        with pytest.raises(ValueError, match="outside"):
            ChurnSchedule(crashes={1: (9,)}).validate_for(g)
        with pytest.raises(ValueError, match="live source"):
            ChurnSchedule(
                initial_down=(g.source,)
            ).validate_for(g)

    def test_json_round_trip(self):
        sched = ChurnSchedule(
            crashes={2: (1, 3)}, recoveries={5: (1,)},
            initial_down=(4,), rejoin="informed",
        )
        doc = json.loads(json.dumps(sched.to_dict()))
        assert ChurnSchedule.from_dict(doc) == sched


class TestGenerators:
    def test_generate_churn_is_deterministic(self):
        kw = dict(n=10, rounds=30, crash_rate=0.1, recover_rate=0.3)
        assert generate_churn(seed=7, **kw) == generate_churn(
            seed=7, **kw
        )
        assert generate_churn(seed=7, **kw) != generate_churn(
            seed=8, **kw
        )

    def test_generate_churn_respects_protection(self):
        sched = generate_churn(
            n=6, rounds=50, crash_rate=0.5, recover_rate=0.1,
            seed=3, protect=(0, 2),
        )
        assert 0 not in sched.nodes_touched()
        assert 2 not in sched.nodes_touched()

    def test_generate_churn_rejects_bad_rates(self):
        with pytest.raises(ValueError, match="rates"):
            generate_churn(
                n=4, rounds=5, crash_rate=1.5, recover_rate=0.1, seed=0
            )

    def test_window_churn_shape(self):
        sched = window_churn(n=8, count=3, start=4, length=5)
        assert sched.crashes == {4: (5, 6, 7)}
        assert sched.recoveries == {9: (5, 6, 7)}

    def test_window_churn_rejects_bad_window(self):
        with pytest.raises(ValueError):
            window_churn(n=8, count=1, start=0, length=5)


# ----------------------------------------------------------------------
# Engine semantics
# ----------------------------------------------------------------------
def run_with_churn(churn, engine="reference", n=6, algorithm="uniform",
                   rule=CollisionRule.CR2, start=StartMode.SYNCHRONOUS,
                   max_rounds=40, seed=1, record=True,
                   graph_kind="hard-line"):
    graph = corpus_graph(graph_kind, n)
    config = EngineConfig(
        collision_rule=rule, start_mode=start, max_rounds=max_rounds,
        seed=seed, record_receptions=record, engine=engine, churn=churn,
    )
    trace = build_engine(
        graph, make_processes(algorithm, graph.n), None, config
    ).run()
    return graph, config, trace


class TestEngineSemantics:
    def test_crashed_node_never_transmits(self):
        churn = ChurnSchedule(crashes={2: (3,)})
        _, _, trace = run_with_churn(churn)
        for record in trace.rounds:
            if record.round_number >= 2:
                assert 3 not in record.senders

    def test_crash_events_land_in_the_trace(self):
        churn = ChurnSchedule(crashes={2: (3,)}, recoveries={6: (3,)})
        _, _, trace = run_with_churn(churn)
        by_round = {r.round_number: r for r in trace.rounds}
        assert by_round[2].crashed == (3,)
        assert by_round[6].recovered == (3,)

    def test_uninformed_rejoin_revokes_custody(self):
        # Crash node 1 after the line-source informs it: its
        # informed_round entry must be re-earned post-recovery.
        churn = ChurnSchedule(crashes={3: (1,)}, recoveries={5: (1,)})
        _, _, trace = run_with_churn(churn, algorithm="round_robin")
        assert trace.informed_round[1] is not None
        assert trace.informed_round[1] >= 5

    def test_informed_rejoin_keeps_custody(self):
        churn = ChurnSchedule(
            crashes={3: (1,)}, recoveries={5: (1,)}, rejoin="informed"
        )
        _, _, trace = run_with_churn(churn, algorithm="round_robin")
        assert trace.informed_round[1] is not None
        assert trace.informed_round[1] < 3

    def test_late_joiner_does_not_exist_until_recovery(self):
        churn = ChurnSchedule(initial_down=(2,), recoveries={4: (2,)})
        _, _, trace = run_with_churn(churn)
        for record in trace.rounds:
            if record.round_number < 4:
                assert 2 not in record.senders
                assert 2 not in record.newly_informed

    def test_crashed_node_cannot_be_woken_async(self):
        churn = ChurnSchedule(crashes={1: (1,)}, recoveries={8: (1,)})
        _, _, trace = run_with_churn(
            churn, start=StartMode.ASYNCHRONOUS,
            algorithm="round_robin",
        )
        for record in trace.rounds:
            if record.round_number < 8:
                assert 1 not in record.newly_active

    def test_permanent_crash_prevents_completion(self):
        churn = ChurnSchedule(crashes={1: (5,)})
        _, _, trace = run_with_churn(churn, algorithm="round_robin")
        assert not trace.completed
        assert trace.informed_round.get(5) is None

    @pytest.mark.parametrize("rejoin", ["uninformed", "informed"])
    @pytest.mark.parametrize(
        "rule", [CollisionRule.CR2, CollisionRule.CR4]
    )
    @pytest.mark.parametrize(
        "start", [StartMode.SYNCHRONOUS, StartMode.ASYNCHRONOUS]
    )
    def test_three_engines_stay_byte_identical(
        self, rejoin, rule, start
    ):
        churn = ChurnSchedule(
            crashes={2: (2, 4), 7: (1,)},
            recoveries={5: (2,), 9: (1, 4)},
            rejoin=rejoin,
        )
        serialized = {}
        for engine in ENGINES:
            _, _, trace = run_with_churn(
                churn, engine=engine, rule=rule, start=start,
                algorithm="harmonic",
            )
            serialized[engine] = trace_to_json(trace)
        assert serialized["fast"] == serialized["reference"]
        assert serialized["vector"] == serialized["reference"]

    def test_validator_accepts_real_churn_trace(self):
        churn = ChurnSchedule(
            crashes={2: (2,)}, recoveries={5: (2,)},
            initial_down=(4,),
        )
        graph, config, trace = run_with_churn(churn)
        assert validate_execution(
            trace, graph, config.collision_rule, config.start_mode,
            churn=churn,
        ) == []

    def test_validator_flags_trace_without_schedule(self):
        churn = ChurnSchedule(crashes={2: (2,)})
        graph, config, trace = run_with_churn(churn)
        issues = validate_execution(
            trace, graph, config.collision_rule, config.start_mode
        )
        assert issues
        assert "no schedule" in issues[0]

    def test_validator_flags_post_crash_transmission(self):
        from repro.sim.messages import Message

        churn = ChurnSchedule(crashes={2: (3,)})
        graph, config, trace = run_with_churn(churn)
        tampered = next(
            r for r in trace.rounds if r.round_number == 3
        )
        forged = dataclasses.replace(
            tampered,
            senders={
                **tampered.senders,
                3: Message("broadcast-message", 3, 3),
            },
        )
        trace.rounds[trace.rounds.index(tampered)] = forged
        issues = validate_execution(
            trace, graph, config.collision_rule, config.start_mode,
            churn=churn,
        )
        assert any("crashed node 3" in issue for issue in issues)

    def test_recorded_churn_trace_replays_strictly(self):
        churn = ChurnSchedule(
            crashes={2: (2, 4)}, recoveries={5: (2,)},
        )
        graph, config, trace = run_with_churn(
            churn, algorithm="round_robin"
        )
        replay = build_engine(
            graph,
            make_processes("round_robin", graph.n),
            ReplayAdversary(trace, strict=True),
            config,
        ).run()
        assert trace_to_json(replay) == trace_to_json(trace)

    def test_broadcast_accepts_churn_kwarg(self):
        churn = window_churn(n=6, count=1, start=2, length=3)
        trace = broadcast(
            corpus_graph("line", 6), "round_robin",
            max_rounds=30, churn=churn,
        )
        assert any(r.crashed for r in trace.rounds)

    def test_failure_free_trace_json_has_no_churn_keys(self):
        # Backward compatibility: churn keys appear only when events
        # fired, so pre-churn artifacts stay byte-valid.
        trace = broadcast(
            corpus_graph("line", 4), "round_robin", max_rounds=20
        )
        doc = json.loads(trace_to_json(trace))
        for record in doc["rounds"]:
            assert "crashed" not in record
            assert "recovered" not in record
        assert "crash_events" not in trace.summary()


# ----------------------------------------------------------------------
# Sweep axis
# ----------------------------------------------------------------------
def spec_with(churns, seeds=(0, 1), **overrides):
    base = dict(
        name="faulty",
        algorithms=["round_robin"],
        graphs=[("line", 6)],
        adversaries=["none"],
        collision_rules=["CR2"],
        seeds=seeds,
    )
    if churns is not None:  # None = the spec's own default axis
        base["churns"] = churns
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSweepAxis:
    def test_registry_has_the_builtin_kinds(self):
        assert set(churn_kinds()) >= {"none", "rate", "window"}
        assert build_churn("none", n=8, rounds=10) is None
        sched = build_churn(
            "window", n=8, rounds=10, count=2, start=3, length=4
        )
        assert sched.crashes == {3: (6, 7)}

    def test_churn_axis_multiplies_size(self):
        spec = spec_with(["none", ("rate", {"crash_rate": 0.1})])
        assert spec.size == 4
        kinds = {t.churn_kind for t in spec.tasks()}
        assert kinds == {"none", "rate"}

    def test_none_entries_keep_pre_churn_keys(self):
        with_axis = spec_with(["none"])
        without_axis = spec_with(None)
        assert [t.key for t in with_axis.tasks()] == [
            t.key for t in without_axis.tasks()
        ]
        assert "churn" not in with_axis.tasks()[0].key

    def test_churn_entries_key_their_params(self):
        spec = spec_with([
            ("window", {"count": 1, "start": 2, "length": 2}),
            ("window", {"count": 2, "start": 2, "length": 2}),
        ])
        keys = [t.key for t in spec.tasks()]
        assert len(set(keys)) == len(keys)
        assert all("churn-window" in k for k in keys)

    def test_spec_round_trips_churns(self):
        spec = spec_with(["none", ("rate", {"crash_rate": 0.05})])
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.churns == spec.churns

    def test_spec_coercion_forms(self):
        spec = spec_with([
            "none",
            ("rate", {"crash_rate": 0.1}),
            {"kind": "window",
             "params": {"count": 1, "start": 2, "length": 3}},
            ChurnSpec("rate", (("crash_rate", 0.2),)),
        ])
        assert [c.kind for c in spec.churns] == [
            "none", "rate", "window", "rate"
        ]

    def test_sweep_is_engine_invariant_under_churn(self, tmp_path):
        kind_params = ("rate", {"crash_rate": 0.15,
                                "recover_rate": 0.4})
        by_engine = {}
        for engine in ENGINES:
            result = run_sweep(
                spec_with(["none", kind_params], engines=[engine])
            )
            by_engine[engine] = [
                (r.key.replace(f"/eng-{engine}", ""),
                 r.completion_round, r.total_transmissions,
                 r.churn_kind)
                for r in result.records
            ]
        assert by_engine["fast"] == by_engine["reference"]
        assert by_engine["vector"] == by_engine["reference"]

    def test_churn_records_resume_by_key(self, tmp_path):
        spec = spec_with(
            [("window", {"count": 1, "start": 2, "length": 2})]
        )
        results = str(tmp_path / "r.jsonl")
        first = run_sweep(spec, results_path=results)
        second = run_sweep(spec, results_path=results)
        assert first.executed == 2
        assert second.executed == 0
        assert second.resumed == 2
        assert second.records == first.records

    def test_run_result_round_trips_churn_kind(self):
        spec = spec_with([("rate", {"crash_rate": 0.1})])
        record = run_sweep(spec).records[0]
        assert record.churn_kind == "rate"
        assert RunResult.from_dict(record.to_dict()) == record

    def test_legacy_record_docs_default_to_none(self):
        spec = spec_with(None)
        doc = run_sweep(spec).records[0].to_dict()
        doc.pop("churn_kind")
        assert RunResult.from_dict(doc).churn_kind == "none"


class TestDuplicateRejection:
    """Satellites: silent resume-key collapse is now a loud error."""

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="duplicate seeds"):
            spec_with(None, seeds=(0, 1, 0))

    def test_duplicate_graphs_rejected(self):
        with pytest.raises(ValueError, match="duplicate graphs"):
            spec_with(None, graphs=[("line", 6), ("line", 6)])

    def test_duplicate_churns_rejected(self):
        entry = ("rate", {"crash_rate": 0.1})
        with pytest.raises(ValueError, match="duplicate churns"):
            spec_with([entry, entry])

    def test_error_names_the_axis_and_entries(self):
        with pytest.raises(ValueError, match=r"seeds.*\['3'\]"):
            spec_with(None, seeds=(3, 3))

    def test_from_dict_rejects_duplicates_too(self):
        doc = spec_with(None).to_dict()
        doc["seeds"] = [0, 0]
        with pytest.raises(ValueError, match="duplicate seeds"):
            ExperimentSpec.from_dict(doc)

    def test_sharded_store_never_sees_duplicate_spec(self, tmp_path):
        # The rejection fires at spec construction — before a sharded
        # campaign directory (whose manifest would have frozen the
        # collapsed fingerprint) is even created.
        camp = tmp_path / "camp"
        with pytest.raises(ValueError, match="duplicate seeds"):
            run_sweep(
                spec_with(None, seeds=(0, 0)),
                results_path=str(camp),
                store="sharded",
            )
        assert not camp.exists()

    def test_plan_batches_rejects_colliding_tasks(self):
        task = spec_with(None, seeds=(0,)).tasks()[0]
        with pytest.raises(ValueError, match="duplicate task key"):
            plan_batches([task, task])

    def test_fingerprint_rejects_colliding_tasks(self):
        spec = spec_with(None, seeds=(0,))
        runner = SweepRunner(spec)
        task = spec.tasks()[0]
        with pytest.raises(ValueError, match="non-unique task keys"):
            runner.fingerprint([task, task])

    def test_fingerprint_is_stable_for_unique_tasks(self):
        spec = spec_with(["none", ("rate", {"crash_rate": 0.1})])
        assert SweepRunner(spec).fingerprint() == SweepRunner(
            spec
        ).fingerprint()


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
class TestChurnReport:
    def result_set(self):
        spec = spec_with(
            ["none", ("window", {"count": 1, "start": 2, "length": 2})]
        )
        return run_sweep(spec)

    def test_churn_records_leave_main_cells(self):
        report = CampaignReport()
        for record in self.result_set().records:
            report.add(record)
        assert len(report.cells) == 1
        assert len(report.churn_cells) == 1
        (key,) = report.churn_cells
        assert key[-1] == "window"

    def test_render_appends_churn_table(self):
        report = CampaignReport()
        for record in self.result_set().records:
            report.add(record)
        rendered = report.render(title="t")
        assert "under churn" in rendered
        assert "paper bounds do not apply" in rendered

    def test_failure_free_report_has_no_churn_section(self):
        report = CampaignReport()
        for record in run_sweep(spec_with(None)).records:
            report.add(record)
        assert report.churn_cells == {}
        assert "under churn" not in report.render(title="t")
        assert "churn_cells" not in report.to_dict()


# ----------------------------------------------------------------------
# Search genes
# ----------------------------------------------------------------------
class TestChurnGenes:
    def test_gene_free_genome_compiles_to_none(self):
        genome = StrategyGenome(horizon=10)
        assert genome.churn_schedule(8) is None

    def test_genes_compile_to_legal_schedule(self):
        genome = StrategyGenome(
            horizon=10, churn=((3, 2, 4), (5, 1, 2))
        )
        sched = genome.churn_schedule(8)
        assert sched.crashes == {1: (5,), 2: (3,)}
        assert sched.recoveries == {3: (5,), 6: (3,)}
        assert sched.rejoin == "uninformed"

    def test_protected_and_out_of_range_genes_dropped(self):
        genome = StrategyGenome(
            horizon=10, churn=((0, 2, 3), (99, 2, 3), (4, 0, 3))
        )
        assert genome.churn_schedule(8, protect=(0,)) is None

    def test_conflicting_genes_dropped_not_rejected(self):
        # Second gene crashes node 2 while the first still has it down.
        genome = StrategyGenome(
            horizon=10, churn=((2, 2, 5), (2, 4, 1))
        )
        sched = genome.churn_schedule(8)
        assert sched.crashes == {2: (2,)}
        assert sched.recoveries == {7: (2,)}

    def test_serialisation_omits_empty_churn(self):
        bare = StrategyGenome(horizon=5)
        assert "churn" not in bare.to_dict()
        geney = StrategyGenome(horizon=5, churn=((1, 2, 3),))
        clone = StrategyGenome.from_dict(geney.to_dict())
        assert clone == geney

    def test_mutations_preserve_churn_genes(self):
        from repro.search.genome import GenomeSpace

        space = GenomeSpace(
            corpus_graph("clique-bridge", 9), horizon=12,
            cr4_genes=True, churn_genes=True,
        )
        rng = random.Random(11)
        genome = space.random(rng)
        while not genome.churn:
            genome = space.mutate(genome, rng)
        seen_with_churn = 0
        for _ in range(40):
            genome = space.mutate(genome, rng)
            seen_with_churn += bool(genome.churn)
        # Churn genes survive delivery/proc/cr4 mutations; only the
        # churn op itself may pop the last gene.
        assert seen_with_churn > 0


class TestChurnSearchCell:
    def settings(self, **kw):
        from repro.search import SearchSettings

        return SearchSettings(
            algorithm="round_robin", graph_kind="clique-bridge", n=9,
            collision_rule="CR2", **kw,
        )

    def test_churn_genes_extend_the_cell_key(self):
        plain = self.settings()
        churny = self.settings(churn_genes=True)
        assert churny.key == plain.key + "/churn"
        assert "churn" not in plain.key

    def test_sandbox_and_lockstep_agree_on_churn_genomes(self):
        pytest.importorskip("numpy")
        from repro.search.evaluate import EvaluationContext
        from repro.search.harness import make_space

        settings = self.settings(churn_genes=True)
        ctx = EvaluationContext(settings)
        space = make_space(settings)
        assert space.churn_genes
        rng = random.Random(5)
        genomes = [space.random(rng) for _ in range(6)]
        sandbox = [ctx.evaluate(g) for g in genomes]
        lockstep = ctx.evaluate_lockstep(genomes)
        assert [s.objective for s in sandbox] == [
            s.objective for s in lockstep
        ]

    def test_churn_genome_replay_certifies(self):
        from repro.search.evaluate import (
            EvaluationContext,
            verify_replay,
        )
        from repro.search.harness import make_space

        settings = self.settings(churn_genes=True)
        ctx = EvaluationContext(settings)
        space = make_space(settings)
        rng = random.Random(9)
        genome = space.random(rng)
        while not genome.churn:
            genome = space.mutate(genome, rng)
        assert ctx._churn_for(genome) is not None
        assert verify_replay(settings, genome, context=ctx)
