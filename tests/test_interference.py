"""Tests for the explicit-interference model and the Lemma-1 reduction."""

import pytest

from repro.core import (
    make_decay_processes,
    make_harmonic_processes,
    make_round_robin_processes,
    make_strong_select_processes,
)
from repro.graphs import gnp_dual, line, with_complete_unreliable
from repro.interference import (
    InterferenceEngine,
    InterferenceNetwork,
    run_equivalence_check,
)
from repro.sim import CollisionRule
from repro.sim.process import ScriptedProcess


def scripted(n):
    return [ScriptedProcess(uid=i, send_rounds=range(1, 500)) for i in range(n)]


class TestInterferenceSemantics:
    def test_transmission_edges_convey(self):
        net = InterferenceNetwork(line(3))
        eng = InterferenceEngine(net, scripted(3), max_rounds=10)
        trace = eng.run()
        assert trace.completed

    def test_interference_only_edges_never_convey(self):
        # G_T is a line 0-1-2-3; G_I additionally joins 0 and 3.  Node 3
        # must never receive directly from node 0.
        g = line(4, extra_edges=[(0, 3)])
        net = InterferenceNetwork(g)
        procs = [
            ScriptedProcess(0, range(1, 100)),
            ScriptedProcess(1, []),
            ScriptedProcess(2, []),
            ScriptedProcess(3, []),
        ]
        eng = InterferenceEngine(net, procs, max_rounds=20)
        trace = eng.run()
        # Only node 1 ever gets the message (node 0's G_T neighbour).
        assert trace.informed_round[1] is not None
        assert trace.informed_round[3] is None

    def test_lone_interference_arrival_is_silence_not_collision(self):
        # Sender 0 has a G_I-only edge to node 3; node 3's observation
        # must be ⊥ even under CR1.
        g = line(4, extra_edges=[(0, 3)])
        net = InterferenceNetwork(g)
        procs = [
            ScriptedProcess(0, [1]),
            ScriptedProcess(1, []),
            ScriptedProcess(2, []),
            ScriptedProcess(3, []),
        ]
        eng = InterferenceEngine(
            net, procs, collision_rule=CollisionRule.CR1,
            synchronous_start=True, max_rounds=2,
        )
        trace = eng.run()
        assert trace.rounds[0].receptions[3].is_silence

    def test_interference_plus_transmission_collides(self):
        # Node 2 hears G_T-neighbour 1 and G_I-only neighbour 0 → ⊤.
        from repro.graphs.dualgraph import DualGraph

        g = DualGraph(
            3, [(0, 1), (1, 2)], [(0, 1), (1, 2), (0, 2)], undirected=True
        )
        net = InterferenceNetwork(g)
        procs = [
            ScriptedProcess(0, [1]),
            ScriptedProcess(1, [1], send_without_message=True),
            ScriptedProcess(2, []),
        ]
        eng = InterferenceEngine(
            net, procs, collision_rule=CollisionRule.CR1,
            synchronous_start=True, max_rounds=2,
        )
        trace = eng.run()
        assert trace.rounds[0].receptions[2].is_collision


ALGOS = [
    ("round_robin", make_round_robin_processes),
    ("strong_select", make_strong_select_processes),
    ("harmonic", make_harmonic_processes),
    ("decay", make_decay_processes),
]


class TestLemma1Equivalence:
    @pytest.mark.parametrize("rule", list(CollisionRule))
    @pytest.mark.parametrize("name,factory", ALGOS)
    def test_reduction_equivalent_on_random_graphs(self, rule, name, factory):
        net = InterferenceNetwork(gnp_dual(16, seed=8))
        report = run_equivalence_check(
            net, factory, collision_rule=rule, max_rounds=4000, seed=3
        )
        assert report.equivalent, report.first_divergence

    def test_cr4_deliver_first_policy_equivalent(self):
        net = InterferenceNetwork(gnp_dual(14, seed=2))
        report = run_equivalence_check(
            net,
            make_round_robin_processes,
            collision_rule=CollisionRule.CR4,
            max_rounds=2000,
            seed=1,
            cr4_choose_first=True,
        )
        assert report.equivalent

    def test_synchronous_start_equivalent(self):
        net = InterferenceNetwork(gnp_dual(14, seed=5))
        report = run_equivalence_check(
            net,
            make_round_robin_processes,
            collision_rule=CollisionRule.CR1,
            synchronous_start=True,
            max_rounds=2000,
            seed=6,
        )
        assert report.equivalent

    def test_dense_interference_equivalent(self):
        net = InterferenceNetwork(with_complete_unreliable(line(10)))
        report = run_equivalence_check(
            net,
            make_strong_select_processes,
            collision_rule=CollisionRule.CR3,
            max_rounds=10_000,
            seed=2,
        )
        assert report.equivalent

    def test_round_bounds_carry_over(self):
        # Lemma 1's headline: the dual-graph algorithm completes in the
        # interference model within its dual-graph round bound.
        net = InterferenceNetwork(gnp_dual(16, seed=8))
        report = run_equivalence_check(
            net, make_round_robin_processes, max_rounds=2000, seed=0
        )
        assert report.interference_trace.completed
        ecc = net.graph.source_eccentricity
        assert report.interference_trace.completion_round <= 16 * ecc
