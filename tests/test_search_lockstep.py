"""Lockstep evaluator backend: parity with the sandbox, resume included.

The search evaluator grew a second backend — whole populations scored
as vector-engine lockstep lanes instead of one sandboxed run per
genome.  The engines are trace-equivalent, so the backends must be
score-identical; these tests pin that objective for objective
(CR4 resolution genes included), show run_search results and
resume-by-key stores interchange freely across backends, and push the
forged-fingerprint distrust checks through the new path.
"""

import json
import random

import pytest

pytest.importorskip("numpy")

from repro.search import (
    EVALUATOR_BACKENDS,
    CandidateRecord,
    PopulationEvaluator,
    SearchBudget,
    SearchSettings,
    load_candidates,
    make_space,
    run_search,
)
from repro.search.persist import candidate_key

CELL = SearchSettings(
    algorithm="round_robin", graph_kind="clique-bridge", n=10
)
CR4_CELL = SearchSettings(
    algorithm="round_robin",
    graph_kind="clique-bridge",
    n=10,
    collision_rule="CR4",
)


def budget(n=8):
    return SearchBudget(evaluations=n, batch_size=4)


class TestBackendParity:
    def test_backends_registered(self):
        assert EVALUATOR_BACKENDS == ("sandbox", "lockstep")

    @pytest.mark.parametrize("cell", [CELL, CR4_CELL],
                             ids=["CR1", "CR4-genes"])
    def test_lockstep_matches_sandbox_objective_for_objective(self, cell):
        """Only the recorded engine label may differ between backends;
        under CR4 the genomes carry real resolution genes, so this
        exercises the batched consult path end to end."""
        space = make_space(cell)
        rng = random.Random(7)
        genomes = [space.random(rng) for _ in range(9)]
        with PopulationEvaluator(cell, backend="lockstep") as lock:
            lockstep = lock.evaluate(genomes)
        with PopulationEvaluator(cell) as sandbox:
            serial = sandbox.evaluate(genomes)
        assert len(lockstep) == len(serial) == 9
        for a, b in zip(lockstep, serial):
            assert a.engine == "vector"
            assert b.engine == "fast"
            assert a.genome == b.genome
            assert (a.objective, a.completed, a.completion_round,
                    a.rounds) == (
                b.objective, b.completed, b.completion_round, b.rounds
            )

    def test_run_search_agrees_across_backends(self):
        sandbox = run_search(
            CELL, searcher="random", budget=budget(), seed=1
        )
        lockstep = run_search(
            CELL, searcher="random", budget=budget(), seed=1,
            evaluator="lockstep",
        )
        assert lockstep.best.genome == sandbox.best.genome
        assert lockstep.best.objective == sandbox.best.objective
        assert lockstep.best_ordinal == sandbox.best_ordinal


class TestResumeAcrossBackends:
    def test_sandbox_store_resumes_under_lockstep(self, tmp_path):
        """A finished sandbox search replays as a pure resume on the
        lockstep evaluator — the CI smoke's "0 run, N resumed" grep."""
        path = str(tmp_path / "search.jsonl")
        first = run_search(
            CELL, searcher="local", budget=budget(), seed=3,
            results_path=path,
        )
        assert (first.executed, first.resumed) == (8, 0)
        again = run_search(
            CELL, searcher="local", budget=budget(), seed=3,
            results_path=path, evaluator="lockstep",
        )
        assert (again.executed, again.resumed) == (0, 8)
        assert again.best == first.best

    def test_lockstep_store_resumes_under_sandbox(self, tmp_path):
        path = str(tmp_path / "search.jsonl")
        first = run_search(
            CR4_CELL, searcher="local", budget=budget(), seed=3,
            results_path=path, evaluator="lockstep",
        )
        assert (first.executed, first.resumed) == (8, 0)
        again = run_search(
            CR4_CELL, searcher="local", budget=budget(), seed=3,
            results_path=path,
        )
        assert (again.executed, again.resumed) == (0, 8)
        assert again.best == first.best

    def test_partial_resume_extends_under_lockstep(self, tmp_path):
        path = str(tmp_path / "search.jsonl")
        run_search(
            CELL, searcher="local", budget=budget(4), seed=3,
            results_path=path,
        )
        full = run_search(
            CELL, searcher="local", budget=budget(8), seed=3,
            results_path=path, evaluator="lockstep",
        )
        assert (full.executed, full.resumed) == (4, 4)
        fresh = run_search(
            CELL, searcher="local", budget=budget(8), seed=3
        )
        # The stored engine label says which backend scored a record
        # ("vector" for lockstep-executed candidates); the science is
        # backend-independent.
        assert full.best.genome == fresh.best.genome
        assert full.best.objective == fresh.best.objective
        assert full.best.completion_round == fresh.best.completion_round
        assert full.best_ordinal == fresh.best_ordinal

    def test_lockstep_resume_distrusts_wrong_genome_for_key(
        self, tmp_path
    ):
        """The regenerated-genome check re-evaluates a key whose stored
        genome belongs to a different candidate — through the lockstep
        backend just as through the sandbox."""
        path = str(tmp_path / "search.jsonl")
        run_search(
            CELL, searcher="random", budget=budget(4), seed=5,
            results_path=path,
        )
        records = load_candidates(path)
        key0 = candidate_key(CELL, "random", 5, 0)
        key1 = candidate_key(CELL, "random", 5, 1)
        wrong = CandidateRecord(
            key=key0,
            ordinal=0,
            searcher="random",
            fingerprint=records[key1].genome.fingerprint,
            genome=records[key1].genome,
            objective=10_000,
            completed=False,
            completion_round=None,
            rounds=0,
            engine="vector",
        )
        with open(path, "a", encoding="utf-8") as f:
            f.write(json.dumps(wrong.to_dict(), sort_keys=True) + "\n")
        resumed = run_search(
            CELL, searcher="random", budget=budget(4), seed=5,
            results_path=path, evaluator="lockstep",
        )
        assert resumed.executed == 1
        assert resumed.health.rejected_records == 0
        assert resumed.best.objective < 10_000

    def test_lockstep_resume_rejects_forged_fingerprint(self, tmp_path):
        path = str(tmp_path / "search.jsonl")
        run_search(
            CELL, searcher="random", budget=budget(4), seed=5,
            results_path=path,
        )
        records = load_candidates(path)
        key = candidate_key(CELL, "random", 5, 0)
        forged = CandidateRecord(
            key=key,
            ordinal=0,
            searcher="random",
            fingerprint="deadbeef",
            genome=records[key].genome,
            objective=10_000,
            completed=False,
            completion_round=None,
            rounds=0,
            engine="vector",
        )
        with open(path, "a", encoding="utf-8") as f:
            f.write(json.dumps(forged.to_dict(), sort_keys=True) + "\n")
        resumed = run_search(
            CELL, searcher="random", budget=budget(4), seed=5,
            results_path=path, evaluator="lockstep",
        )
        assert resumed.executed == 0
        assert resumed.resumed == 4
        assert resumed.health.rejected_records == 1
        assert resumed.best.objective < 10_000


class TestBackendValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown evaluator backend"):
            PopulationEvaluator(CELL, backend="warp")

    def test_reference_engine_conflicts_with_lockstep(self):
        ref_cell = SearchSettings(
            algorithm="round_robin",
            graph_kind="clique-bridge",
            n=10,
            engine="reference",
        )
        with pytest.raises(ValueError, match="lockstep"):
            PopulationEvaluator(ref_cell, backend="lockstep")

    def test_lockstep_requires_numpy(self, monkeypatch):
        import repro.sim.vector_engine as vector_mod

        monkeypatch.setattr(vector_mod, "have_numpy", lambda: False)
        with pytest.raises(ValueError, match="requires numpy"):
            PopulationEvaluator(CELL, backend="lockstep")
