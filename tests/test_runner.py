"""Unit tests for the high-level broadcast() runner API."""

import pytest

from repro import algorithm_names, broadcast, make_processes
from repro.adversaries import GreedyInterferer
from repro.core.runner import register_algorithm, suggested_round_limit
from repro.graphs import gnp_dual, line
from repro.sim import CollisionRule, StartMode
from repro.sim.process import SilentProcess


class TestRegistry:
    def test_known_algorithms(self):
        names = algorithm_names()
        for expected in (
            "strong_select",
            "strong_select_ks",
            "harmonic",
            "round_robin",
            "decay",
        ):
            assert expected in names

    def test_make_processes_counts_and_uids(self):
        procs = make_processes("round_robin", 7)
        assert len(procs) == 7
        assert sorted(p.uid for p in procs) == list(range(7))

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_processes("nope", 4)

    def test_register_custom(self):
        register_algorithm(
            "always_silent_test",
            lambda n, **kw: [SilentProcess(uid=i) for i in range(n)],
        )
        procs = make_processes("always_silent_test", 3)
        assert len(procs) == 3
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("always_silent_test", lambda n: [])


class TestSuggestedLimits:
    def test_limits_positive_and_ordered(self):
        g = gnp_dual(32, seed=0)
        ss = suggested_round_limit("strong_select", g)
        rr = suggested_round_limit("round_robin", g)
        hm = suggested_round_limit("harmonic", g)
        dc = suggested_round_limit("decay", g)
        assert all(x > 0 for x in (ss, rr, hm, dc))
        # Strong Select's n^{3/2}-shaped bound dominates round robin's
        # n * ecc on a low-eccentricity random graph.
        assert ss > rr


class TestBroadcastEntryPoint:
    @pytest.mark.parametrize(
        "alg", ["strong_select", "harmonic", "round_robin", "decay"]
    )
    def test_all_algorithms_complete_without_adversary(self, alg):
        trace = broadcast(gnp_dual(16, seed=2), alg, seed=1)
        assert trace.completed

    def test_adversary_forwarded(self):
        trace = broadcast(
            gnp_dual(16, seed=2),
            "round_robin",
            adversary=GreedyInterferer(),
            seed=1,
        )
        assert trace.completed

    def test_algorithm_params_forwarded(self):
        trace = broadcast(
            line(8),
            "harmonic",
            algorithm_params={"T": 2},
            seed=4,
            max_rounds=5000,
        )
        assert trace.completed

    def test_config_kwargs_forwarded(self):
        trace = broadcast(
            line(6),
            "round_robin",
            collision_rule=CollisionRule.CR1,
            start_mode=StartMode.SYNCHRONOUS,
            seed=0,
        )
        assert trace.completed

    def test_explicit_max_rounds(self):
        trace = broadcast(line(8), "round_robin", max_rounds=3)
        assert trace.num_rounds <= 3
        assert not trace.completed
