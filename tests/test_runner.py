"""Unit tests for the high-level broadcast() runner API."""

import math

import pytest

from repro import algorithm_names, broadcast, make_processes
from repro.adversaries import GreedyInterferer
from repro.core.harmonic import completion_bound, default_T
from repro.core.round_robin import round_robin_bound
from repro.core.runner import register_algorithm, suggested_round_limit
from repro.core.strong_select import build_schedule
from repro.graphs import gnp_dual, line
from repro.sim import CollisionRule, StartMode
from repro.sim.process import SilentProcess


class TestRegistry:
    def test_known_algorithms(self):
        names = algorithm_names()
        for expected in (
            "strong_select",
            "strong_select_ks",
            "harmonic",
            "round_robin",
            "decay",
        ):
            assert expected in names

    def test_make_processes_counts_and_uids(self):
        procs = make_processes("round_robin", 7)
        assert len(procs) == 7
        assert sorted(p.uid for p in procs) == list(range(7))

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_processes("nope", 4)

    def test_register_custom(self):
        register_algorithm(
            "always_silent_test",
            lambda n, **kw: [SilentProcess(uid=i) for i in range(n)],
        )
        procs = make_processes("always_silent_test", 3)
        assert len(procs) == 3
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("always_silent_test", lambda n: [])

    def test_duplicate_builtin_name_rejected_without_overwrite(self):
        """A clashing registration fails loudly and leaves the
        original factory in place."""
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("round_robin", lambda n, **kw: [])
        procs = make_processes("round_robin", 4)
        assert sorted(p.uid for p in procs) == list(range(4))


class TestSuggestedLimits:
    def test_limits_positive_and_ordered(self):
        g = gnp_dual(32, seed=0)
        ss = suggested_round_limit("strong_select", g)
        rr = suggested_round_limit("round_robin", g)
        hm = suggested_round_limit("harmonic", g)
        dc = suggested_round_limit("decay", g)
        assert all(x > 0 for x in (ss, rr, hm, dc))
        # Strong Select's n^{3/2}-shaped bound dominates round robin's
        # n * ecc on a low-eccentricity random graph.
        assert ss > rr

    def test_each_algorithm_gets_its_proven_bound(self):
        """Every branch derives the cap from that algorithm's theorem."""
        g = gnp_dual(32, seed=0)
        n, ecc = g.n, g.source_eccentricity
        log2n = max(1.0, math.log2(n))
        assert suggested_round_limit("strong_select", g) == (
            build_schedule(n).round_bound() + 1
        )
        # The prefix match covers the Kautz-SSF variant too.
        assert suggested_round_limit("strong_select_ks", g) == (
            build_schedule(n).round_bound() + 1
        )
        assert suggested_round_limit("harmonic", g) == (
            2 * completion_bound(n, default_T(n)) + 1
        )
        assert suggested_round_limit("round_robin", g) == (
            round_robin_bound(n, ecc) + 1
        )
        assert suggested_round_limit("uniform", g) == (
            int(12 * n * (ecc + log2n) * log2n) + 1
        )
        # Algorithms without a dual-graph guarantee (decay, custom
        # registrations) share the generous default allowance.
        default_allowance = int(4 * n * log2n * log2n + n * ecc) + 1
        assert suggested_round_limit("decay", g) == default_allowance
        assert suggested_round_limit("anything_else", g) == (
            default_allowance
        )


class TestBroadcastEntryPoint:
    @pytest.mark.parametrize(
        "alg", ["strong_select", "harmonic", "round_robin", "decay"]
    )
    def test_all_algorithms_complete_without_adversary(self, alg):
        trace = broadcast(gnp_dual(16, seed=2), alg, seed=1)
        assert trace.completed

    def test_adversary_forwarded(self):
        trace = broadcast(
            gnp_dual(16, seed=2),
            "round_robin",
            adversary=GreedyInterferer(),
            seed=1,
        )
        assert trace.completed

    def test_algorithm_params_forwarded(self):
        trace = broadcast(
            line(8),
            "harmonic",
            algorithm_params={"T": 2},
            seed=4,
            max_rounds=5000,
        )
        assert trace.completed

    def test_config_kwargs_forwarded(self):
        trace = broadcast(
            line(6),
            "round_robin",
            collision_rule=CollisionRule.CR1,
            start_mode=StartMode.SYNCHRONOUS,
            seed=0,
        )
        assert trace.completed

    def test_explicit_max_rounds(self):
        trace = broadcast(line(8), "round_robin", max_rounds=3)
        assert trace.num_rounds <= 3
        assert not trace.completed

    def test_algorithm_params_reach_the_factory(self):
        """broadcast(algorithm_params=...) forwards kwargs verbatim."""
        received = {}

        def probe_factory(n, **params):
            received.update(params)
            return [SilentProcess(uid=i) for i in range(n)]

        register_algorithm("params_probe_test", probe_factory)
        broadcast(
            line(4),
            "params_probe_test",
            algorithm_params={"alpha": 7, "beta": "x"},
            max_rounds=2,
        )
        assert received == {"alpha": 7, "beta": "x"}

    def test_algorithm_params_default_to_empty(self):
        received = {}

        def probe_factory(n, **params):
            received.update(params)
            return [SilentProcess(uid=i) for i in range(n)]

        register_algorithm("params_probe_default_test", probe_factory)
        broadcast(line(4), "params_probe_default_test", max_rounds=2)
        assert received == {}
