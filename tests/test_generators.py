"""Unit tests for standard topology generators."""

import pytest

from repro.graphs import (
    clique,
    directed_layered,
    grid,
    layered,
    line,
    random_tree,
    ring,
    star,
    with_complete_unreliable,
)


class TestLine:
    def test_structure(self):
        g = line(5)
        assert g.n == 5
        assert g.is_undirected
        assert g.source_eccentricity == 4
        assert g.reliable_out(2) == {1, 3}

    def test_extra_edges_become_unreliable_if_not_reliable(self):
        g = line(5, extra_edges=[(0, 4)])
        assert 4 in g.unreliable_only_out(0)
        assert 0 in g.unreliable_only_out(4)  # symmetrised


class TestRing:
    def test_structure(self):
        g = ring(6)
        assert g.n == 6
        assert all(len(g.reliable_out(v)) == 2 for v in g.nodes)
        assert g.source_eccentricity == 3

    def test_too_small(self):
        with pytest.raises(ValueError):
            ring(2)


class TestClique:
    def test_diameter_one(self):
        g = clique(7)
        assert g.source_eccentricity == 1
        assert all(len(g.reliable_out(v)) == 6 for v in g.nodes)
        assert g.is_classical


class TestStar:
    def test_center_is_source(self):
        g = star(5, center=2)
        assert g.source == 2
        assert g.source_eccentricity == 1
        assert len(g.reliable_out(2)) == 4
        assert g.reliable_out(0) == {2}


class TestGrid:
    def test_structure(self):
        g = grid(3, 4)
        assert g.n == 12
        assert g.source_eccentricity == (3 - 1) + (4 - 1)
        # Corner has 2 neighbours; interior has 4.
        assert len(g.reliable_out(0)) == 2
        assert len(g.reliable_out(5)) == 4


class TestRandomTree:
    def test_is_tree(self):
        g = random_tree(20, seed=3)
        assert len(g.reliable_edges()) == 2 * 19  # undirected: both dirs
        assert g.source_eccentricity >= 1

    def test_deterministic_given_seed(self):
        assert (
            random_tree(20, seed=3).reliable_edges()
            == random_tree(20, seed=3).reliable_edges()
        )
        assert (
            random_tree(20, seed=3).reliable_edges()
            != random_tree(20, seed=4).reliable_edges()
        )


class TestLayered:
    def test_layer_connectivity(self):
        g = layered([1, 2, 3])
        assert g.n == 6
        # Source connects to both layer-1 nodes.
        assert g.reliable_out(0) == {1, 2}
        # Layer-1 nodes connect to each other and all of layer 2.
        assert g.reliable_out(1) == {0, 2, 3, 4, 5}

    def test_requires_singleton_source_layer(self):
        with pytest.raises(ValueError):
            layered([2, 2])

    def test_no_intra_layer_edges_option(self):
        g = layered([1, 2], complete_within=False)
        assert 2 not in g.reliable_out(1)


class TestWithCompleteUnreliable:
    def test_g_prime_complete(self):
        g = with_complete_unreliable(line(5))
        for u in g.nodes:
            assert g.all_out(u) == frozenset(set(g.nodes) - {u})
        # Reliable part unchanged.
        assert g.reliable_out(0) == {1}

    def test_not_classical(self):
        assert not with_complete_unreliable(line(4)).is_classical


class TestDirectedLayered:
    def test_forward_edges_only(self):
        g = directed_layered([1, 2, 2])
        assert not g.is_undirected
        assert g.reliable_out(0) == {1, 2}
        assert g.reliable_out(1) == {3, 4}
        assert g.reliable_out(3) == frozenset()

    def test_complete_unreliable_blanket(self):
        g = directed_layered([1, 2], complete_unreliable=True)
        assert g.all_out(1) == {0, 2}
