"""Tests for the extensions: repeated broadcast and link quality."""

import pytest

from repro import broadcast
from repro.adversaries import (
    FlappingLinkAdversary,
    GreedyInterferer,
    NoDeliveryAdversary,
    RandomDeliveryAdversary,
)
from repro.extensions import (
    LinkQualityEstimator,
    RepeatedBroadcastSession,
    ScheduledProcess,
    learned_order,
)
from repro.graphs import gnp_dual, line, with_complete_unreliable
from repro.sim import run_broadcast


class TestScheduledProcess:
    def test_slot_discipline(self):
        import random
        from repro.sim.messages import Message
        from repro.sim.process import ProcessContext

        p = ScheduledProcess(3, slot=2, cycle=5)
        p.on_broadcast_input(Message("x", 3, 0))
        ctx = ProcessContext(3, random.Random(0), 5)
        assert p.decide_send(ctx) is not None  # (3-1) % 5 == 2
        ctx.round_number = 4
        assert p.decide_send(ctx) is None

    def test_slot_validation(self):
        with pytest.raises(ValueError):
            ScheduledProcess(0, slot=5, cycle=5)

    def test_silent_without_message(self):
        import random
        from repro.sim.process import ProcessContext

        p = ScheduledProcess(0, slot=0, cycle=4)
        assert p.decide_send(ProcessContext(1, random.Random(0), 4)) is None


class TestLearnedOrder:
    def test_source_first(self):
        g = gnp_dual(12, seed=0)
        trace = broadcast(g, "round_robin", seed=0)
        order = learned_order(trace)
        assert order[0] == trace.proc[g.source]
        assert sorted(order) == list(range(12))

    def test_incomplete_trace_rejected(self):
        from repro.sim.process import SilentProcess

        trace = run_broadcast(
            line(3), [SilentProcess(uid=i) for i in range(3)], max_rounds=3
        )
        with pytest.raises(ValueError):
            learned_order(trace)


class TestRepeatedBroadcastSession:
    def test_all_messages_delivered(self):
        g = gnp_dual(16, seed=2)
        session = RepeatedBroadcastSession(
            g, NoDeliveryAdversary, seed=1
        )
        report = session.run(num_messages=5)
        assert len(report.message_rounds) == 4
        assert all(r > 0 for r in report.message_rounds)

    def test_learning_beats_rediscovery(self):
        g = gnp_dual(24, seed=3)
        session = RepeatedBroadcastSession(
            g, NoDeliveryAdversary, seed=1
        )
        report = session.run(num_messages=4)
        assert report.steady_state_mean < report.discovery_rounds

    def test_scheduled_cycle_is_interference_immune(self):
        # Even the greedy interferer cannot slow a one-sender-per-round
        # schedule beyond its n·ecc bound.
        g = with_complete_unreliable(line(10))
        session = RepeatedBroadcastSession(
            g, GreedyInterferer, seed=0
        )
        report = session.run(num_messages=3)
        bound = 10 * g.source_eccentricity + 10
        assert all(r <= bound for r in report.message_rounds)

    def test_stochastic_adversary_session(self):
        g = gnp_dual(16, seed=5)
        session = RepeatedBroadcastSession(
            g, lambda: RandomDeliveryAdversary(0.5, seed=2), seed=4
        )
        report = session.run(num_messages=4)
        assert len(report.message_rounds) == 3

    def test_message_count_validation(self):
        g = gnp_dual(8, seed=0)
        session = RepeatedBroadcastSession(g, NoDeliveryAdversary)
        with pytest.raises(ValueError):
            session.run(0)


class TestLinkQualityEstimator:
    def _traces(self, network, adversary_factory, seeds):
        return [
            broadcast(
                network,
                "harmonic",
                adversary=adversary_factory(seed),
                algorithm_params={"T": 3},
                seed=seed,
            )
            for seed in seeds
        ]

    def test_reliable_links_score_one(self):
        g = gnp_dual(14, seed=1)
        est = LinkQualityEstimator(g)
        est.observe_all(
            self._traces(g, lambda s: RandomDeliveryAdversary(0.5, seed=s),
                         range(4))
        )
        for u in g.nodes:
            for v in g.reliable_out(u):
                stats = est.stats(u, v)
                if stats.attempts:
                    assert stats.delivery_ratio == 1.0

    def test_unreliable_links_score_below_one(self):
        g = gnp_dual(14, seed=1)
        est = LinkQualityEstimator(g)
        est.observe_all(
            self._traces(g, lambda s: RandomDeliveryAdversary(0.5, seed=s),
                         range(6))
        )
        measured_unreliable = [
            est.stats(u, v)
            for u in g.nodes
            for v in g.unreliable_only_out(u)
            if est.stats(u, v).attempts >= 5
        ]
        assert measured_unreliable  # some unreliable links got data
        assert any(s.delivery_ratio < 1.0 for s in measured_unreliable)

    def test_cull_recovers_reliable_graph_under_noise(self):
        g = gnp_dual(14, seed=1)
        est = LinkQualityEstimator(g)
        est.observe_all(
            self._traces(g, lambda s: RandomDeliveryAdversary(0.5, seed=s),
                         range(8))
        )
        fp, fn = est.recovered_reliable_set(threshold=0.95, min_attempts=4)
        # A flapping link surviving 4+ coin flips at p=0.5 is rare; no
        # true reliable link is ever misjudged (they always deliver).
        assert not fn
        assert len(fp) <= 4

    def test_cull_keeps_unmeasured_links(self):
        g = gnp_dual(10, seed=2)
        est = LinkQualityEstimator(g)  # no observations at all
        culled = est.cull(threshold=0.99, min_attempts=1)
        assert culled.reliable_edges() == g.all_edges()

    def test_etx_metric(self):
        from repro.extensions import LinkStats

        s = LinkStats(attempts=10, deliveries=5)
        assert s.delivery_ratio == 0.5
        assert s.etx == 2.0
        empty = LinkStats()
        assert empty.delivery_ratio is None
        assert empty.etx is None

    def test_full_delivery_adversary_fools_estimator(self):
        # The adversarial blind spot: links that fire during probing can
        # stop firing later.  After observing an always-up phase, the
        # estimator believes everything.
        g = gnp_dual(12, seed=3)
        est = LinkQualityEstimator(g)
        est.observe(
            broadcast(
                g,
                "harmonic",
                adversary=FlappingLinkAdversary(up_rounds=10**6,
                                                down_rounds=1),
                algorithm_params={"T": 3},
                seed=1,
            )
        )
        fp, _fn = est.recovered_reliable_set(threshold=0.99,
                                             min_attempts=1)
        assert fp  # believed reliable, actually adversary-controlled
