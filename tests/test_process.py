"""Unit tests for the Process automaton base class."""

import random

import pytest

from repro.sim.messages import Message, SILENCE, received
from repro.sim.process import (
    Process,
    ProcessContext,
    ScriptedProcess,
    SilentProcess,
)


def ctx(round_number=1, n=4):
    return ProcessContext(round_number, random.Random(0), n)


class TestLifecycle:
    def test_initial_state(self):
        p = SilentProcess(uid=3)
        assert p.uid == 3
        assert not p.has_message
        assert p.message is None
        assert p.activation_round is None
        assert p.first_message_round is None

    def test_broadcast_input_marks_source(self):
        p = SilentProcess(uid=0)
        p.on_broadcast_input(Message("payload", 0, 0))
        assert p.has_message
        assert p.first_message_round == 0

    def test_activation_records_round(self):
        p = SilentProcess(uid=1)
        c = ctx(round_number=5)
        p.on_activate(c)
        assert p.activation_round == 5

    def test_deliver_records_first_message_round(self):
        p = SilentProcess(uid=1)
        p.on_activate(ctx(0))
        p.deliver(ctx(7), received(Message("payload", 0, 7)))
        assert p.first_message_round == 7
        # A later message does not overwrite it.
        p.deliver(ctx(9), received(Message("payload", 2, 9)))
        assert p.first_message_round == 7

    def test_silence_does_not_inform(self):
        p = SilentProcess(uid=1)
        p.deliver(ctx(3), SILENCE)
        assert not p.has_message

    def test_outgoing_requires_message(self):
        p = SilentProcess(uid=1)
        with pytest.raises(RuntimeError, match="no message"):
            p.outgoing(ctx())

    def test_outgoing_restamps(self):
        p = SilentProcess(uid=1)
        p.deliver(ctx(2), received(Message("payload", 0, 2)))
        msg = p.outgoing(ctx(5), level=3)
        assert msg.sender == 1
        assert msg.round_sent == 5
        assert msg.payload == "payload"
        assert msg.meta["level"] == 3


class TestScriptedProcess:
    def test_sends_only_in_scripted_rounds_with_message(self):
        p = ScriptedProcess(uid=2, send_rounds=[3, 5])
        p.deliver(ctx(1), received(Message("payload", 0, 1)))
        assert p.decide_send(ctx(2)) is None
        assert p.decide_send(ctx(3)) is not None
        assert p.decide_send(ctx(4)) is None
        assert p.decide_send(ctx(5)) is not None

    def test_without_message_silent_by_default(self):
        p = ScriptedProcess(uid=2, send_rounds=[1])
        assert p.decide_send(ctx(1)) is None

    def test_send_without_message_flag(self):
        p = ScriptedProcess(uid=2, send_rounds=[1],
                            send_without_message=True)
        msg = p.decide_send(ctx(1))
        assert msg is not None
        assert msg.payload is None  # carries no broadcast content


class TestAbstractness:
    def test_process_is_abstract(self):
        with pytest.raises(TypeError):
            Process(uid=0)  # type: ignore[abstract]
