"""Tests for the repro.store result-storage subsystem.

Covers the backend differential contract (same sweep through every
backend yields identical records and summaries), resume-by-key under
interruption, torn-line healing, merge idempotence, StoreHealth
accounting, the validator hook, RunningSummary equivalence, and the
streaming ``repro report`` path.
"""

import json
import math
import os
import random

import pytest

from repro.analysis.report import CampaignReport, paper_reference
from repro.analysis.stats import RunningSummary, summarize
from repro.experiments import ExperimentSpec, run_sweep
from repro.experiments.results import RunResult
from repro.store import (
    JsonlStore,
    RawRecord,
    ShardedStore,
    StoreHealth,
    StoreMismatchError,
    detect_backend,
    merge_store,
    open_store,
    read_manifest,
    shard_index,
)


def tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="tiny",
        algorithms=["round_robin"],
        graphs=[("line", 6), ("line", 10)],
        adversaries=["none"],
        seeds=range(2),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def assert_summary_close(a, b):
    assert a.count == b.count
    for name in (
        "mean",
        "median",
        "stdev",
        "minimum",
        "maximum",
        "ci95_half_width",
    ):
        assert math.isclose(
            getattr(a, name),
            getattr(b, name),
            rel_tol=1e-9,
            abs_tol=1e-9,
        ), name


def make_record(i: int, completion: int = None, sends: int = 0) -> RunResult:
    if completion is None:
        completion = 5 + (i % 7)
    return RunResult(
        key=f"syn/round_robin/line:n8/none/CR1-synchronous/s{i}",
        sweep="syn",
        algorithm="round_robin",
        graph_kind="line",
        n=8,
        graph_n=8,
        adversary_kind="none",
        collision_rule="CR1",
        start_mode="synchronous",
        seed=i,
        completed=True,
        completion_round=completion,
        rounds=completion,
        total_transmissions=sends or completion,
        engine="reference",
    )


BACKENDS = ["jsonl", "sharded", "columnar"]


def open_backend(backend, tmp_path, name="store", **kwargs):
    if backend == "columnar":
        pytest.importorskip("numpy")
    path = str(tmp_path / (name if backend != "jsonl" else name + ".jsonl"))
    return open_store(path, RunResult.from_dict, backend=backend, **kwargs)


class TestStoreHealth:
    def test_clean_health_warns_nothing(self):
        assert StoreHealth().warning("r.jsonl") is None
        assert StoreHealth().issues == 0

    def test_warning_text_unified(self):
        health = StoreHealth(skipped_lines=2, rejected_records=1)
        text = health.warning("r.jsonl", noun="candidate")
        assert "2 unparsable line(s)" in text
        assert "1 validator-rejected record(s)" in text
        assert "candidates were re-run" in text

    def test_merge_accumulates(self):
        health = StoreHealth(skipped_lines=1)
        health.merge(StoreHealth(skipped_lines=2, rejected_records=3))
        assert health.skipped_lines == 3
        assert health.rejected_records == 3
        assert health.issues == 6


class TestBackendRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trip_preserves_records(self, backend, tmp_path):
        records = [make_record(i) for i in range(20)]
        with open_backend(backend, tmp_path) as store:
            for record in records:
                store.append(record)
        reopened = open_backend(backend, tmp_path)
        claimed = reopened.claim_keys()
        assert claimed == {r.key: r for r in records}
        streamed = sorted(reopened.iter_records(), key=lambda r: r.key)
        assert streamed == sorted(records, key=lambda r: r.key)
        assert reopened.health.issues == 0
        reopened.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_later_duplicate_key_wins(self, backend, tmp_path):
        with open_backend(backend, tmp_path) as store:
            store.append(make_record(0, completion=5))
            store.append(make_record(0, completion=9))
        reopened = open_backend(backend, tmp_path)
        claimed = reopened.claim_keys()
        assert len(claimed) == 1
        assert next(iter(claimed.values())).completion_round == 9
        reopened.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_validator_rejects_and_counts(self, backend, tmp_path):
        with open_backend(backend, tmp_path) as store:
            for i in range(4):
                store.append(make_record(i))
        reopened = open_backend(
            backend,
            tmp_path,
            validator=lambda r: r.seed != 2,
        )
        claimed = reopened.claim_keys()
        assert len(claimed) == 3
        assert reopened.health.rejected_records == 1
        assert "1 validator-rejected record(s)" in (
            reopened.health.warning("store")
        )
        reopened.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_manifest_describes_store(self, backend, tmp_path):
        with open_backend(backend, tmp_path) as store:
            for i in range(6):
                store.append(make_record(i))
            store.flush()
            manifest = store.manifest()
        assert manifest["backend"] == backend
        count = manifest.get("records", manifest.get("appended"))
        assert count == 6


class TestSweepDifferential:
    """The same sweep produces identical contents on every backend."""

    def test_all_backends_agree(self, tmp_path):
        spec = tiny_spec(seeds=range(3))
        claims = {}
        summaries = {}
        for backend in BACKENDS:
            if backend == "columnar":
                pytest.importorskip("numpy")
            path = str(
                tmp_path / ("camp-" + backend)
                if backend != "jsonl"
                else tmp_path / "camp.jsonl"
            )
            result = run_sweep(spec, results_path=path, store=backend)
            assert result.executed == spec.size
            assert result.health.issues == 0
            store = open_store(
                path, RunResult.from_dict, backend=backend
            )
            claims[backend] = store.claim_keys()
            summaries[backend] = {
                key: record.to_dict()
                for key, record in claims[backend].items()
            }
            store.close()
        assert summaries["jsonl"] == summaries["sharded"]
        assert summaries["jsonl"] == summaries["columnar"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_interrupt_resumes_only_missing(self, backend, tmp_path):
        if backend == "columnar":
            pytest.importorskip("numpy")
        spec = tiny_spec(seeds=range(3))
        path = str(
            tmp_path / "camp.jsonl"
            if backend == "jsonl"
            else tmp_path / "camp"
        )
        # Simulate a mid-campaign interrupt: persist half the tasks.
        tasks = spec.tasks()
        half = tasks[: len(tasks) // 2]
        with open_store(
            path, RunResult.from_dict, backend=backend
        ) as store:
            partial = run_sweep(spec)
            by_key = {r.key: r for r in partial.records}
            for task in half:
                store.append(by_key[task.key])
        resumed = run_sweep(spec, results_path=path, store=backend)
        assert resumed.resumed == len(half)
        assert resumed.executed == spec.size - len(half)
        assert {r.key for r in resumed.records} == {
            t.key for t in tasks
        }
        # A second run resumes everything.
        again = run_sweep(spec, results_path=path, store=backend)
        assert again.executed == 0
        assert again.resumed == spec.size

    def test_worker_count_does_not_change_sharded_layout(self, tmp_path):
        spec = tiny_spec(seeds=range(2))
        layouts = []
        for workers, name in ((1, "w1"), (2, "w2")):
            root = tmp_path / name
            run_sweep(
                spec,
                workers=workers,
                results_path=str(root),
                store="sharded",
            )
            manifest = read_manifest(str(root))
            shard_keys = {}
            for shard in manifest["shard_files"]:
                with open(root / shard, encoding="utf-8") as f:
                    shard_keys[shard] = sorted(
                        json.loads(line)["key"] for line in f
                    )
            layouts.append(shard_keys)
        assert layouts[0] == layouts[1]

    def test_shard_index_is_pure_key_hash(self):
        assert shard_index("a/key", 8) == shard_index("a/key", 8)
        spread = {shard_index(f"k{i}", 8) for i in range(256)}
        assert len(spread) > 1


class TestTornLines:
    def test_jsonl_store_heals_torn_tail(self, tmp_path):
        path = tmp_path / "r.jsonl"
        good = make_record(0)
        path.write_text(
            json.dumps(good.to_dict(), sort_keys=True)
            + "\n"
            + '{"key": "torn-fragm'
        )
        store = JsonlStore(str(path), RunResult.from_dict)
        claimed = store.claim_keys()
        assert list(claimed) == [good.key]
        assert store.health.skipped_lines == 1
        store.append(make_record(1))
        store.close()
        # The torn tail got its newline before the append landed.
        reopened = JsonlStore(str(path), RunResult.from_dict)
        assert len(reopened.claim_keys()) == 2
        assert reopened.health.skipped_lines == 1
        reopened.close()

    def test_sharded_store_counts_torn_shard_lines(self, tmp_path):
        root = tmp_path / "camp"
        with ShardedStore(
            str(root), RunResult.from_dict, shards=2
        ) as store:
            for i in range(4):
                store.append(make_record(i))
        # Tear the final line of one shard.
        manifest = read_manifest(str(root))
        victim = root / next(iter(manifest["shard_files"]))
        victim.write_bytes(victim.read_bytes()[:-20])
        reopened = ShardedStore(str(root), RunResult.from_dict)
        claimed = reopened.claim_keys()
        assert reopened.health.skipped_lines == 1
        assert len(claimed) == 3
        reopened.close()


class TestMerge:
    def test_merge_is_idempotent_and_resumable(self, tmp_path):
        spec = tiny_spec(seeds=range(2))
        root = str(tmp_path / "camp")
        run_sweep(spec, results_path=root, store="sharded")
        out = str(tmp_path / "merged.jsonl")
        source = open_store(root, RawRecord, backend="sharded")
        count = merge_store(source, out)
        first = open(out, "rb").read()
        count_again = merge_store(source, out)
        second = open(out, "rb").read()
        source.close()
        assert count == count_again == spec.size
        assert first == second  # byte-identical re-merge
        # Keys come out sorted, one JSON document per line.
        keys = [
            json.loads(line)["key"]
            for line in first.decode().splitlines()
        ]
        assert keys == sorted(keys)
        # The merged file is a fully resumable single-file ledger.
        resumed = run_sweep(spec, results_path=out)
        assert resumed.executed == 0
        assert resumed.resumed == spec.size

    def test_merge_overlays_existing_output(self, tmp_path):
        out = str(tmp_path / "all.jsonl")
        with JsonlStore(out, RunResult.from_dict) as dest:
            dest.append(make_record(0, completion=5))
        src_root = str(tmp_path / "camp")
        with ShardedStore(src_root, RunResult.from_dict) as src:
            src.append(make_record(0, completion=9))
            src.append(make_record(1))
        source = open_store(src_root, RawRecord, backend="sharded")
        count = merge_store(source, out)
        source.close()
        assert count == 2
        merged = JsonlStore(out, RunResult.from_dict).claim_keys()
        assert merged[make_record(0).key].completion_round == 9


class TestFingerprints:
    def test_sharded_rejects_foreign_fingerprint(self, tmp_path):
        root = str(tmp_path / "camp")
        with ShardedStore(
            str(root),
            RunResult.from_dict,
            fingerprint="aaaa",
        ) as store:
            store.append(make_record(0))
        ShardedStore(
            str(root), RunResult.from_dict, fingerprint="aaaa"
        ).close()
        with pytest.raises(StoreMismatchError):
            ShardedStore(
                str(root), RunResult.from_dict, fingerprint="bbbb"
            )

    def test_detect_backend(self, tmp_path):
        assert detect_backend(str(tmp_path / "r.jsonl")) == "jsonl"
        assert detect_backend(str(tmp_path / "camp") + os.sep) == (
            "sharded"
        )
        root = str(tmp_path / "camp")
        with ShardedStore(root, RunResult.from_dict) as store:
            store.append(make_record(0))
        assert detect_backend(root) == "sharded"


class TestFlushPolicy:
    def test_sharded_buffers_until_flush_every(self, tmp_path):
        root = tmp_path / "camp"
        store = ShardedStore(
            str(root),
            RunResult.from_dict,
            shards=1,
            flush_every=100,
        )
        for i in range(5):
            store.append(make_record(i))
        shard = root / "shard-0000.jsonl"
        buffered = (
            len(shard.read_text().splitlines())
            if shard.exists()
            else 0
        )
        store.flush()
        assert len(shard.read_text().splitlines()) == 5
        assert buffered < 5  # flush_every really deferred durability
        store.close()

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlStore(
                str(tmp_path / "r.jsonl"),
                RunResult.from_dict,
                flush_every=0,
            )


class TestRunningSummary:
    def test_matches_batch_summarize(self):
        rng = random.Random(7)
        values = [rng.randint(1, 40) for _ in range(500)]
        running = RunningSummary().update(values)
        batch = summarize(values)
        assert running.count == batch.count
        assert math.isclose(running.mean, batch.mean)
        assert math.isclose(running.stdev, batch.stdev)
        assert math.isclose(
            running.ci95_half_width, batch.ci95_half_width
        )
        assert running.median() == batch.median
        assert_summary_close(running.summary(), batch)

    def test_merge_matches_concatenation(self):
        rng = random.Random(11)
        a = [rng.uniform(0, 9) for _ in range(123)]
        b = [rng.uniform(0, 9) for _ in range(77)]
        merged = RunningSummary().update(a).merge(
            RunningSummary().update(b)
        )
        batch = summarize(a + b)
        assert merged.count == batch.count
        assert math.isclose(merged.mean, batch.mean)
        assert math.isclose(merged.stdev, batch.stdev)

    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            RunningSummary().summary()

    def test_singleton(self):
        running = RunningSummary().update([4.0])
        assert running.stdev == 0.0
        assert running.ci95_half_width == 0.0
        assert running.median() == 4.0


class TestCampaignReport:
    def test_streaming_report_matches_records(self, tmp_path):
        spec = tiny_spec(seeds=range(4))
        root = str(tmp_path / "camp")
        result = run_sweep(spec, results_path=root, store="sharded")
        store = open_store(root, RunResult.from_dict)
        report = CampaignReport.from_store(store)
        store.close()
        assert report.records == spec.size
        by_cell = {}
        for record in result.records:
            by_cell.setdefault(
                (record.graph_kind, record.graph_n), []
            ).append(record.completion_round)
        for (
            sweep,
            algorithm,
            graph_kind,
            n,
            collision_rule,
        ), cell in report.cells.items():
            want = summarize(by_cell[(graph_kind, n)])
            assert_summary_close(cell.completion.summary(), want)
        rendered = report.render(title="t")
        assert "completion rounds" in rendered
        payload = report.to_dict()
        assert payload["records"] == spec.size

    def test_large_campaign_streams(self, tmp_path):
        # 10_000 synthetic records through a sharded store, then a
        # streaming report — exercising the acceptance-scale path
        # without holding the record list in memory anywhere.
        root = str(tmp_path / "big")
        with ShardedStore(
            str(root), RunResult.from_dict, flush_every=512
        ) as store:
            for i in range(10_000):
                store.append(make_record(i))
        store = ShardedStore(str(root), RunResult.from_dict)
        report = CampaignReport.from_store(store)
        store.close()
        assert report.records == 10_000
        cell = next(iter(report.cells.values()))
        want = summarize([5 + (i % 7) for i in range(10_000)])
        assert_summary_close(cell.completion.summary(), want)

    def test_paper_reference_bounds(self):
        class FakeCell:
            capped = 0

        label, bound, check = paper_reference(
            "round_robin", "clique-bridge", 9, None
        )
        assert "Thm 2" in label
        assert bound == 9 - 3
        assert check(6.0, FakeCell()) == "reached"
        assert check(5.0, FakeCell()) == "not reached"
        assert paper_reference("round_robin", "line", 8, None) is None
        label, bound, check = paper_reference(
            "strong_select", "line", 8, None
        )
        assert "Thm 10" in label
        assert check(bound, FakeCell()) == "holds"
        assert check(bound + 1, FakeCell()) == "VIOLATED"
        label, bound, check = paper_reference(
            "harmonic", "line", 8, harmonic_T=3
        )
        assert "Thm 18" in label
        assert bound > 0
