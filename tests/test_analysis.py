"""Tests for statistics, complexity fitting, density accounting, tables."""

import math

import pytest

from repro.analysis import (
    best_fit,
    busy_round_count,
    busy_rounds,
    fit_power_law,
    free_round_prefix_equal_point,
    front_loaded_pattern,
    growth_ratio_check,
    is_busy,
    probability_mass,
    quantile,
    render_kv,
    render_table,
    seed_sweep,
    summarize,
    wakeup_pattern_of,
)
from repro.core.harmonic import busy_round_bound


class TestSummaries:
    def test_summarize_basic(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3
        assert s.median == 3
        assert s.minimum == 1 and s.maximum == 5

    def test_summarize_singleton(self):
        s = summarize([7.0])
        assert s.stdev == 0.0
        assert s.ci95_half_width == 0.0

    def test_ci_uses_student_t_for_small_samples(self):
        # 5 observations -> df = 4 -> t = 2.776, not the normal 1.96
        # (the z value under-reports small-sample uncertainty by ~40%).
        s = summarize([1, 2, 3, 4, 5])
        import math
        assert s.ci95_half_width == pytest.approx(
            2.776 * s.stdev / math.sqrt(5)
        )
        assert s.ci95_half_width > 1.96 * s.stdev / math.sqrt(5)

    def test_ci_falls_back_to_normal_for_large_samples(self):
        import math
        data = list(range(100))
        s = summarize(data)
        assert s.ci95_half_width == pytest.approx(
            1.96 * s.stdev / math.sqrt(len(data))
        )

    def test_t_critical_values(self):
        from repro.analysis import t_critical_95

        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(30) == pytest.approx(2.042)
        assert t_critical_95(31) == 1.96
        # Monotone decreasing towards the normal limit.
        values = [t_critical_95(df) for df in range(1, 40)]
        assert values == sorted(values, reverse=True)
        with pytest.raises(ValueError):
            t_critical_95(0)

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_seed_sweep(self):
        s = seed_sweep(lambda seed: float(seed * 2), seeds=range(5))
        assert s.mean == 4.0

    def test_quantile(self):
        data = [1, 2, 3, 4]
        assert quantile(data, 0.0) == 1
        assert quantile(data, 1.0) == 4
        assert quantile(data, 0.5) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile(data, 1.5)

    def test_format(self):
        assert "±" in summarize([1, 2, 3]).format()


class TestFitting:
    def test_recovers_pure_power_law(self):
        ns = [16, 32, 64, 128, 256]
        ts = [n**1.5 for n in ns]
        fit = fit_power_law(ns, ts)
        assert fit.exponent == pytest.approx(1.5, abs=0.01)
        assert fit.r_squared > 0.999

    def test_recovers_log_factor(self):
        ns = [16, 32, 64, 128, 256, 512]
        ts = [3 * n * math.log2(n) ** 2 for n in ns]
        fit = best_fit(ns, ts)
        assert fit.exponent == pytest.approx(1.0, abs=0.1)

    def test_predict(self):
        fit = fit_power_law([10, 100], [10, 100])
        assert fit.predict(1000) == pytest.approx(1000, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [10])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([2, 3], [1])

    def test_growth_ratio_check(self):
        ns = [16, 32, 64, 128]
        ok, a = growth_ratio_check(ns, [n**1.5 for n in ns], 1.5)
        assert ok
        bad, _ = growth_ratio_check(ns, [n**2.5 for n in ns], 1.0)
        assert not bad

    def test_format_contains_exponent(self):
        fit = fit_power_law([10, 100], [10, 100])
        assert "n^" in fit.format()


class TestBusyRounds:
    def test_probability_mass_front_loaded(self):
        # All nodes awake at 0, T=2, n=4: P(1) = 4, busy.
        pattern = front_loaded_pattern(4, 2)
        assert probability_mass(pattern, 1, 2) == pytest.approx(4.0)
        assert is_busy(pattern, 1, 2)

    def test_busy_prefix_is_contiguous_for_front_loaded(self):
        pattern = front_loaded_pattern(5, 3)
        rounds = busy_rounds(pattern, 3)
        assert rounds == list(range(1, len(rounds) + 1))

    def test_lemma15_bound_holds_for_front_loaded(self):
        n, T = 8, 3
        count = busy_round_count(front_loaded_pattern(n, T), T)
        assert count <= busy_round_bound(n, T)

    def test_lemma15_bound_holds_for_staggered_patterns(self):
        n, T = 6, 2
        for gap in (1, 3, 7):
            pattern = [i * gap for i in range(n)]
            assert busy_round_count(pattern, T) <= busy_round_bound(n, T)

    def test_rounds_validation(self):
        with pytest.raises(ValueError):
            probability_mass([0], 0, 2)

    def test_free_round_balance_point(self):
        pattern = front_loaded_pattern(3, 1)
        point = free_round_prefix_equal_point(pattern, 1, horizon=1000)
        assert point is not None
        # The balance point must come after the busy prefix.
        assert point > busy_round_count(pattern, 1)

    def test_wakeup_pattern_extraction(self):
        from repro.graphs import line
        from repro.sim import ScriptedProcess, run_broadcast

        procs = [ScriptedProcess(i, range(1, 50)) for i in range(4)]
        trace = run_broadcast(line(4), procs, max_rounds=20)
        assert wakeup_pattern_of(trace) == [0, 1, 2, 3]


class TestTables:
    def test_render_alignment(self):
        out = render_table(
            ["name", "value"],
            [["alpha", 1], ["b", 22]],
            title="demo",
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_none_renders_dash(self):
        out = render_table(["a"], [[None]])
        assert "—" in out

    def test_row_length_validated(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_kv(self):
        out = render_kv([["rounds", 12]], title="t")
        assert "rounds" in out and "12" in out
