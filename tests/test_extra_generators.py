"""Tests for the additional topology generators."""

import pytest

from repro.graphs.extra_generators import (
    caterpillar,
    complete_binary_tree,
    hypercube,
    noisy_dual,
    random_regular,
)
from repro.graphs import line


class TestHypercube:
    def test_structure(self):
        g = hypercube(3)
        assert g.n == 8
        assert all(len(g.reliable_out(v)) == 3 for v in g.nodes)
        assert g.source_eccentricity == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            hypercube(0)

    def test_is_classical(self):
        assert hypercube(4).is_classical


class TestBinaryTree:
    def test_structure(self):
        g = complete_binary_tree(3)
        assert g.n == 15
        assert g.source_eccentricity == 3
        assert len(g.reliable_out(0)) == 2  # root's two children

    def test_depth_zero(self):
        assert complete_binary_tree(0).n == 1

    def test_leaf_degree_one(self):
        g = complete_binary_tree(3)
        assert len(g.reliable_out(14)) == 1


class TestCaterpillar:
    def test_structure(self):
        g = caterpillar(4, 2)
        assert g.n == 12
        # Interior spine node: 2 spine neighbours + 2 legs.
        assert len(g.reliable_out(1)) == 4
        # Legs are leaves.
        assert len(g.reliable_out(4)) == 1

    def test_no_legs_is_a_line(self):
        g = caterpillar(5, 0)
        assert g.n == 5
        assert g.source_eccentricity == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            caterpillar(0, 2)


class TestRandomRegular:
    def test_degrees(self):
        g = random_regular(16, 4, seed=1)
        assert all(len(g.reliable_out(v)) == 4 for v in g.nodes)

    def test_deterministic(self):
        a = random_regular(16, 4, seed=1)
        b = random_regular(16, 4, seed=1)
        assert a.reliable_edges() == b.reliable_edges()

    def test_parity_validation(self):
        with pytest.raises(ValueError):
            random_regular(7, 3)

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            random_regular(4, 4)

    def test_low_diameter_like_expander(self):
        g = random_regular(32, 4, seed=2)
        assert g.source_eccentricity <= 6


class TestNoisyDual:
    def test_reliable_part_preserved(self):
        base = line(10)
        g = noisy_dual(base, extra_edge_fraction=0.5, seed=3)
        assert g.reliable_edges() == base.reliable_edges()

    def test_noise_volume(self):
        base = line(10)
        g = noisy_dual(base, extra_edge_fraction=1.0, seed=3)
        extra = (len(g.all_edges()) - len(g.reliable_edges())) // 2
        assert extra == len(base.reliable_edges()) // 2

    def test_zero_fraction_is_classical(self):
        assert noisy_dual(line(8), 0.0).is_classical

    def test_validation(self):
        with pytest.raises(ValueError):
            noisy_dual(line(5), -0.1)

    def test_broadcast_still_works(self):
        from repro import broadcast
        from repro.adversaries import GreedyInterferer

        g = noisy_dual(line(12), 0.8, seed=1)
        trace = broadcast(g, "strong_select",
                          adversary=GreedyInterferer(), seed=0)
        assert trace.completed
