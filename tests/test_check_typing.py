"""The typing gate, test-side.

Two layers:

* An AST annotation-completeness check that enforces the same
  contract as mypy's ``disallow_untyped_defs``/
  ``disallow_incomplete_defs`` on the fully-typed packages
  (``repro.check``, ``repro.core``, ``repro.obs``, ``repro.store``)
  and on the public surfaces of the fast/vector engines.  It runs everywhere,
  including environments without mypy.
* The real pinned-mypy run (the CI static-analysis job's command),
  executed when mypy is importable and skipped otherwise; marked
  ``slow`` so tier-1 stays fast.
"""

import ast
import pathlib

import pytest

ROOT = pathlib.Path(__file__).parent.parent
SRC = ROOT / "src"

FULLY_TYPED = [
    SRC / "repro" / "check",
    SRC / "repro" / "core",
    SRC / "repro" / "obs",
    SRC / "repro" / "store",
]
PUBLIC_TYPED = [
    SRC / "repro" / "sim" / "fast_engine.py",
    SRC / "repro" / "sim" / "vector_engine.py",
]


def _missing_annotations(tree, public_only):
    """Yield '<line> <name>: <what>' for incompletely-annotated defs."""

    def visit(node, in_class):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                name = child.name
                skip = public_only and name.startswith("_") and name not in (
                    "__init__",
                )
                if not skip:
                    problems = []
                    if child.returns is None and name != "__init__":
                        problems.append("return")
                    args = child.args
                    positional = (
                        args.posonlyargs + args.args + args.kwonlyargs
                    )
                    if (
                        in_class
                        and positional
                        and positional[0].arg in ("self", "cls")
                    ):
                        positional = positional[1:]
                    extras = [
                        a
                        for a in (args.vararg, args.kwarg)
                        if a is not None
                    ]
                    for arg in positional + extras:
                        if arg.annotation is None:
                            problems.append(arg.arg)
                    if problems:
                        yield (
                            f"{child.lineno} {name}: "
                            f"{', '.join(problems)}"
                        )
                # Nested defs are held to the enclosing policy too.
                yield from visit(child, False)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, True)
            else:
                yield from visit(child, in_class)

    return visit(tree, False)


def _scan(paths, public_only):
    out = []
    for path in paths:
        files = (
            sorted(path.rglob("*.py")) if path.is_dir() else [path]
        )
        for f in files:
            tree = ast.parse(f.read_text(encoding="utf-8"))
            rel = f.relative_to(ROOT)
            out.extend(
                f"{rel}:{line}"
                for line in _missing_annotations(tree, public_only)
            )
    return out


class TestAnnotationCompleteness:
    def test_fully_typed_packages_have_complete_annotations(self):
        missing = _scan(FULLY_TYPED, public_only=False)
        assert missing == [], (
            "unannotated defs in fully-typed packages "
            "(see [tool.mypy] overrides in pyproject.toml):\n"
            + "\n".join(missing)
        )

    def test_engine_public_surfaces_are_annotated(self):
        missing = _scan(PUBLIC_TYPED, public_only=True)
        assert missing == [], (
            "unannotated public defs on the engine modules:\n"
            + "\n".join(missing)
        )


@pytest.mark.slow
def test_mypy_gate_passes():
    """The CI static-analysis mypy command, run in-process."""
    api = pytest.importorskip("mypy.api")
    stdout, stderr, status = api.run(
        [
            "-p", "repro.check",
            "-p", "repro.core",
            "-p", "repro.obs",
            "-p", "repro.store",
            "-m", "repro.sim.fast_engine",
            "-m", "repro.sim.vector_engine",
        ]
    )
    assert status == 0, f"mypy gate failed:\n{stdout}\n{stderr}"
