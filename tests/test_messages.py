"""Unit tests for message and reception primitives."""

import pytest

from repro.sim.messages import (
    COLLISION,
    Message,
    Reception,
    ReceptionKind,
    SILENCE,
    received,
)


class TestMessage:
    def test_fields(self):
        m = Message(payload="hello", sender=3, round_sent=7)
        assert m.payload == "hello"
        assert m.sender == 3
        assert m.round_sent == 7
        assert m.meta == {}

    def test_restamped_preserves_payload(self):
        m = Message(payload="data", sender=1, round_sent=2, meta={"k": 1})
        r = m.restamped(sender=5, round_sent=9)
        assert r.payload == "data"
        assert r.sender == 5
        assert r.round_sent == 9
        assert r.meta == {"k": 1}

    def test_restamped_copies_meta(self):
        m = Message(payload="data", sender=1, round_sent=2, meta={"k": 1})
        r = m.restamped(sender=5, round_sent=9)
        r.meta["k"] = 2
        assert m.meta["k"] == 1

    def test_equality_ignores_meta(self):
        a = Message("p", 1, 2, meta={"x": 1})
        b = Message("p", 1, 2, meta={"y": 2})
        assert a == b

    def test_inequality_on_sender(self):
        assert Message("p", 1, 2) != Message("p", 3, 2)


class TestReception:
    def test_silence_singleton(self):
        assert SILENCE.is_silence
        assert not SILENCE.is_message
        assert not SILENCE.is_collision
        assert SILENCE.message is None

    def test_collision_singleton(self):
        assert COLLISION.is_collision
        assert not COLLISION.is_message

    def test_received_carries_message(self):
        m = Message("p", 0, 1)
        r = received(m)
        assert r.is_message
        assert r.message is m

    def test_message_kind_requires_message(self):
        with pytest.raises(ValueError):
            Reception(ReceptionKind.MESSAGE, None)

    def test_silence_kind_rejects_message(self):
        with pytest.raises(ValueError):
            Reception(ReceptionKind.SILENCE, Message("p", 0, 1))

    def test_collision_kind_rejects_message(self):
        with pytest.raises(ValueError):
            Reception(ReceptionKind.COLLISION, Message("p", 0, 1))
