"""Edge cases for trace validation and recording.

Covers the corners the mainline suites skip: zero-round (empty) traces
through serialisation, replay and validation; and the semantic checker
run against executions produced by the bitmask fast engine (validation
shares no code with either engine, so this is independent evidence for
the engine contract).
"""

import pytest

from repro.adversaries import NoDeliveryAdversary
from repro.adversaries.scripted import ReplayAdversary
from repro.core.runner import make_processes
from repro.experiments.registry import build_adversary, build_graph
from repro.graphs import line
from repro.sim import (
    CollisionRule,
    EngineConfig,
    StartMode,
    build_engine,
    trace_from_json,
    trace_to_json,
    validate_execution,
)
from repro.sim.process import SilentProcess


def _empty_trace(engine_name="reference"):
    """A completed execution with zero rounds: the one-node network is
    fully informed before round 1 and ``max_rounds=0`` forbids stepping
    (``run()`` otherwise executes one round before testing the stop
    condition)."""
    network = line(1)
    sim = build_engine(
        network,
        [SilentProcess(0)],
        config=EngineConfig(
            engine=engine_name, record_receptions=True, max_rounds=0
        ),
    )
    return sim.run(), network


@pytest.mark.parametrize("engine_name", ["reference", "fast"])
class TestEmptyTrace:
    def test_runs_zero_rounds_and_completes(self, engine_name):
        trace, _ = _empty_trace(engine_name)
        assert trace.completed
        assert trace.num_rounds == 0
        assert trace.completion_round == 0
        assert trace.informed_round == {0: 0}

    def test_serialization_roundtrip(self, engine_name):
        trace, _ = _empty_trace(engine_name)
        clone = trace_from_json(trace_to_json(trace))
        assert clone.rounds == []
        assert clone.completed
        assert clone.informed_round == trace.informed_round
        assert clone.proc == dict(trace.proc)

    def test_validates_clean(self, engine_name):
        trace, network = _empty_trace(engine_name)
        for rule in CollisionRule:
            assert (
                validate_execution(
                    trace, network, rule, StartMode.ASYNCHRONOUS
                )
                == []
            )

    def test_replay_of_empty_trace(self, engine_name):
        """Replaying a zero-round trace is a no-op execution, not an
        error: the adversary simply has no recorded rounds to mimic."""
        trace, network = _empty_trace(engine_name)
        replayed = build_engine(
            network,
            [SilentProcess(0)],
            ReplayAdversary(trace_from_json(trace_to_json(trace))),
            EngineConfig(engine=engine_name, max_rounds=0),
        ).run()
        assert replayed.completed
        assert replayed.num_rounds == 0


class TestFastEngineTraceValidation:
    @pytest.mark.parametrize(
        "rule", [CollisionRule.CR1, CollisionRule.CR2, CollisionRule.CR3]
    )
    def test_fast_traces_validate_across_rules(self, rule):
        graph = build_graph("clique-bridge", 9, seed=2)
        sim = build_engine(
            graph,
            make_processes("harmonic", graph.n, T=2),
            build_adversary("greedy"),
            EngineConfig(
                engine="fast",
                collision_rule=rule,
                record_receptions=True,
                seed=2,
                max_rounds=5000,
            ),
        )
        trace = sim.run()
        assert trace.completed
        assert (
            validate_execution(trace, graph, rule, StartMode.ASYNCHRONOUS)
            == []
        )

    def test_fast_trace_survives_serialized_replay(self):
        """Record on the fast engine, serialise, replay on the reference
        engine: the replay reproduces the execution exactly."""
        graph = build_graph("hard-line", 9, seed=4)
        rule = CollisionRule.CR4
        config = EngineConfig(
            engine="fast",
            collision_rule=rule,
            record_receptions=True,
            seed=4,
        )
        recorded = build_engine(
            graph,
            make_processes("round_robin", graph.n),
            build_adversary("random", seed=4),
            config,
        ).run()
        loaded = trace_from_json(trace_to_json(recorded))
        replayed = build_engine(
            graph,
            make_processes("round_robin", graph.n),
            ReplayAdversary(loaded),
            EngineConfig(
                engine="reference",
                collision_rule=rule,
                record_receptions=True,
                seed=4,
            ),
        ).run()
        assert replayed.informed_round == recorded.informed_round
        assert [r.senders for r in replayed.rounds] == [
            r.senders for r in recorded.rounds
        ]
        assert (
            validate_execution(
                replayed, graph, rule, StartMode.ASYNCHRONOUS
            )
            == []
        )

    def test_validation_flags_receptionless_fast_trace(self):
        """Validation still demands recorded receptions, whichever
        engine produced the trace."""
        graph = build_graph("line", 5, seed=0)
        trace = build_engine(
            graph,
            make_processes("round_robin", graph.n),
            NoDeliveryAdversary(),
            EngineConfig(engine="fast"),
        ).run()
        violations = validate_execution(
            trace, graph, CollisionRule.CR4, StartMode.ASYNCHRONOUS
        )
        assert violations and "lacks recorded receptions" in violations[0]
