"""Tests for the adversary-search harness, evaluation and searchers."""

import json
import random

import pytest

from repro.adversaries.scripted import ReplayAdversary
from repro.core.runner import make_processes
from repro.search import (
    CandidateRecord,
    EvaluationContext,
    PopulationEvaluator,
    SearchBudget,
    SearchSettings,
    StrategyGenome,
    load_candidates,
    make_space,
    register_searcher,
    run_search,
    searcher_kinds,
    theorem2_comparison,
)
from repro.search.persist import candidate_key
from repro.sim.engine import EngineConfig, StartMode, build_engine
from repro.sim.collision import CollisionRule

CELL = SearchSettings(
    algorithm="round_robin", graph_kind="clique-bridge", n=10
)


class TestSearchSettings:
    def test_key_and_seed_stable(self):
        assert CELL.key == (
            "search/round_robin/clique-bridge:n10/CR1-synchronous/s0"
        )
        assert CELL.derived_seed == SearchSettings(
            algorithm="round_robin", graph_kind="clique-bridge", n=10
        ).derived_seed

    def test_cap_in_key(self):
        capped = SearchSettings(
            algorithm="round_robin",
            graph_kind="clique-bridge",
            n=10,
            max_rounds=40,
        )
        assert capped.key.endswith("/cap40")

    def test_validation(self):
        with pytest.raises(ValueError, match="collision rule"):
            SearchSettings(
                algorithm="round_robin", graph_kind="line", n=4,
                collision_rule="CR9",
            )
        with pytest.raises(ValueError, match="engine"):
            SearchSettings(
                algorithm="round_robin", graph_kind="line", n=4,
                engine="warp",
            )


class TestEvaluation:
    def test_objective_is_completion_round(self):
        ctx = EvaluationContext(CELL)
        score = ctx.evaluate(StrategyGenome(horizon=ctx.round_cap))
        assert score.completed
        assert score.objective == score.completion_round

    def test_capped_run_scores_above_any_completion(self):
        capped = SearchSettings(
            algorithm="round_robin",
            graph_kind="clique-bridge",
            n=10,
            max_rounds=1,
        )
        ctx = EvaluationContext(capped)
        score = ctx.evaluate(StrategyGenome(horizon=1))
        assert not score.completed
        assert score.objective == 2  # cap + 1

    def test_fast_and_reference_engines_agree(self):
        space = make_space(CELL)
        genome = space.random(random.Random(5))
        auto = EvaluationContext(CELL).evaluate(genome)
        ref = EvaluationContext(
            SearchSettings(
                algorithm="round_robin",
                graph_kind="clique-bridge",
                n=10,
                engine="reference",
            )
        ).evaluate(genome)
        assert auto.engine == "fast"
        assert ref.engine == "reference"
        assert auto.objective == ref.objective
        assert auto.completion_round == ref.completion_round

    def test_cr4_genes_stay_on_fast_engine(self):
        """CR4 genomes with resolution genes score on the fast engine
        (its consult path serves the real resolver) and agree with an
        explicit reference-engine evaluation."""
        cr4_cell = SearchSettings(
            algorithm="round_robin",
            graph_kind="clique-bridge",
            n=10,
            collision_rule="CR4",
        )
        ctx = EvaluationContext(cr4_cell)
        plain = ctx.evaluate(StrategyGenome(horizon=4))
        genome = StrategyGenome(horizon=4, cr4=((1, 0, 1),))
        genes = ctx.evaluate(genome)
        assert plain.engine == "fast"
        assert genes.engine == "fast"
        ref = EvaluationContext(
            SearchSettings(
                algorithm="round_robin",
                graph_kind="clique-bridge",
                n=10,
                collision_rule="CR4",
                engine="reference",
            )
        ).evaluate(genome)
        assert genes.objective == ref.objective
        assert genes.completion_round == ref.completion_round

    def test_parallel_matches_serial(self):
        space = make_space(CELL)
        rng = random.Random(2)
        genomes = [space.random(rng) for _ in range(8)]
        with PopulationEvaluator(CELL, workers=2) as para:
            parallel = para.evaluate(genomes)
        with PopulationEvaluator(CELL, workers=1) as seri:
            serial = seri.evaluate(genomes)
        assert parallel == serial


class TestRunSearch:
    def budget(self, n=8):
        return SearchBudget(evaluations=n, batch_size=4)

    def test_deterministic_for_fixed_seed(self):
        a = run_search(CELL, searcher="random", budget=self.budget(), seed=1)
        b = run_search(CELL, searcher="random", budget=self.budget(), seed=1)
        assert a.best == b.best
        assert a.best_ordinal == b.best_ordinal

    def test_seed_changes_exploration(self):
        a = run_search(CELL, searcher="random", budget=self.budget(), seed=1)
        b = run_search(CELL, searcher="random", budget=self.budget(), seed=2)
        assert a.best.genome != b.best.genome

    def test_resume_by_key(self, tmp_path):
        path = str(tmp_path / "search.jsonl")
        first = run_search(
            CELL, searcher="local", budget=self.budget(4), seed=3,
            results_path=path,
        )
        assert (first.executed, first.resumed) == (4, 0)
        full = run_search(
            CELL, searcher="local", budget=self.budget(8), seed=3,
            results_path=path,
        )
        assert (full.executed, full.resumed) == (4, 4)
        fresh = run_search(
            CELL, searcher="local", budget=self.budget(8), seed=3
        )
        assert full.best == fresh.best
        # A finished search re-runs as a pure resume.
        again = run_search(
            CELL, searcher="local", budget=self.budget(8), seed=3,
            results_path=path,
        )
        assert (again.executed, again.resumed) == (0, 8)
        assert again.best == fresh.best

    def test_resume_distrusts_fingerprint_mismatch(self, tmp_path):
        path = str(tmp_path / "search.jsonl")
        run_search(
            CELL, searcher="random", budget=self.budget(4), seed=5,
            results_path=path,
        )
        records = load_candidates(path)
        key = candidate_key(CELL, "random", 5, 0)
        forged = CandidateRecord(
            key=key,
            ordinal=0,
            searcher="random",
            fingerprint="deadbeef",  # does not match any genome
            genome=records[key].genome,
            objective=10_000,
            completed=False,
            completion_round=None,
            rounds=0,
            engine="reference",
        )
        with open(path, "a", encoding="utf-8") as f:
            f.write(json.dumps(forged.to_dict(), sort_keys=True) + "\n")
        resumed = run_search(
            CELL, searcher="random", budget=self.budget(4), seed=5,
            results_path=path,
        )
        # The store-level validator rejects the internally inconsistent
        # forgery at load time, so the earlier honest record for the
        # same key is resumed instead — no re-evaluation needed, and
        # the forged objective never reaches the searcher.
        assert resumed.executed == 0
        assert resumed.resumed == 4
        assert resumed.health.rejected_records == 1
        assert resumed.best.objective < 10_000

    def test_resume_distrusts_wrong_genome_for_key(self, tmp_path):
        path = str(tmp_path / "search.jsonl")
        run_search(
            CELL, searcher="random", budget=self.budget(4), seed=5,
            results_path=path,
        )
        records = load_candidates(path)
        key0 = candidate_key(CELL, "random", 5, 0)
        key1 = candidate_key(CELL, "random", 5, 1)
        # Internally consistent (fingerprint matches its own genome) so
        # the store validator accepts it — but the genome belongs to a
        # *different* candidate, so the harness's regenerated-genome
        # check must re-evaluate rather than trust the stored score.
        wrong = CandidateRecord(
            key=key0,
            ordinal=0,
            searcher="random",
            fingerprint=records[key1].genome.fingerprint,
            genome=records[key1].genome,
            objective=10_000,
            completed=False,
            completion_round=None,
            rounds=0,
            engine="reference",
        )
        with open(path, "a", encoding="utf-8") as f:
            f.write(json.dumps(wrong.to_dict(), sort_keys=True) + "\n")
        resumed = run_search(
            CELL, searcher="random", budget=self.budget(4), seed=5,
            results_path=path,
        )
        assert resumed.executed == 1
        assert resumed.health.rejected_records == 0
        assert resumed.best.objective < 10_000

    def test_torn_lines_counted_and_healed(self, tmp_path):
        path = tmp_path / "search.jsonl"
        path.write_text('{"key": "torn-fragm\n')
        result = run_search(
            CELL, searcher="random", budget=self.budget(4), seed=0,
            results_path=str(path),
        )
        assert result.skipped_lines == 1
        assert load_candidates(str(path)).skipped == 1

    def test_unknown_searcher_rejected(self):
        with pytest.raises(ValueError, match="unknown searcher"):
            run_search(CELL, searcher="nope", budget=self.budget())

    def test_register_searcher_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_searcher("random", object)

    def test_searcher_kinds(self):
        assert {"random", "local", "greedy"} <= set(searcher_kinds())


class TestReplayCertification:
    """The acceptance contract: reported objective == replayed reality."""

    def test_best_genome_replays_bit_exactly(self):
        result = run_search(
            CELL, searcher="random", budget=SearchBudget(evaluations=6),
            seed=4, verify=True,
        )
        assert result.replay_verified is True
        # Independently: running the best genome on the reference
        # engine, then replaying its recorded trace through a strict
        # ReplayAdversary, reproduces the reported round count.
        ctx = EvaluationContext(CELL)
        trace, _ = ctx.run_genome(
            result.best.genome, engine="reference",
            record_receptions=True,
        )
        assert trace.completion_round == result.best.completion_round
        processes = make_processes("round_robin", ctx.graph.n)
        replay = build_engine(
            ctx.graph,
            processes,
            ReplayAdversary(trace, strict=True),
            EngineConfig(
                collision_rule=CollisionRule.CR1,
                start_mode=StartMode.SYNCHRONOUS,
                max_rounds=ctx.round_cap,
                seed=CELL.derived_seed,
            ),
        ).run()
        assert replay.completion_round == trace.completion_round
        assert replay.informed_round == trace.informed_round

    def test_cr4_gene_genome_verifies(self):
        cr4_cell = SearchSettings(
            algorithm="harmonic",
            graph_kind="clique-bridge",
            n=10,
            collision_rule="CR4",
            start_mode="asynchronous",
        )
        result = run_search(
            cr4_cell, searcher="random",
            budget=SearchBudget(evaluations=4), seed=2, verify=True,
        )
        assert result.replay_verified is True


class TestGreedyVsTheorem2:
    """Search should rediscover (a constant factor of) Theorem 2.

    The exact numbers for larger sizes live in docs/SEARCH.md; here the
    assertion is deliberately loose — the greedy searcher must at least
    match the scripted adversary family's measured stall, which it does
    comfortably (the run is deterministic for the fixed seed).
    """

    def test_greedy_matches_scripted_construction(self):
        cell = SearchSettings(
            algorithm="round_robin", graph_kind="clique-bridge", n=12
        )
        result = run_search(
            cell,
            searcher="greedy",
            budget=SearchBudget(evaluations=3, batch_size=3),
            seed=0,
            verify=True,
        )
        assert result.replay_verified is True
        comparison = theorem2_comparison(result)
        assert comparison.scripted_worst is not None
        # Theorem 2's analytic bound and the executable scripted worst
        # case are both cleared by the found strategy.
        assert comparison.search_best > comparison.theorem_bound
        assert comparison.search_best >= comparison.scripted_worst
        assert comparison.ratio >= 1.0

    def test_greedy_deterministic(self):
        cell = SearchSettings(
            algorithm="round_robin", graph_kind="clique-bridge", n=10
        )
        budget = SearchBudget(evaluations=2, batch_size=2)
        a = run_search(cell, searcher="greedy", budget=budget, seed=1)
        b = run_search(cell, searcher="greedy", budget=budget, seed=1)
        assert a.best == b.best

    def test_greedy_lookahead_matches_engine_for_randomized(self):
        """The sandbox simulation mirrors the engine's RNG streams, so
        greedy genomes score exactly what construction predicted even
        for randomized algorithms (here: lookahead-built deliveries
        remain legal and replay-certify)."""
        cell = SearchSettings(
            algorithm="harmonic",
            graph_kind="clique-bridge",
            n=9,
            collision_rule="CR4",
            start_mode="asynchronous",
        )
        result = run_search(
            cell,
            searcher="greedy",
            budget=SearchBudget(evaluations=2, batch_size=2),
            seed=0,
            verify=True,
        )
        assert result.replay_verified is True


class TestMakeSpace:
    def test_cr4_cell_gets_cr4_genes(self):
        assert make_space(
            SearchSettings(
                algorithm="round_robin",
                graph_kind="clique-bridge",
                n=8,
                collision_rule="CR4",
            )
        ).cr4_genes
        assert not make_space(CELL).cr4_genes

    def test_horizon_defaults_to_round_cap(self):
        settings = SearchSettings(
            algorithm="round_robin",
            graph_kind="clique-bridge",
            n=8,
            max_rounds=17,
        )
        assert make_space(settings).horizon == 17


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError, match="evaluation"):
            SearchBudget(evaluations=0)
        with pytest.raises(ValueError, match="batch_size"):
            SearchBudget(evaluations=4, batch_size=0)
