"""RPR003 failing fixture: wall clocks and entropy sources."""

import os
import time
import uuid


def stamp():
    return time.time(), uuid.uuid4().hex, os.urandom(8)
