"""Suppression fixture: justified noqa silences its finding."""


def replay_gate(p):
    # Exact equality is intentional here: the value round-trips
    # through JSON and must match byte-for-byte.
    return p == 0.5  # repro: noqa(RPR005): replayed literal must match exactly
