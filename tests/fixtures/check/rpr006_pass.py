"""RPR006 passing fixture: canonicalisation inside __post_init__."""

import dataclasses


@dataclasses.dataclass(frozen=True)
class Cell:
    seeds: tuple

    def __post_init__(self):
        object.__setattr__(self, "seeds", tuple(self.seeds))


def grown(cell, seed):
    return dataclasses.replace(cell, seeds=cell.seeds + (seed,))
