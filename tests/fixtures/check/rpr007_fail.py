"""RPR007 failing fixture: literal-seeded fault streams."""

import random


def pinned_schedule(n):
    rng = random.Random(42)
    return [v for v in range(n) if rng.random() < 0.1]


def pinned_string_namespace(n):
    rng = random.Random("churn")
    return [v for v in range(n) if rng.random() < 0.1]
