"""RPR004 failing fixture: unordered set iteration."""


def total(edges):
    out = 0
    for edge in set(edges):
        out += edge
    return out


def labels(nodes, extra):
    return [str(n) for n in nodes.union(extra)]
