"""RPR005 failing fixture: exact float comparisons."""


def stalled(p):
    return p == 0.5


def not_done(x, raw):
    return x != -1.0 or raw == float(raw)
