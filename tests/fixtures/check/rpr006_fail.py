"""RPR006 failing fixture: frozen mutation after construction."""

import dataclasses


@dataclasses.dataclass(frozen=True)
class Cell:
    n: int


def bump(cell):
    object.__setattr__(cell, "n", cell.n + 1)
    return cell
