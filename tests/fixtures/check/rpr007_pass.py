"""RPR007 passing fixture: run-derived namespaced fault seeds."""

import random


def keyed_schedule(n, seed):
    rng = random.Random(f"churn:{seed}")
    return [v for v in range(n) if rng.random() < 0.1]


def arithmetic_derivation(n, seed):
    rng = random.Random(seed * 2 + 1)
    return [v for v in range(n) if rng.random() < 0.1]
