"""RPR004 passing fixture: sorted materialisation before iterating."""


def total(edges):
    out = 0
    for edge in sorted(set(edges)):
        out += edge
    return out


def labels(nodes, extra):
    return [str(n) for n in sorted(nodes.union(extra))]
