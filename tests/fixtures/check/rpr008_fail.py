"""RPR008 failing fixture: wall-clock timers outside repro.obs."""

import time
from time import monotonic


def elapsed(run):
    started = time.perf_counter()
    run()
    return time.perf_counter() - started


def tick():
    return monotonic()
