"""RPR003 passing fixture: monotonic elapsed-time measurement."""

import time


def elapsed(run):
    started = time.perf_counter()
    run()
    return time.perf_counter() - started
