"""RPR003 passing fixture: key-derived identifiers, obs-layer timing."""

from repro.obs import Stopwatch


def elapsed(run):
    watch = Stopwatch()
    run()
    return watch.elapsed()


def run_identifier(spec, seed):
    return f"{spec}:{seed}"
