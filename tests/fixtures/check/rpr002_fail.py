"""RPR002 failing fixture: module-level scientific imports."""

import numpy as np
from scipy import sparse


def mean(xs):
    return np.mean(xs) if xs else sparse.eye(0)
