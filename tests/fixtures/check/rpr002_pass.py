"""RPR002 passing fixture: gated and function-local imports."""

try:
    import numpy as np
except ImportError:
    np = None


def mean(xs):
    import numpy

    return numpy.mean(xs)
