"""RPR001 passing fixture: key-derived per-entity streams."""

import random


def stream(seed, uid):
    rng = random.Random(f"{seed}:{uid}")
    return rng.random()


def keyword_seeded(seed):
    return random.Random(x=seed)
