"""RPR001 failing fixture: ambient/module-level randomness."""

import random


def jitter(xs):
    random.shuffle(xs)
    return random.random()


def seedless_stream():
    return random.Random()
