"""Suppression fixture: a bare noqa (no justification) is inert."""


def replay_gate(p):
    return p == 0.5  # repro: noqa(RPR005)
