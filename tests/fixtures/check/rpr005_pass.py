"""RPR005 passing fixture: tolerant / integral comparisons."""

import math


def stalled(p):
    return math.isclose(p, 0.5)


def not_done(steps):
    return steps != 1
