"""RPR008 passing fixture: timing through the observability layer."""

import time

from repro.obs import Stopwatch, current


def elapsed(run):
    watch = Stopwatch()
    run()
    return watch.elapsed()


def timed_phase(run):
    with current().span("phase"):
        run()


def sleepy():
    # Sleeping is scheduling, not measurement: RPR008 only confines
    # the timer *reads*.
    time.sleep(0.0)
