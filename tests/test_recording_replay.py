"""Tests for trace serialization and replay adversaries."""

import pytest

from repro.adversaries import GreedyInterferer, RandomDeliveryAdversary
from repro.adversaries.scripted import ReplayAdversary, ScriptedDeliveries
from repro.core import make_harmonic_processes, make_round_robin_processes
from repro.graphs import gnp_dual, line, with_complete_unreliable
from repro.sim import BroadcastEngine, EngineConfig, ScriptedProcess, run_broadcast
from repro.sim.recording import (
    load_trace,
    save_trace,
    trace_from_json,
    trace_to_json,
)


def recorded_run(network, processes, adversary, seed=0):
    config = EngineConfig(
        seed=seed, max_rounds=20_000, record_receptions=True
    )
    return BroadcastEngine(network, processes, adversary, config).run()


class TestSerialization:
    def test_roundtrip_preserves_everything(self):
        g = gnp_dual(12, seed=1)
        trace = recorded_run(
            g,
            make_round_robin_processes(12),
            RandomDeliveryAdversary(0.5, seed=2),
        )
        loaded = trace_from_json(trace_to_json(trace))
        assert loaded.n == trace.n
        assert loaded.proc == dict(trace.proc)
        assert loaded.completed == trace.completed
        assert loaded.informed_round == trace.informed_round
        assert len(loaded.rounds) == len(trace.rounds)
        for a, b in zip(loaded.rounds, trace.rounds):
            assert a.senders == dict(b.senders)
            assert a.unreliable_deliveries == dict(b.unreliable_deliveries)
            assert a.newly_informed == b.newly_informed
            assert a.receptions == dict(b.receptions)

    def test_roundtrip_without_receptions(self):
        g = line(5)
        trace = run_broadcast(
            g,
            [ScriptedProcess(i, range(1, 40)) for i in range(5)],
            max_rounds=10,
        )
        loaded = trace_from_json(trace_to_json(trace))
        assert loaded.rounds[0].receptions is None
        assert loaded.completion_round == trace.completion_round

    def test_file_roundtrip(self, tmp_path):
        g = line(4)
        trace = run_broadcast(
            g,
            [ScriptedProcess(i, range(1, 40)) for i in range(4)],
            max_rounds=10,
        )
        path = tmp_path / "trace.json"
        save_trace(trace, str(path))
        loaded = load_trace(str(path))
        assert loaded.summary() == trace.summary()

    def test_version_check(self):
        import json

        g = line(3)
        trace = run_broadcast(
            g,
            [ScriptedProcess(i, range(1, 40)) for i in range(3)],
            max_rounds=5,
        )
        doc = json.loads(trace_to_json(trace))
        doc["format_version"] = 999
        with pytest.raises(ValueError, match="format version"):
            trace_from_json(json.dumps(doc))


class TestReplayAdversary:
    @pytest.mark.parametrize(
        "factory,adversary_factory",
        [
            (make_round_robin_processes,
             lambda: RandomDeliveryAdversary(0.5, seed=4, cr4_mode="first")),
            (make_harmonic_processes, GreedyInterferer),
        ],
        ids=["round_robin+random", "harmonic+greedy"],
    )
    def test_replay_reproduces_execution(self, factory, adversary_factory):
        g = gnp_dual(12, seed=6)
        n = 12
        original = recorded_run(g, factory(n), adversary_factory(), seed=9)
        replayed = recorded_run(
            g, factory(n), ReplayAdversary(original), seed=9
        )
        assert replayed.completion_round == original.completion_round
        for a, b in zip(original.rounds, replayed.rounds):
            assert sorted(a.senders) == sorted(b.senders)
            assert a.unreliable_deliveries == b.unreliable_deliveries
            assert a.receptions == b.receptions

    def test_replay_after_serialization(self):
        g = gnp_dual(10, seed=2)
        original = recorded_run(
            g,
            make_round_robin_processes(10),
            RandomDeliveryAdversary(0.4, seed=1),
            seed=3,
        )
        revived = trace_from_json(trace_to_json(original))
        replayed = recorded_run(
            g,
            make_round_robin_processes(10),
            ReplayAdversary(revived),
            seed=3,
        )
        assert replayed.completion_round == original.completion_round

    def test_replay_rejects_bad_proc(self):
        g = gnp_dual(8, seed=0)
        original = recorded_run(
            g, make_round_robin_processes(8),
            RandomDeliveryAdversary(0.3, seed=1),
        )
        adversary = ReplayAdversary(original)
        with pytest.raises(ValueError):
            adversary.assign_processes(g, list(range(9)))


class TestScriptedDeliveries:
    def test_exact_round_table(self):
        g = with_complete_unreliable(line(4))
        # Round 1: deliver the source's unreliable edge to node 3.
        script = {1: {0: [2, 3]}}
        procs = [ScriptedProcess(i, range(1, 40)) for i in range(4)]
        trace = run_broadcast(
            g, procs, adversary=ScriptedDeliveries(script), max_rounds=10,
        )
        # Node 3 informed immediately through the scripted delivery.
        assert trace.informed_round[3] == 1

    def test_missing_rounds_deliver_nothing(self):
        g = with_complete_unreliable(line(4))
        procs = [ScriptedProcess(i, range(1, 40)) for i in range(4)]
        trace = run_broadcast(
            g, procs, adversary=ScriptedDeliveries({}), max_rounds=10,
        )
        assert trace.informed_round[3] == 3  # pure reliable hops

    def test_fixed_proc_mapping(self):
        g = line(3)
        script = {}
        mapping = {0: 2, 1: 1, 2: 0}
        procs = [ScriptedProcess(i, range(1, 40)) for i in range(3)]
        config = EngineConfig(max_rounds=8)
        engine = BroadcastEngine(
            g, procs, ScriptedDeliveries(script, proc_mapping=mapping),
            config,
        )
        trace = engine.run()
        assert trace.proc[0] == 2


class TestScriptedReplayEdgeCases:
    """The edge cases genome replay (repro.search) leans on."""

    def _procs(self, n):
        return [ScriptedProcess(i, range(1, 40)) for i in range(n)]

    def test_deliveries_past_final_round_are_unused(self):
        g = with_complete_unreliable(line(4))
        # Round 50 is far past completion; the entry must be inert.
        script = {50: {0: [3]}}
        trace = run_broadcast(
            g, self._procs(4),
            adversary=ScriptedDeliveries(script), max_rounds=10,
        )
        assert trace.completed
        assert trace.informed_round[3] == 3  # pure reliable hops
        assert all(
            not rec.unreliable_deliveries for rec in trace.rounds
        )

    def test_empty_round_rows_deliver_nothing(self):
        g = with_complete_unreliable(line(4))
        script = {1: {}, 2: {}}
        trace = run_broadcast(
            g, self._procs(4),
            adversary=ScriptedDeliveries(script), max_rounds=10,
        )
        assert trace.informed_round[3] == 3

    def test_script_for_non_sender_is_dropped(self):
        g = with_complete_unreliable(line(4))
        # Node 3 does not transmit in round 1 (it is not even awake in
        # the scripted sense — it never held the message yet), so its
        # scripted row is filtered out rather than crashing the engine.
        script = {1: {3: [0]}}
        trace = run_broadcast(
            g, self._procs(4),
            adversary=ScriptedDeliveries(script), max_rounds=10,
        )
        assert trace.completed

    def _tampered_cr4_trace(self):
        """A recorded CR4 execution whose round-1 reception at node 2
        is rewritten to come from a sender that never transmitted."""
        import dataclasses

        from repro.adversaries import FullDeliveryAdversary
        from repro.sim.messages import Message, received

        g = with_complete_unreliable(line(3))
        procs = [
            ScriptedProcess(0, range(1, 40)),
            ScriptedProcess(1, range(1, 40), send_without_message=True),
            ScriptedProcess(2, range(30, 40)),
        ]
        from repro.sim.engine import StartMode

        config = EngineConfig(
            max_rounds=20,
            record_receptions=True,
            start_mode=StartMode.SYNCHRONOUS,
        )  # CR4 is the config default
        trace = BroadcastEngine(
            g, procs, FullDeliveryAdversary(), config
        ).run()
        # Round 1 has two senders (0 and 1) and full deliveries, so
        # node 2 sees a genuine CR4 collision — the resolver runs.
        assert len(trace.rounds[0].senders) == 2
        forged = received(
            Message(payload="broadcast-message", sender=5, round_sent=1)
        )
        trace.rounds[0] = dataclasses.replace(
            trace.rounds[0],
            receptions={**trace.rounds[0].receptions, 2: forged},
        )
        return g, trace

    def _replay(self, g, trace, strict):
        procs = [
            ScriptedProcess(0, range(1, 40)),
            ScriptedProcess(1, range(1, 40), send_without_message=True),
            ScriptedProcess(2, range(30, 40)),
        ]
        from repro.sim.engine import StartMode

        config = EngineConfig(
            max_rounds=20, start_mode=StartMode.SYNCHRONOUS
        )
        return BroadcastEngine(
            g, procs, ReplayAdversary(trace, strict=strict), config
        ).run()

    def test_strict_replay_raises_on_non_arriving_cr4_sender(self):
        g, trace = self._tampered_cr4_trace()
        with pytest.raises(ValueError, match="replay diverged"):
            self._replay(g, trace, strict=True)

    def test_lenient_replay_silently_resolves_to_silence(self):
        g, trace = self._tampered_cr4_trace()
        # No exception: the non-arriving sender degrades to silence, so
        # node 2 never hears the forged message (and stays uninformed,
        # as in the original execution where the collision was silent).
        replayed = self._replay(g, trace, strict=False)
        assert replayed.informed_round[2] is None
