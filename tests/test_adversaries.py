"""Unit tests for the adversary implementations."""

import pytest

from repro.adversaries import (
    FlappingLinkAdversary,
    FullDeliveryAdversary,
    GreedyInterferer,
    NoDeliveryAdversary,
    PivotAdversary,
    RandomDeliveryAdversary,
)
from repro.adversaries.base import AdversaryView
from repro.graphs import line, pivot_layers, with_complete_unreliable
from repro.sim import Message, ScriptedProcess, run_broadcast


def view_for(network, senders, informed=frozenset([0]), rnd=1):
    return AdversaryView(
        round_number=rnd,
        network=network,
        senders=senders,
        informed=frozenset(informed),
        active=frozenset(network.nodes),
        proc={v: v for v in network.nodes},
    )


def msg(sender):
    return Message("p", sender, 1)


class TestSimpleAdversaries:
    def test_no_delivery_empty(self):
        g = with_complete_unreliable(line(4))
        adv = NoDeliveryAdversary()
        assert adv.choose_deliveries(view_for(g, {0: msg(0)})) == {}

    def test_full_delivery_covers_all_unreliable(self):
        g = with_complete_unreliable(line(4))
        adv = FullDeliveryAdversary()
        out = adv.choose_deliveries(view_for(g, {0: msg(0)}))
        assert out[0] == g.unreliable_only_out(0)

    def test_random_delivery_p0_never(self):
        g = with_complete_unreliable(line(4))
        adv = RandomDeliveryAdversary(p=0.0)
        assert adv.choose_deliveries(view_for(g, {0: msg(0)})) == {}

    def test_random_delivery_p1_always(self):
        g = with_complete_unreliable(line(4))
        adv = RandomDeliveryAdversary(p=1.0)
        out = adv.choose_deliveries(view_for(g, {0: msg(0)}))
        assert out[0] == g.unreliable_only_out(0)

    def test_random_delivery_deterministic_given_seed(self):
        g = with_complete_unreliable(line(10))
        outs = []
        for _ in range(2):
            adv = RandomDeliveryAdversary(p=0.5, seed=3)
            outs.append(
                adv.choose_deliveries(view_for(g, {0: msg(0)}))
            )
        assert outs[0] == outs[1]

    def test_random_delivery_validation(self):
        with pytest.raises(ValueError):
            RandomDeliveryAdversary(p=1.5)
        with pytest.raises(ValueError):
            RandomDeliveryAdversary(p=0.5, cr4_mode="bogus")

    def test_cr4_modes(self):
        adv_silence = RandomDeliveryAdversary(0.5, cr4_mode="silence")
        adv_first = RandomDeliveryAdversary(0.5, cr4_mode="first")
        g = with_complete_unreliable(line(4))
        v = view_for(g, {})
        arrivals = [msg(3), msg(1)]
        assert adv_silence.resolve_cr4(v, 2, arrivals) is None
        assert adv_first.resolve_cr4(v, 2, arrivals).sender == 1

    def test_flapping_phases(self):
        g = with_complete_unreliable(line(4))
        adv = FlappingLinkAdversary(up_rounds=2, down_rounds=3)
        up = adv.choose_deliveries(view_for(g, {0: msg(0)}, rnd=1))
        assert up  # rounds 1-2 are up
        down = adv.choose_deliveries(view_for(g, {0: msg(0)}, rnd=3))
        assert down == {}  # rounds 3-5 are down
        up_again = adv.choose_deliveries(view_for(g, {0: msg(0)}, rnd=6))
        assert up_again

    def test_flapping_validation(self):
        with pytest.raises(ValueError):
            FlappingLinkAdversary(0, 0)


class TestFixedAssignmentAdversary:
    def test_installs_mapping(self):
        from repro.adversaries import FixedAssignmentAdversary
        from repro.sim import BroadcastEngine, EngineConfig

        g = line(4)
        mapping = {0: 3, 1: 2, 2: 1, 3: 0}
        procs = [ScriptedProcess(i, range(1, 50)) for i in range(4)]
        engine = BroadcastEngine(
            g, procs, FixedAssignmentAdversary(mapping),
            EngineConfig(max_rounds=10),
        )
        trace = engine.run()
        assert trace.proc == mapping
        assert trace.completed

    def test_rejects_non_bijection(self):
        from repro.adversaries import FixedAssignmentAdversary
        from repro.sim import BroadcastEngine, EngineConfig

        g = line(3)
        procs = [ScriptedProcess(i, [1]) for i in range(3)]
        with pytest.raises(ValueError):
            BroadcastEngine(
                g, procs,
                FixedAssignmentAdversary({0: 0, 1: 0, 2: 1}),
                EngineConfig(max_rounds=5),
            )

    def test_delegates_to_inner_adversary(self):
        from repro.adversaries import (
            FixedAssignmentAdversary,
            FullDeliveryAdversary,
        )

        g = with_complete_unreliable(line(4))
        mapping = {v: v for v in g.nodes}
        adv = FixedAssignmentAdversary(mapping, FullDeliveryAdversary())
        out = adv.choose_deliveries(view_for(g, {0: msg(0)}))
        assert out[0] == g.unreliable_only_out(0)

    def test_no_inner_means_no_deliveries(self):
        from repro.adversaries import FixedAssignmentAdversary

        g = with_complete_unreliable(line(4))
        adv = FixedAssignmentAdversary({v: v for v in g.nodes})
        assert adv.choose_deliveries(view_for(g, {0: msg(0)})) == {}
        assert adv.resolve_cr4(view_for(g, {}), 1, [msg(0), msg(2)]) is None


class TestGreedyInterferer:
    def test_collides_single_reliable_arrival(self):
        # Line with complete G': node 2 would receive node 1's lone
        # message; sender 0 holds an unreliable edge to 2 and must be
        # told to use it.
        g = with_complete_unreliable(line(4))
        adv = GreedyInterferer()
        out = adv.choose_deliveries(
            view_for(g, {0: msg(0), 1: msg(1)}, informed={0, 1})
        )
        assert 2 in out.get(0, frozenset())

    def test_ignores_informed_nodes(self):
        g = with_complete_unreliable(line(4))
        adv = GreedyInterferer()
        out = adv.choose_deliveries(
            view_for(g, {0: msg(0), 1: msg(1)}, informed={0, 1, 2, 3})
        )
        assert out == {}

    def test_powerless_against_lone_sender(self):
        g = with_complete_unreliable(line(4))
        adv = GreedyInterferer()
        out = adv.choose_deliveries(view_for(g, {1: msg(1)}, informed={0, 1}))
        assert out == {}  # no second sender to interfere with

    def test_slows_broadcast_on_line(self):
        g = with_complete_unreliable(line(6))
        base = run_broadcast(
            g,
            [ScriptedProcess(i, range(1, 100)) for i in range(6)],
            adversary=NoDeliveryAdversary(),
            max_rounds=50,
        )
        attacked = run_broadcast(
            g,
            [ScriptedProcess(i, range(1, 100)) for i in range(6)],
            adversary=GreedyInterferer(),
            max_rounds=50,
        )
        assert not attacked.completed or (
            attacked.completion_round >= base.completion_round
        )


class TestPivotAdversary:
    def test_withholds_for_lone_nonpivot(self):
        layout = pivot_layers(3, 3)
        adv = PivotAdversary(layout)
        non_pivot = layout.layers[1][1]
        out = adv.choose_deliveries(
            view_for(layout.graph, {non_pivot: msg(non_pivot)},
                     informed=set(layout.layers[0]) | set(layout.layers[1]))
        )
        assert out == {}

    def test_blankets_when_pivot_contends(self):
        layout = pivot_layers(3, 3)
        adv = PivotAdversary(layout)
        pivot = layout.layers[1][0]
        other = layout.layers[1][1]
        out = adv.choose_deliveries(
            view_for(
                layout.graph,
                {pivot: msg(pivot), other: msg(other)},
                informed=set(layout.layers[0]) | set(layout.layers[1]),
            )
        )
        assert set(layout.layers[2]) <= set(out[other])

    def test_lone_pivot_progress_not_blocked(self):
        layout = pivot_layers(3, 3)
        adv = PivotAdversary(layout)
        pivot = layout.layers[1][0]
        out = adv.choose_deliveries(
            view_for(layout.graph, {pivot: msg(pivot)},
                     informed=set(layout.layers[0]) | set(layout.layers[1]))
        )
        assert out == {}  # reliable edges handle the delivery
